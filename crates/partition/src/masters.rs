//! Master (vertex owner) assignment — the first of CuSP's two decision
//! functions.
//!
//! Edge-balanced policies assign contiguous id blocks whose boundaries
//! balance a per-vertex weight (out-degree for OEC/CVC, in-degree for IEC,
//! total degree for HVC). Web crawls have strong id locality, so contiguous
//! blocks double as locality-preserving cuts, exactly as in CuSP.

use dirgl_graph::csr::{Csr, VertexId};

use crate::policy::Policy;

/// Per-vertex master device assignment plus the block boundaries (empty for
/// non-blocked policies).
#[derive(Clone, Debug)]
pub struct MasterAssignment {
    /// Owner device of each vertex's master proxy.
    pub owner: Vec<u32>,
    /// For blocked policies: vertex-range start per device (length
    /// `num_devices + 1`); empty otherwise.
    pub block_starts: Vec<VertexId>,
}

/// In-degree of every vertex (needed by IEC/HVC rules).
pub fn in_degrees(g: &Csr) -> Vec<u32> {
    let mut deg = vec![0u32; g.num_vertices() as usize];
    for &t in g.targets() {
        deg[t as usize] += 1;
    }
    deg
}

/// Splits `0..n` into `parts` contiguous blocks with approximately equal
/// total `weight`, returning the block start ids (length `parts + 1`).
pub fn balanced_blocks(weights: &[u32], parts: u32) -> Vec<VertexId> {
    let n = weights.len();
    // Every vertex carries a tiny constant weight so zero-degree spans still
    // split, but edges dominate the balance target.
    let total: u64 = weights.iter().map(|&w| w as u64 * 16 + 1).sum();
    let mut starts = Vec::with_capacity(parts as usize + 1);
    starts.push(0);
    let mut acc = 0u64;
    let mut next_cut = 1u64;
    for (v, &w) in weights.iter().enumerate() {
        acc += w as u64 * 16 + 1;
        while starts.len() < parts as usize && acc * parts as u64 >= next_cut * total {
            starts.push(v as VertexId + 1);
            next_cut += 1;
        }
    }
    while starts.len() < parts as usize {
        starts.push(n as VertexId);
    }
    starts.push(n as VertexId);
    starts
}

/// FxHash-style integer mix for the random policy.
#[inline]
pub fn hash_vertex(v: VertexId, seed: u64) -> u64 {
    let mut x = v as u64 ^ seed;
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 32;
    x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
    x ^= x >> 32;
    x
}

/// BFS-grow clustering: `parts` seeds spaced through the id range grow
/// frontiers round-robin, claiming unowned vertices until each partition
/// holds roughly `|E| / parts` edges. Disconnected leftovers go to the
/// lightest partition. A stand-in for METIS-quality edge-cuts (Groute).
pub fn bfs_grow(g: &Csr, parts: u32, seed: u64) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut owner = vec![u32::MAX; n];
    let target_edges = g.num_edges() / parts as u64 + 1;
    let mut frontiers: Vec<Vec<VertexId>> = Vec::with_capacity(parts as usize);
    let mut edge_load = vec![0u64; parts as usize];
    for p in 0..parts {
        // Seeds spaced through the id range, jittered by the seed.
        let s = ((n as u64 * p as u64 / parts as u64) + hash_vertex(p, seed) % 17) as usize % n;
        // Find the first unclaimed vertex at or after s.
        let mut v = s;
        while owner[v] != u32::MAX {
            v = (v + 1) % n;
        }
        owner[v] = p;
        edge_load[p as usize] += g.out_degree(v as VertexId) as u64;
        frontiers.push(vec![v as VertexId]);
    }
    let mut active = true;
    while active {
        active = false;
        for p in 0..parts as usize {
            if edge_load[p] >= target_edges {
                continue;
            }
            let mut next = Vec::new();
            for &u in &frontiers[p] {
                for &v in g.neighbors(u) {
                    if owner[v as usize] == u32::MAX {
                        owner[v as usize] = p as u32;
                        edge_load[p] += g.out_degree(v) as u64;
                        next.push(v);
                        if edge_load[p] >= target_edges {
                            break;
                        }
                    }
                }
                if edge_load[p] >= target_edges {
                    break;
                }
            }
            if !next.is_empty() {
                active = true;
            }
            frontiers[p] = next;
        }
    }
    // Unreached vertices: assign to the lightest partition.
    for (v, o) in owner.iter_mut().enumerate() {
        if *o == u32::MAX {
            let p = (0..parts as usize).min_by_key(|&p| edge_load[p]).unwrap();
            *o = p as u32;
            edge_load[p] += g.out_degree(v as VertexId) as u64;
        }
    }
    owner
}

/// XtraPulp-style label-propagation refinement: start from total-degree-
/// balanced blocks, then iteratively move each vertex to the partition
/// where most of its (undirected) neighbors live, subject to a weight
/// ceiling of `(1 + epsilon) × mean`. A simplified single-threaded version
/// of Slota et al.'s constrained label propagation.
pub fn label_propagation(g: &Csr, parts: u32, iterations: u32, epsilon: f64) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    // Seed from a degree-balanced blocked assignment.
    let weights: Vec<u32> = (0..n as u32).map(|v| g.out_degree(v) + 1).collect();
    let starts = balanced_blocks(&weights, parts);
    let mut owner = vec![0u32; n];
    for p in 0..parts as usize {
        for v in starts[p]..starts[p + 1] {
            owner[v as usize] = p as u32;
        }
    }
    let rev = g.transpose();
    let total_w: u64 = weights.iter().map(|&w| w as u64).sum();
    let ceiling = ((total_w as f64 / parts as f64) * (1.0 + epsilon)) as u64;
    let mut load = vec![0u64; parts as usize];
    for v in 0..n {
        load[owner[v] as usize] += weights[v] as u64;
    }
    let mut counts = vec![0u32; parts as usize];
    for _ in 0..iterations {
        let mut moved = 0u32;
        for v in 0..n as u32 {
            counts.iter_mut().for_each(|c| *c = 0);
            for &u in g.neighbors(v).iter().chain(rev.neighbors(v)) {
                counts[owner[u as usize] as usize] += 1;
            }
            let cur = owner[v as usize];
            let Some((best, &cnt)) = counts.iter().enumerate().max_by_key(|&(_, &c)| c) else {
                continue;
            };
            let best = best as u32;
            if cnt > 0
                && best != cur
                && counts[best as usize] > counts[cur as usize]
                && load[best as usize] + weights[v as usize] as u64 <= ceiling
            {
                load[cur as usize] -= weights[v as usize] as u64;
                load[best as usize] += weights[v as usize] as u64;
                owner[v as usize] = best;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    owner
}

/// Assigns masters for `policy` over `num_devices` devices.
pub fn assign_masters(g: &Csr, policy: Policy, num_devices: u32, seed: u64) -> MasterAssignment {
    match policy {
        // Degree-driven policies share one computation with the chunked
        // builder's histogram path, so the two builders cannot diverge.
        Policy::Oec | Policy::Cvc | Policy::Iec | Policy::Hvc | Policy::Random => {
            let n = g.num_vertices();
            let out: Vec<u32> = (0..n).map(|v| g.out_degree(v)).collect();
            let ind = match policy {
                Policy::Iec | Policy::Hvc => in_degrees(g),
                _ => Vec::new(),
            };
            assign_masters_from_degrees(policy, &out, &ind, num_devices, seed)
        }
        Policy::MetisLike => MasterAssignment {
            owner: bfs_grow(g, num_devices, seed),
            block_starts: Vec::new(),
        },
        Policy::Xtrapulp => MasterAssignment {
            owner: label_propagation(g, num_devices, 3, 0.1),
            block_starts: Vec::new(),
        },
    }
}

/// Degree-histogram master assignment — the subset of [`assign_masters`]
/// that needs only per-vertex degrees, not the materialized graph. This is
/// what the chunked partition builder calls after its first streaming pass;
/// the traversal-based policies (`MetisLike`, `Xtrapulp`) have no
/// histogram form and panic here.
///
/// `in_deg` may be empty for policies that do not consult it
/// (OEC/CVC/Random).
pub fn assign_masters_from_degrees(
    policy: Policy,
    out_deg: &[u32],
    in_deg: &[u32],
    num_devices: u32,
    seed: u64,
) -> MasterAssignment {
    match policy {
        Policy::Oec | Policy::Cvc => blocked(out_deg, num_devices),
        Policy::Iec => blocked(in_deg, num_devices),
        Policy::Hvc => {
            let w: Vec<u32> = out_deg
                .iter()
                .zip(in_deg)
                .map(|(&o, &i)| o.saturating_add(i))
                .collect();
            blocked(&w, num_devices)
        }
        Policy::Random => {
            let owner = (0..out_deg.len() as u32)
                .map(|v| (hash_vertex(v, seed) % num_devices as u64) as u32)
                .collect();
            MasterAssignment {
                owner,
                block_starts: Vec::new(),
            }
        }
        Policy::MetisLike | Policy::Xtrapulp => panic!(
            "{policy} needs the materialized graph (BFS/label propagation); \
             the degree-histogram path cannot assign it"
        ),
    }
}

fn blocked(weights: &[u32], parts: u32) -> MasterAssignment {
    let starts = balanced_blocks(weights, parts);
    let mut owner = vec![0u32; weights.len()];
    for p in 0..parts as usize {
        for v in starts[p]..starts[p + 1] {
            owner[v as usize] = p as u32;
        }
    }
    MasterAssignment {
        owner,
        block_starts: starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_graph::RmatConfig;

    #[test]
    fn balanced_blocks_cover_range() {
        let w = vec![1u32; 100];
        let starts = balanced_blocks(&w, 4);
        assert_eq!(starts, vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn balanced_blocks_balance_skewed_weights() {
        // One huge vertex at the front.
        let mut w = vec![1u32; 1000];
        w[0] = 5000;
        let starts = balanced_blocks(&w, 4);
        assert_eq!(starts.len(), 5);
        assert_eq!(*starts.last().unwrap(), 1000);
        // First block should be tiny (the heavy vertex alone dominates).
        assert!(starts[1] < 300, "starts={starts:?}");
        // All blocks non-degenerate boundaries are monotonic.
        for i in 0..4 {
            assert!(starts[i] <= starts[i + 1]);
        }
    }

    #[test]
    fn balanced_blocks_more_parts_than_vertices() {
        let w = vec![1u32; 3];
        let starts = balanced_blocks(&w, 8);
        assert_eq!(starts.len(), 9);
        assert_eq!(*starts.last().unwrap(), 3);
    }

    #[test]
    fn edge_balanced_oec_assignment() {
        let g = RmatConfig::new(10, 8).seed(3).generate();
        let ma = assign_masters(&g, Policy::Oec, 8, 0);
        // Every vertex owned; owners within range.
        assert!(ma.owner.iter().all(|&o| o < 8));
        // Out-edge counts per device balanced within 30%.
        let mut per_dev = vec![0u64; 8];
        for v in 0..g.num_vertices() {
            per_dev[ma.owner[v as usize] as usize] += g.out_degree(v) as u64;
        }
        let mean = per_dev.iter().sum::<u64>() as f64 / 8.0;
        for &e in &per_dev {
            assert!((e as f64) < 1.5 * mean + 100.0, "per_dev={per_dev:?}");
        }
    }

    #[test]
    fn random_assignment_spreads() {
        let g = RmatConfig::new(10, 4).seed(1).generate();
        let ma = assign_masters(&g, Policy::Random, 4, 7);
        let mut counts = vec![0u32; 4];
        for &o in &ma.owner {
            counts[o as usize] += 1;
        }
        let n = g.num_vertices();
        for &c in &counts {
            assert!((c as f64) > 0.15 * n as f64 && (c as f64) < 0.35 * n as f64);
        }
    }

    #[test]
    fn label_propagation_improves_locality_under_balance() {
        let g = dirgl_graph::WebCrawlConfig::new(4_000, 60_000, 300, 200, 12)
            .seed(9)
            .generate();
        let owner = label_propagation(&g, 4, 3, 0.1);
        assert!(owner.iter().all(|&o| o < 4));
        // Balance constraint: per-partition degree weight within the
        // ceiling band.
        let mut load = vec![0u64; 4];
        for v in 0..g.num_vertices() {
            load[owner[v as usize] as usize] += g.out_degree(v) as u64 + 1;
        }
        let mean = load.iter().sum::<u64>() as f64 / 4.0;
        for &l in &load {
            assert!((l as f64) < 1.15 * mean, "load {load:?}");
        }
        // Locality: beats a blocked split without refinement.
        let weights: Vec<u32> = (0..g.num_vertices()).map(|v| g.out_degree(v) + 1).collect();
        let starts = balanced_blocks(&weights, 4);
        let mut blocked = vec![0u32; g.num_vertices() as usize];
        for p in 0..4usize {
            for v in starts[p]..starts[p + 1] {
                blocked[v as usize] = p as u32;
            }
        }
        let internal = |own: &[u32]| -> u64 {
            let mut k = 0;
            for u in 0..g.num_vertices() {
                for &v in g.neighbors(u) {
                    if own[u as usize] == own[v as usize] {
                        k += 1;
                    }
                }
            }
            k
        };
        assert!(
            internal(&owner) >= internal(&blocked),
            "LP {} vs blocked {}",
            internal(&owner),
            internal(&blocked)
        );
    }

    #[test]
    fn bfs_grow_produces_connected_ish_clusters() {
        // A web crawl has site locality for BFS-grow to exploit; an R-MAT
        // expander would not.
        let g = dirgl_graph::WebCrawlConfig::new(4_000, 60_000, 300, 200, 12)
            .seed(5)
            .generate();
        let owner = bfs_grow(&g, 4, 1);
        assert!(owner.iter().all(|&o| o < 4));
        // Locality: a healthy fraction of edges stay internal (random
        // assignment would keep only ~25%).
        let mut internal = 0u64;
        for u in 0..g.num_vertices() {
            for &v in g.neighbors(u) {
                if owner[u as usize] == owner[v as usize] {
                    internal += 1;
                }
            }
        }
        let frac = internal as f64 / g.num_edges() as f64;
        assert!(frac > 0.3, "internal fraction {frac}");
    }
}
