//! Streaming partition construction (CuSP's algorithm, in-memory).

use rayon::prelude::*;

use dirgl_graph::csr::{Csr, CsrBuilder, VertexId};
use dirgl_graph::stream::EdgeSource;

use crate::edges::{default_hvc_threshold, EdgeRule};
use crate::links::PairLink;
use crate::local::LocalGraph;
use crate::masters::{assign_masters, assign_masters_from_degrees, in_degrees};
use crate::policy::{Grid, Policy};

/// A complete partitioning of a graph across `num_devices` devices.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// Policy used.
    pub policy: Policy,
    /// Number of devices.
    pub num_devices: u32,
    /// CVC device grid (present only for [`Policy::Cvc`]).
    pub grid: Option<Grid>,
    /// |V| of the global graph.
    pub num_global_vertices: u32,
    /// Per-device local graphs.
    pub locals: Vec<LocalGraph>,
    /// Exchange links indexed `holder * num_devices + owner`.
    links: Vec<PairLink>,
}

impl Partition {
    /// Partitions `g` with `policy` across `num_devices` devices.
    ///
    /// `seed` feeds the random/BFS-grow master rules; the edge-balanced
    /// policies are fully deterministic.
    pub fn build(g: &Csr, policy: Policy, num_devices: u32, seed: u64) -> Partition {
        assert!(num_devices >= 1);
        let n = g.num_vertices();
        let p = num_devices as usize;
        let ma = assign_masters(g, policy, num_devices, seed);
        let grid = (policy == Policy::Cvc).then(|| Grid::for_devices(num_devices));
        let ind = (policy == Policy::Hvc).then(|| in_degrees(g));
        let avg = if n == 0 {
            0.0
        } else {
            g.num_edges() as f64 / n as f64
        };
        let rule = EdgeRule::new(
            policy,
            &ma.owner,
            grid,
            ind.as_deref(),
            default_hvc_threshold(avg),
        );

        // --- Edge assignment: bucket every edge onto its device. ---
        let mut dev_edges: Vec<Vec<(VertexId, VertexId, u32)>> = vec![Vec::new(); p];
        for u in 0..n {
            for (v, w) in g.edges(u) {
                dev_edges[rule.device_of(u, v) as usize].push((u, v, w));
            }
        }

        // --- Masters per device, in ascending global id. ---
        let mut masters_per_dev: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        for v in 0..n {
            masters_per_dev[ma.owner[v as usize] as usize].push(v);
        }

        // --- Local graph construction, one device at a time (parallel). ---
        let owner = &ma.owner;
        let weighted = g.is_weighted();
        let locals: Vec<LocalGraph> = dev_edges
            .into_par_iter()
            .zip(masters_per_dev.into_par_iter())
            .enumerate()
            .map(|(d, (edges, masters))| build_local(d as u32, edges, masters, owner, weighted))
            .collect();

        let links = build_links(&locals, p);

        Partition {
            policy,
            num_devices,
            grid,
            num_global_vertices: n,
            locals,
            links,
        }
    }

    /// Two-pass chunked partition build over any [`EdgeSource`] — the
    /// out-of-core counterpart of [`Partition::build`], bit-identical to it
    /// for every supported policy (pinned by tests here and in
    /// `tests/scale_determinism.rs`).
    ///
    /// Pass 1 streams the edges once to accumulate out/in-degree
    /// histograms, from which
    /// [`assign_masters_from_degrees`](crate::masters::assign_masters_from_degrees)
    /// derives the master assignment — the same computation
    /// [`assign_masters`] performs from the materialized CSR. Pass 2
    /// streams again, routing each edge through the policy's [`EdgeRule`]
    /// into a per-device spill file. Each device's edges are then read back
    /// one device at a time and fed to the same `build_local` the in-memory
    /// builder uses, so the resulting [`LocalGraph`]s cannot differ.
    ///
    /// Peak memory is the degree/owner arrays (`O(|V|)`), one device's edge
    /// set (`~|E| / p`, which the per-device CSR must hold anyway) and the
    /// accumulated local graphs — never the full global edge list. The
    /// traversal-based policies (`MetisLike`, `Xtrapulp`) need the whole
    /// graph in memory and panic here; partition them via
    /// [`Partition::build`].
    pub fn build_streamed(
        src: &dyn EdgeSource,
        policy: Policy,
        num_devices: u32,
        seed: u64,
    ) -> Partition {
        assert!(num_devices >= 1);
        let n = src.num_vertices();
        let p = num_devices as usize;

        // --- Pass 1: degree histograms → master assignment. ---
        let mut out_deg = vec![0u32; n as usize];
        let mut in_deg = vec![0u32; n as usize];
        let mut m = 0u64;
        src.for_each_edge(&mut |u, v, _| {
            out_deg[u as usize] += 1;
            in_deg[v as usize] += 1;
            m += 1;
        });
        let ma = assign_masters_from_degrees(policy, &out_deg, &in_deg, num_devices, seed);
        drop(out_deg);
        let grid = (policy == Policy::Cvc).then(|| Grid::for_devices(num_devices));
        let ind = (policy == Policy::Hvc).then_some(in_deg.as_slice());
        let avg = if n == 0 { 0.0 } else { m as f64 / n as f64 };
        let rule = EdgeRule::new(policy, &ma.owner, grid, ind, default_hvc_threshold(avg));

        // --- Pass 2: route edges into per-device spill files. ---
        let mut writers: Vec<DeviceEdgeSpill> =
            (0..p).map(|d| DeviceEdgeSpill::create(d as u32)).collect();
        src.for_each_edge(&mut |u, v, w| {
            writers[rule.device_of(u, v) as usize].push(u, v, w);
        });
        drop(in_deg);

        // --- Masters per device, in ascending global id. ---
        let mut masters_per_dev: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        for v in 0..n {
            masters_per_dev[ma.owner[v as usize] as usize].push(v);
        }

        // --- Local graphs, one device at a time to bound the peak. ---
        let weighted = src.is_weighted();
        let mut locals: Vec<LocalGraph> = Vec::with_capacity(p);
        for (d, (writer, masters)) in writers.drain(..).zip(masters_per_dev).enumerate() {
            let edges = writer.into_edges();
            locals.push(build_local(d as u32, edges, masters, &ma.owner, weighted));
        }

        let links = build_links(&locals, p);

        Partition {
            policy,
            num_devices,
            grid,
            num_global_vertices: n,
            locals,
            links,
        }
    }

    /// Reassembles a partition from previously serialized parts,
    /// validating basic consistency (used by [`crate::io`]).
    #[allow(clippy::result_large_err)]
    pub fn from_parts(
        policy: Policy,
        num_devices: u32,
        grid: Option<Grid>,
        num_global_vertices: u32,
        locals: Vec<LocalGraph>,
        links: Vec<PairLink>,
    ) -> Result<Partition, String> {
        if locals.len() != num_devices as usize {
            return Err(format!(
                "expected {num_devices} locals, got {}",
                locals.len()
            ));
        }
        if links.len() != (num_devices * num_devices) as usize {
            return Err("link table size mismatch".into());
        }
        for (d, lg) in locals.iter().enumerate() {
            if lg.device != d as u32 {
                return Err(format!("local {d} carries device id {}", lg.device));
            }
            if lg.num_masters > lg.num_vertices() {
                return Err("more masters than vertices".into());
            }
        }
        Ok(Partition {
            policy,
            num_devices,
            grid,
            num_global_vertices,
            locals,
            links,
        })
    }

    /// The exchange link for mirrors held on `holder` whose masters live on
    /// `owner`.
    #[inline]
    pub fn link(&self, holder: u32, owner: u32) -> &PairLink {
        &self.links[(holder * self.num_devices + owner) as usize]
    }

    /// Average proxies per global vertex (§III-A's replication factor).
    pub fn replication_factor(&self) -> f64 {
        let total: u64 = self.locals.iter().map(|l| l.num_vertices() as u64).sum();
        total as f64 / self.num_global_vertices.max(1) as f64
    }

    /// Total edges across devices (must equal the input graph's edges).
    pub fn total_edges(&self) -> u64 {
        self.locals.iter().map(|l| l.num_edges()).sum()
    }

    /// Devices owning at least one mirror of masters on `owner` — the
    /// broadcast partner set before update filtering.
    pub fn mirror_holders(&self, owner: u32) -> Vec<u32> {
        (0..self.num_devices)
            .filter(|&h| h != owner && !self.link(h, owner).is_empty())
            .collect()
    }
}

/// Exchange links: align mirror lists with master local ids. Shared by the
/// in-memory and chunked builders.
fn build_links(locals: &[LocalGraph], p: usize) -> Vec<PairLink> {
    let mut links: Vec<PairLink> = vec![PairLink::default(); p * p];
    for (holder, lg) in locals.iter().enumerate() {
        for lv in lg.num_masters..lg.num_vertices() {
            let ow = lg.master_device[lv as usize] as usize;
            debug_assert_ne!(ow, holder);
            let link = &mut links[holder * p + ow];
            link.mirror_side.push(lv);
            link.mirror_has_out.push(lg.has_out_edges(lv));
            link.mirror_has_in.push(lg.has_in_edges(lv));
            // Global id resolves to a master local id on the owner.
            let gid = lg.l2g[lv as usize];
            let m = locals[ow].g2l[&gid];
            debug_assert!(locals[ow].is_master(m));
            link.master_side.push(m);
        }
    }
    links
}

/// One device's routed edges, spilled to a temp file during the chunked
/// build's second pass so only one device's edge set is ever resident.
/// Records are 12 bytes (`u`, `v`, `w` as LE u32) in stream order — the
/// same order the in-memory builder buckets them — so `build_local` sees an
/// identical sequence.
struct DeviceEdgeSpill {
    path: std::path::PathBuf,
    w: std::io::BufWriter<std::fs::File>,
    count: usize,
}

impl DeviceEdgeSpill {
    fn create(device: u32) -> Self {
        let path = dirgl_graph::stream::spill_file_path(&format!("dev{device}"));
        let file = std::fs::File::create(&path).expect("create device edge spill");
        DeviceEdgeSpill {
            path,
            w: std::io::BufWriter::new(file),
            count: 0,
        }
    }

    #[inline]
    fn push(&mut self, u: u32, v: u32, w: u32) {
        use std::io::Write;
        let mut rec = [0u8; 12];
        rec[0..4].copy_from_slice(&u.to_le_bytes());
        rec[4..8].copy_from_slice(&v.to_le_bytes());
        rec[8..12].copy_from_slice(&w.to_le_bytes());
        self.w.write_all(&rec).expect("write device edge spill");
        self.count += 1;
    }

    /// Reads the routed edges back and removes the spill file.
    fn into_edges(mut self) -> Vec<(VertexId, VertexId, u32)> {
        use std::io::{Read, Write};
        self.w.flush().expect("flush device edge spill");
        drop(self.w);
        let mut edges = Vec::with_capacity(self.count);
        let file = std::fs::File::open(&self.path).expect("open device edge spill");
        let mut r = std::io::BufReader::new(file);
        let mut rec = [0u8; 12];
        for _ in 0..self.count {
            r.read_exact(&mut rec).expect("read device edge spill");
            edges.push((
                u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                u32::from_le_bytes(rec[8..12].try_into().unwrap()),
            ));
        }
        let _ = std::fs::remove_file(&self.path);
        edges
    }
}

fn build_local(
    device: u32,
    edges: Vec<(VertexId, VertexId, u32)>,
    masters: Vec<VertexId>,
    owner: &[u32],
    weighted: bool,
) -> LocalGraph {
    // Vertex set: all masters assigned here plus every endpoint of a local
    // edge. Masters come first (ascending global id), then mirrors.
    let num_masters = masters.len() as u32;
    let mut g2l = std::collections::HashMap::with_capacity(masters.len() * 2);
    let mut l2g: Vec<VertexId> = Vec::with_capacity(masters.len() * 2);
    for &v in &masters {
        g2l.insert(v, l2g.len() as VertexId);
        l2g.push(v);
    }
    let mut mirrors: Vec<VertexId> = Vec::new();
    for &(u, v, _) in &edges {
        for gid in [u, v] {
            if let std::collections::hash_map::Entry::Vacant(e) = g2l.entry(gid) {
                e.insert(VertexId::MAX); // placeholder, fixed below
                mirrors.push(gid);
            }
        }
    }
    mirrors.sort_unstable();
    for gid in mirrors {
        let lv = l2g.len() as VertexId;
        g2l.insert(gid, lv);
        l2g.push(gid);
    }

    let mut b = CsrBuilder::with_capacity(l2g.len() as u32, edges.len());
    for (u, v, w) in edges {
        let (lu, lv) = (g2l[&u], g2l[&v]);
        if weighted {
            b.add_weighted(lu, lv, w);
        } else {
            b.add(lu, lv);
        }
    }
    let csr = b.build();
    let in_csr = csr.transpose();
    let master_device: Vec<u32> = l2g.iter().map(|&gid| owner[gid as usize]).collect();

    LocalGraph {
        device,
        num_masters,
        l2g: l2g.into_boxed_slice(),
        master_device: master_device.into_boxed_slice(),
        csr,
        in_csr,
        g2l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_graph::{RmatConfig, WebCrawlConfig};

    fn check_partition_invariants(g: &Csr, part: &Partition) {
        let p = part.num_devices;
        // 1. Every edge appears exactly once across devices.
        assert_eq!(part.total_edges(), g.num_edges());
        let mut global_edges: Vec<(u32, u32, u32)> = Vec::new();
        for lg in &part.locals {
            for lu in 0..lg.num_vertices() {
                for (lv, w) in lg.csr.edges(lu) {
                    global_edges.push((lg.l2g[lu as usize], lg.l2g[lv as usize], w));
                }
            }
        }
        global_edges.sort_unstable();
        let mut expected: Vec<(u32, u32, u32)> = g.iter_all_edges().collect();
        expected.sort_unstable();
        assert_eq!(global_edges, expected);

        // 2. Every global vertex has exactly one master.
        let mut master_count = vec![0u32; g.num_vertices() as usize];
        for lg in &part.locals {
            for lv in 0..lg.num_masters {
                master_count[lg.l2g[lv as usize] as usize] += 1;
            }
        }
        assert!(master_count.iter().all(|&c| c == 1));

        // 3. Links are aligned: the global ids match entry by entry.
        for holder in 0..p {
            for ow in 0..p {
                let link = part.link(holder, ow);
                for i in 0..link.len() {
                    let gid_m = part.locals[holder as usize].l2g[link.mirror_side[i] as usize];
                    let gid_o = part.locals[ow as usize].l2g[link.master_side[i] as usize];
                    assert_eq!(gid_m, gid_o);
                    assert!(part.locals[ow as usize].is_master(link.master_side[i]));
                    assert!(!part.locals[holder as usize].is_master(link.mirror_side[i]));
                }
            }
            // A device never links to itself.
            assert!(part.link(holder, holder).is_empty());
        }
    }

    #[test]
    fn all_policies_satisfy_invariants() {
        let g = RmatConfig::new(9, 8).seed(4).generate();
        for policy in [
            Policy::Oec,
            Policy::Iec,
            Policy::Hvc,
            Policy::Cvc,
            Policy::Random,
            Policy::MetisLike,
        ] {
            for p in [1, 2, 4, 8] {
                let part = Partition::build(&g, policy, p, 42);
                check_partition_invariants(&g, &part);
            }
        }
    }

    #[test]
    fn oec_keeps_out_edges_at_master() {
        let g = RmatConfig::new(9, 6).seed(1).generate();
        let part = Partition::build(&g, Policy::Oec, 4, 0);
        for lg in &part.locals {
            for lv in lg.num_masters..lg.num_vertices() {
                assert!(!lg.has_out_edges(lv), "mirror with out-edges under OEC");
            }
        }
    }

    #[test]
    fn iec_keeps_in_edges_at_master() {
        let g = RmatConfig::new(9, 6).seed(1).generate();
        let part = Partition::build(&g, Policy::Iec, 4, 0);
        for lg in &part.locals {
            for lv in lg.num_masters..lg.num_vertices() {
                assert!(!lg.has_in_edges(lv), "mirror with in-edges under IEC");
            }
        }
    }

    #[test]
    fn cvc_structural_invariants() {
        let g = RmatConfig::new(10, 8).seed(7).generate();
        let part = Partition::build(&g, Policy::Cvc, 8, 0);
        let grid = part.grid.unwrap();
        for lg in &part.locals {
            for lv in lg.num_masters..lg.num_vertices() {
                let owner_dev = lg.master_device[lv as usize];
                // Mirrors with out-edges share the master's grid row.
                if lg.has_out_edges(lv) {
                    assert_eq!(grid.row(lg.device), grid.row(owner_dev));
                }
                // Mirrors with in-edges share the master's grid column.
                if lg.has_in_edges(lv) {
                    assert_eq!(grid.col(lg.device), grid.col(owner_dev));
                }
            }
        }
    }

    #[test]
    fn cvc_restricts_communication_partners() {
        let g = RmatConfig::new(10, 8).seed(3).generate();
        let part = Partition::build(&g, Policy::Cvc, 16, 0);
        let grid = part.grid.unwrap();
        // Any device's non-empty links target only its grid row/column.
        for holder in 0..16 {
            for ow in 0..16 {
                if holder != ow && !part.link(holder, ow).is_empty() {
                    let same_row = grid.row(holder) == grid.row(ow);
                    let same_col = grid.col(holder) == grid.col(ow);
                    assert!(same_row || same_col, "link {holder}->{ow} crosses the grid");
                }
            }
        }
    }

    #[test]
    fn single_device_partition_has_no_mirrors() {
        let g = RmatConfig::new(8, 4).seed(2).generate();
        for policy in [Policy::Oec, Policy::Cvc, Policy::Hvc] {
            let part = Partition::build(&g, policy, 1, 0);
            assert_eq!(part.locals[0].num_mirrors(), 0);
            assert!((part.replication_factor() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn vertex_cut_replication_grows_with_devices() {
        let g = RmatConfig::new(10, 8).seed(9).generate();
        let r2 = Partition::build(&g, Policy::Cvc, 2, 0).replication_factor();
        let r16 = Partition::build(&g, Policy::Cvc, 16, 0).replication_factor();
        assert!(r16 > r2, "r2={r2} r16={r16}");
    }

    #[test]
    fn webcrawl_locality_gives_edge_cuts_low_replication() {
        let g = WebCrawlConfig::new(8_000, 120_000, 400, 400, 20)
            .seed(5)
            .generate();
        let iec = Partition::build(&g, Policy::Iec, 8, 0).replication_factor();
        let random = Partition::build(&g, Policy::Random, 8, 0).replication_factor();
        // Contiguous blocks exploit crawl locality; random destroys it.
        assert!(iec < random, "iec={iec} random={random}");
    }

    #[test]
    fn chunked_builder_is_bit_identical_to_in_memory() {
        let g = dirgl_graph::weights::randomize_weights(
            &RmatConfig::new(9, 8).seed(4).generate(),
            100,
            3,
        );
        let compressed = dirgl_graph::CompressedCsr::from_csr(&g);
        for policy in [
            Policy::Oec,
            Policy::Iec,
            Policy::Hvc,
            Policy::Cvc,
            Policy::Random,
        ] {
            for p in [1, 4, 8] {
                let in_mem = Partition::build(&g, policy, p, 42);
                // Streamed from the raw CSR...
                let streamed = Partition::build_streamed(&g, policy, p, 42);
                assert_eq!(streamed, in_mem, "{policy} p={p} (csr source)");
                // ...and from the compressed representation.
                let streamed = Partition::build_streamed(&compressed, policy, p, 42);
                assert_eq!(streamed, in_mem, "{policy} p={p} (compressed source)");
            }
        }
    }

    #[test]
    fn chunked_builder_matches_on_unweighted_webcrawl() {
        let g = WebCrawlConfig::new(6_000, 80_000, 300, 300, 18)
            .seed(11)
            .generate();
        let in_mem = Partition::build(&g, Policy::Iec, 4, 7);
        assert_eq!(Partition::build_streamed(&g, Policy::Iec, 4, 7), in_mem);
    }

    #[test]
    #[should_panic(expected = "materialized graph")]
    fn chunked_builder_rejects_traversal_policies() {
        let g = RmatConfig::new(6, 4).seed(1).generate();
        let _ = Partition::build_streamed(&g, Policy::MetisLike, 2, 0);
    }

    #[test]
    fn weights_preserved_through_partitioning() {
        let g = dirgl_graph::weights::randomize_weights(
            &RmatConfig::new(8, 4).seed(6).generate(),
            50,
            1,
        );
        let part = Partition::build(&g, Policy::Cvc, 4, 0);
        for lg in &part.locals {
            assert!(lg.csr.is_weighted());
            for lu in 0..lg.num_vertices() {
                for (lv, w) in lg.csr.edges(lu) {
                    let (gu, gv) = (lg.l2g[lu as usize], lg.l2g[lv as usize]);
                    // Weight must match one of gu's edges to gv globally.
                    let found = g.edges(gu).any(|(t, wt)| t == gv && wt == w);
                    assert!(found, "weight mismatch on ({gu},{gv})");
                }
            }
        }
    }
}
