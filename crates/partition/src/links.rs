//! Mirror↔master exchange links.
//!
//! For every ordered device pair `(holder, owner)` with at least one mirror
//! on `holder` whose master lives on `owner`, a [`PairLink`] stores the two
//! aligned local-id arrays the Gluon-style substrate synchronizes over:
//! entry `i` pairs `mirror_side[i]` (a local id on `holder`) with
//! `master_side[i]` (a local id on `owner`).
//!
//! The alignment *is* the paper's address-translation memoization
//! (§III-D2 footnote): because both sides agree on the order once at
//! construction, steady-state messages carry values (or a bitset + values)
//! and never global ids.

use serde::{Deserialize, Serialize};

use dirgl_graph::csr::VertexId;

/// Aligned exchange arrays for one (mirror holder, master owner) pair.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PairLink {
    /// Local ids on the mirror-holding device.
    pub mirror_side: Vec<VertexId>,
    /// Local ids on the master-owning device, aligned with `mirror_side`.
    pub master_side: Vec<VertexId>,
    /// Per-entry: mirror has local out-edges (is *read* by push programs).
    pub mirror_has_out: Vec<bool>,
    /// Per-entry: mirror has local in-edges (is *written* by push programs).
    pub mirror_has_in: Vec<bool>,
}

impl PairLink {
    /// Number of shared proxies on this link.
    pub fn len(&self) -> usize {
        self.mirror_side.len()
    }

    /// True when no proxies are shared.
    pub fn is_empty(&self) -> bool {
        self.mirror_side.is_empty()
    }

    /// Entry indices whose mirror can be written by a program writing at
    /// the given location — the reduce participant set.
    pub fn written_entries(&self, write_at_dst: bool) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&i| {
                if write_at_dst {
                    self.mirror_has_in[i as usize]
                } else {
                    self.mirror_has_out[i as usize]
                }
            })
            .collect()
    }

    /// Entry indices whose mirror is read by a program reading at the given
    /// location — the broadcast participant set.
    pub fn read_entries(&self, read_at_src: bool) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&i| {
                if read_at_src {
                    self.mirror_has_out[i as usize]
                } else {
                    self.mirror_has_in[i as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> PairLink {
        PairLink {
            mirror_side: vec![5, 6, 7],
            master_side: vec![1, 0, 2],
            mirror_has_out: vec![true, false, true],
            mirror_has_in: vec![false, true, true],
        }
    }

    #[test]
    fn participant_filtering() {
        let l = link();
        // Push programs write at destination: mirrors with in-edges.
        assert_eq!(l.written_entries(true), vec![1, 2]);
        // Push programs read at source: mirrors with out-edges.
        assert_eq!(l.read_entries(true), vec![0, 2]);
        // Pull programs write at themselves (destination of in-edges
        // iterated): mirrors with out-edges hold the *read* side.
        assert_eq!(l.written_entries(false), vec![0, 2]);
        assert_eq!(l.read_entries(false), vec![1, 2]);
    }

    #[test]
    fn empty_link() {
        let l = PairLink::default();
        assert!(l.is_empty());
        assert!(l.written_entries(true).is_empty());
    }
}
