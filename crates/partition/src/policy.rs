//! Partitioning policies and the CVC device grid.

use serde::{Deserialize, Serialize};

/// A graph partitioning policy (§III-C of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Edge-balanced outgoing edge-cut: all out-edges of a vertex are
    /// assigned to its master's device.
    Oec,
    /// Edge-balanced incoming edge-cut (Lux's only policy): all in-edges of
    /// a vertex live with its master.
    Iec,
    /// Hybrid vertex-cut (PowerLyra): low-in-degree vertices keep their
    /// in-edges at the master; high-in-degree vertices' in-edges are split
    /// by source.
    Hvc,
    /// Cartesian vertex-cut: a 2D blocked cut of the adjacency matrix over
    /// a `pr x pc` device grid (Fig. 2 of the paper).
    Cvc,
    /// Random vertex assignment, out-edges with the source's owner
    /// (Gunrock's default).
    Random,
    /// BFS-grow locality-seeking edge-cut, standing in for METIS (Groute).
    MetisLike,
    /// XtraPulp-style edge-cut (Slota et al., cited in §III-C): label
    /// propagation refines a blocked start towards neighborhood locality
    /// under a balance constraint. An extension beyond the paper's
    /// evaluated policies.
    Xtrapulp,
}

impl Policy {
    /// The four policies the paper studies in D-IrGL.
    pub const DIRGL: [Policy; 4] = [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Oec => "OEC",
            Policy::Iec => "IEC",
            Policy::Hvc => "HVC",
            Policy::Cvc => "CVC",
            Policy::Random => "Random",
            Policy::MetisLike => "MetisLike",
            Policy::Xtrapulp => "XtraPulp",
        }
    }

    /// True for vertex-cuts (an edge may land on a device owning neither
    /// endpoint's master).
    pub fn is_vertex_cut(self) -> bool {
        matches!(self, Policy::Hvc | Policy::Cvc)
    }

    /// True when the policy guarantees every out-edge of a vertex is on the
    /// master's device (push-style programs then never read at mirrors, so
    /// broadcast is elided — §III-D1).
    pub fn out_edges_at_master(self) -> bool {
        matches!(
            self,
            Policy::Oec | Policy::Random | Policy::MetisLike | Policy::Xtrapulp
        )
    }

    /// True when the policy guarantees every in-edge of a vertex is on the
    /// master's device (push-style programs then never write at mirrors, so
    /// reduce is elided).
    pub fn in_edges_at_master(self) -> bool {
        matches!(self, Policy::Iec)
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The CVC device grid: `pr` rows × `pc` columns, `pr >= pc`.
///
/// Device `d` sits at row `d / pc`, column `d % pc`. An edge `(u, v)` is
/// assigned to the device at `(row_of(owner(u)), col_of(owner(v)))`, which
/// yields the paper's structural invariants: all proxies of `u` holding
/// out-edges share `owner(u)`'s grid row; all proxies of `v` holding
/// in-edges share `owner(v)`'s grid column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    /// Rows.
    pub pr: u32,
    /// Columns.
    pub pc: u32,
}

impl Grid {
    /// Factorizes `p = pr * pc` with `pc` the largest divisor of `p` not
    /// exceeding `sqrt(p)` (so `pr >= pc`); 8 devices yield the 4×2 grid of
    /// the paper's Fig. 2.
    pub fn for_devices(p: u32) -> Grid {
        assert!(p > 0);
        let mut pc = (p as f64).sqrt().floor() as u32;
        while pc > 1 && !p.is_multiple_of(pc) {
            pc -= 1;
        }
        Grid { pr: p / pc, pc }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> u32 {
        self.pr * self.pc
    }

    /// Grid row of device `d`.
    #[inline]
    pub fn row(&self, d: u32) -> u32 {
        d / self.pc
    }

    /// Grid column of device `d`.
    #[inline]
    pub fn col(&self, d: u32) -> u32 {
        d % self.pc
    }

    /// Device at grid position `(r, c)`.
    #[inline]
    pub fn device_at(&self, r: u32, c: u32) -> u32 {
        debug_assert!(r < self.pr && c < self.pc);
        r * self.pc + c
    }

    /// Devices sharing a grid row with `d` (including `d`).
    pub fn row_peers(&self, d: u32) -> impl Iterator<Item = u32> + '_ {
        let r = self.row(d);
        (0..self.pc).map(move |c| self.device_at(r, c))
    }

    /// Devices sharing a grid column with `d` (including `d`).
    pub fn col_peers(&self, d: u32) -> impl Iterator<Item = u32> + '_ {
        let c = self.col(d);
        (0..self.pr).map(move |r| self.device_at(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorization() {
        assert_eq!(Grid::for_devices(8), Grid { pr: 4, pc: 2 }); // Fig. 2
        assert_eq!(Grid::for_devices(1), Grid { pr: 1, pc: 1 });
        assert_eq!(Grid::for_devices(2), Grid { pr: 2, pc: 1 });
        assert_eq!(Grid::for_devices(4), Grid { pr: 2, pc: 2 });
        assert_eq!(Grid::for_devices(6), Grid { pr: 3, pc: 2 });
        assert_eq!(Grid::for_devices(16), Grid { pr: 4, pc: 4 });
        assert_eq!(Grid::for_devices(32), Grid { pr: 8, pc: 4 });
        assert_eq!(Grid::for_devices(64), Grid { pr: 8, pc: 8 });
        assert_eq!(Grid::for_devices(7), Grid { pr: 7, pc: 1 }); // prime
    }

    #[test]
    fn grid_coordinates_roundtrip() {
        let g = Grid::for_devices(32);
        for d in 0..32 {
            assert_eq!(g.device_at(g.row(d), g.col(d)), d);
        }
    }

    #[test]
    fn row_and_col_peers() {
        let g = Grid::for_devices(8); // 4x2
        assert_eq!(g.row_peers(5).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(g.col_peers(5).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn policy_invariant_flags() {
        assert!(Policy::Oec.out_edges_at_master());
        assert!(!Policy::Oec.in_edges_at_master());
        assert!(Policy::Iec.in_edges_at_master());
        assert!(!Policy::Iec.out_edges_at_master());
        assert!(Policy::Cvc.is_vertex_cut());
        assert!(Policy::Hvc.is_vertex_cut());
        assert!(!Policy::Iec.is_vertex_cut());
        assert!(!Policy::Cvc.out_edges_at_master());
        assert!(!Policy::Cvc.in_edges_at_master());
    }
}
