//! Partition serialization.
//!
//! The paper's methodology note (§IV-A footnote): "graphs can be
//! partitioned once, and in-memory representations of the partitions can
//! be written to disk. Applications can then load these partitions
//! directly." This module provides exactly that: a binary dump/load of a
//! complete [`Partition`], so harnesses can skip repartitioning across
//! runs and processes.

use std::io::{self, BufWriter, Read, Write};

use dirgl_graph::io::{read_binary as read_csr, write_binary as write_csr};

use crate::builder::Partition;
use crate::links::PairLink;
use crate::local::LocalGraph;
use crate::policy::{Grid, Policy};

const MAGIC: &[u8; 8] = b"DIRGLPRT";

fn w_u32<W: Write>(w: &mut W, x: u32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn w_vec_u32<W: Write>(w: &mut W, xs: &[u32]) -> io::Result<()> {
    w_u32(w, xs.len() as u32)?;
    for &x in xs {
        w_u32(w, x)?;
    }
    Ok(())
}

fn r_vec_u32<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
    let n = r_u32(r)? as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r_u32(r)?);
    }
    Ok(v)
}

fn policy_tag(p: Policy) -> u32 {
    match p {
        Policy::Oec => 0,
        Policy::Iec => 1,
        Policy::Hvc => 2,
        Policy::Cvc => 3,
        Policy::Random => 4,
        Policy::MetisLike => 5,
        Policy::Xtrapulp => 6,
    }
}

fn tag_policy(t: u32) -> io::Result<Policy> {
    Ok(match t {
        0 => Policy::Oec,
        1 => Policy::Iec,
        2 => Policy::Hvc,
        3 => Policy::Cvc,
        4 => Policy::Random,
        5 => Policy::MetisLike,
        6 => Policy::Xtrapulp,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad policy tag")),
    })
}

/// Writes a partition as a binary stream.
pub fn write_partition<W: Write>(part: &Partition, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w_u32(&mut w, policy_tag(part.policy))?;
    w_u32(&mut w, part.num_devices)?;
    w_u32(&mut w, part.num_global_vertices)?;
    match part.grid {
        Some(g) => {
            w_u32(&mut w, 1)?;
            w_u32(&mut w, g.pr)?;
            w_u32(&mut w, g.pc)?;
        }
        None => w_u32(&mut w, 0)?,
    }
    for lg in &part.locals {
        w_u32(&mut w, lg.device)?;
        w_u32(&mut w, lg.num_masters)?;
        w_vec_u32(&mut w, &lg.l2g)?;
        w_vec_u32(&mut w, &lg.master_device)?;
        write_csr(&lg.csr, &mut w)?;
    }
    for holder in 0..part.num_devices {
        for owner in 0..part.num_devices {
            let link = part.link(holder, owner);
            w_vec_u32(&mut w, &link.mirror_side)?;
            w_vec_u32(&mut w, &link.master_side)?;
            let flags: Vec<u32> = link
                .mirror_has_out
                .iter()
                .zip(&link.mirror_has_in)
                .map(|(&o, &i)| o as u32 | (i as u32) << 1)
                .collect();
            w_vec_u32(&mut w, &flags)?;
        }
    }
    w.flush()
}

/// Reads a partition written by [`write_partition`].
pub fn read_partition<R: Read>(mut r: R) -> io::Result<Partition> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let policy = tag_policy(r_u32(&mut r)?)?;
    let num_devices = r_u32(&mut r)?;
    let num_global_vertices = r_u32(&mut r)?;
    let grid = if r_u32(&mut r)? == 1 {
        Some(Grid {
            pr: r_u32(&mut r)?,
            pc: r_u32(&mut r)?,
        })
    } else {
        None
    };
    let mut locals = Vec::with_capacity(num_devices as usize);
    for _ in 0..num_devices {
        let device = r_u32(&mut r)?;
        let num_masters = r_u32(&mut r)?;
        let l2g = r_vec_u32(&mut r)?;
        let master_device = r_vec_u32(&mut r)?;
        let csr = read_csr(&mut r)?;
        let in_csr = csr.transpose();
        let g2l = l2g
            .iter()
            .enumerate()
            .map(|(lv, &gv)| (gv, lv as u32))
            .collect();
        locals.push(LocalGraph {
            device,
            num_masters,
            l2g: l2g.into_boxed_slice(),
            master_device: master_device.into_boxed_slice(),
            csr,
            in_csr,
            g2l,
        });
    }
    let mut links = Vec::with_capacity((num_devices * num_devices) as usize);
    for _ in 0..num_devices * num_devices {
        let mirror_side = r_vec_u32(&mut r)?;
        let master_side = r_vec_u32(&mut r)?;
        let flags = r_vec_u32(&mut r)?;
        if mirror_side.len() != master_side.len() || mirror_side.len() != flags.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "misaligned link",
            ));
        }
        links.push(PairLink {
            mirror_side,
            master_side,
            mirror_has_out: flags.iter().map(|&f| f & 1 != 0).collect(),
            mirror_has_in: flags.iter().map(|&f| f & 2 != 0).collect(),
        });
    }
    Partition::from_parts(
        policy,
        num_devices,
        grid,
        num_global_vertices,
        locals,
        links,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_graph::weights::randomize_weights;
    use dirgl_graph::RmatConfig;

    #[test]
    fn roundtrip_preserves_everything() {
        let g = randomize_weights(&RmatConfig::new(9, 6).seed(5).generate(), 50, 1);
        for policy in [Policy::Cvc, Policy::Iec, Policy::Hvc] {
            let part = Partition::build(&g, policy, 6, 3);
            let mut buf = Vec::new();
            write_partition(&part, &mut buf).unwrap();
            let back = read_partition(&buf[..]).unwrap();
            assert_eq!(back.policy, part.policy);
            assert_eq!(back.num_devices, part.num_devices);
            assert_eq!(back.grid, part.grid);
            assert_eq!(back.total_edges(), part.total_edges());
            for d in 0..6 {
                let (a, b) = (&part.locals[d], &back.locals[d]);
                assert_eq!(a.l2g, b.l2g);
                assert_eq!(a.num_masters, b.num_masters);
                assert_eq!(a.csr, b.csr);
                assert_eq!(a.in_csr, b.in_csr);
                for o in 0..6 {
                    let (la, lb) = (part.link(d as u32, o), back.link(d as u32, o));
                    assert_eq!(la.mirror_side, lb.mirror_side);
                    assert_eq!(la.master_side, lb.master_side);
                    assert_eq!(la.mirror_has_out, lb.mirror_has_out);
                    assert_eq!(la.mirror_has_in, lb.mirror_has_in);
                }
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_partition(&b"NOTAPART"[..]).is_err());
        assert!(read_partition(&b"DIRGLPRT\xff\xff\xff\xff"[..]).is_err());
    }
}
