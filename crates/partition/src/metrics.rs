//! Partition quality metrics — the inputs to Table IV and the memory
//! columns of Table III.

use serde::{Deserialize, Serialize};

use crate::builder::Partition;

/// Static measures of a partition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionMetrics {
    /// Edges per device.
    pub edges_per_device: Vec<u64>,
    /// Proxies per device.
    pub vertices_per_device: Vec<u32>,
    /// Masters per device.
    pub masters_per_device: Vec<u32>,
    /// max/mean of `edges_per_device` — the paper's **static load balance**
    /// metric (Table IV "Static").
    pub static_balance: f64,
    /// Average proxies per vertex.
    pub replication_factor: f64,
}

impl PartitionMetrics {
    /// Computes metrics for `part`.
    pub fn compute(part: &Partition) -> PartitionMetrics {
        let edges: Vec<u64> = part.locals.iter().map(|l| l.num_edges()).collect();
        let verts: Vec<u32> = part.locals.iter().map(|l| l.num_vertices()).collect();
        let masters: Vec<u32> = part.locals.iter().map(|l| l.num_masters).collect();
        PartitionMetrics {
            static_balance: max_over_mean_u64(&edges),
            replication_factor: part.replication_factor(),
            edges_per_device: edges,
            vertices_per_device: verts,
            masters_per_device: masters,
        }
    }

    /// Device-memory bytes per device for a program with `label_bytes` per
    /// proxy (pull programs also hold the transposed CSR).
    pub fn memory_per_device(part: &Partition, label_bytes: u64, needs_pull: bool) -> Vec<u64> {
        part.locals
            .iter()
            .map(|l| l.device_bytes(label_bytes, needs_pull))
            .collect()
    }

    /// max/mean of per-device memory — Table IV's **memory balance**.
    pub fn memory_balance(part: &Partition, label_bytes: u64, needs_pull: bool) -> f64 {
        max_over_mean_u64(&Self::memory_per_device(part, label_bytes, needs_pull))
    }
}

/// max / mean of a sample (the paper's balance metric); 1.0 for empty or
/// all-zero samples.
pub fn max_over_mean_u64(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let max = *xs.iter().max().unwrap() as f64;
    let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// max / mean for float samples (dynamic balance uses compute times).
pub fn max_over_mean_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use dirgl_graph::RmatConfig;

    #[test]
    fn balance_helpers() {
        assert!((max_over_mean_u64(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((max_over_mean_u64(&[20, 10, 10, 0]) - 2.0).abs() < 1e-12);
        assert_eq!(max_over_mean_u64(&[]), 1.0);
        assert_eq!(max_over_mean_u64(&[0, 0]), 1.0);
        assert!((max_over_mean_f64(&[2.0, 1.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edge_balanced_policies_have_near_unit_static_balance() {
        let g = RmatConfig::new(12, 16).seed(1).generate();
        for policy in [Policy::Oec, Policy::Iec] {
            let part = Partition::build(&g, policy, 8, 0);
            let m = PartitionMetrics::compute(&part);
            // Small graphs leave granularity slack; Table IV's 1.00 values
            // come from graphs five orders of magnitude larger.
            assert!(
                m.static_balance < 1.10,
                "{policy}: static balance {}",
                m.static_balance
            );
        }
    }

    #[test]
    fn memory_is_proportional_to_edges_per_device() {
        // The paper's key finding (Table IV discussion): "static and memory
        // load balance are highly correlated as the amount of memory
        // allocated on a GPU is proportional to the number of edges assigned
        // to it." On an edge-dominated graph the two max/mean metrics agree
        // closely for every D-IrGL policy.
        let g = dirgl_graph::WebCrawlConfig::new(8_000, 320_000, 800, 600, 12)
            .seed(2)
            .generate();
        for policy in Policy::DIRGL {
            let part = Partition::build(&g, policy, 8, 3);
            let m = PartitionMetrics::compute(&part);
            let mem = PartitionMetrics::memory_balance(&part, 4, false);
            let rel = (m.static_balance - mem).abs() / m.static_balance.max(mem);
            assert!(
                rel < 0.25,
                "{policy}: static {} vs memory {mem} (rel {rel})",
                m.static_balance
            );
        }
    }

    #[test]
    fn metrics_shapes() {
        let g = RmatConfig::new(9, 4).seed(3).generate();
        let part = Partition::build(&g, Policy::Cvc, 6, 0);
        let m = PartitionMetrics::compute(&part);
        assert_eq!(m.edges_per_device.len(), 6);
        assert_eq!(m.edges_per_device.iter().sum::<u64>(), g.num_edges());
        assert_eq!(
            m.masters_per_device.iter().map(|&x| x as u64).sum::<u64>(),
            g.num_vertices() as u64
        );
        assert!(m.replication_factor >= 1.0);
    }
}
