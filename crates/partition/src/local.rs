//! Per-device partition: the proxy model of §III-A.
//!
//! Local ids are dense per device, with all **master** proxies first
//! (`0..num_masters`) followed by **mirror** proxies. The local CSR stores
//! the device's edges in local ids; its transpose serves pull-style
//! programs.

use std::collections::HashMap;

use dirgl_graph::csr::{Csr, VertexId};

/// One device's share of the partitioned graph.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalGraph {
    /// Device index.
    pub device: u32,
    /// Local ids `0..num_masters` are master proxies.
    pub num_masters: u32,
    /// Global id of each local vertex.
    pub l2g: Box<[VertexId]>,
    /// Owner device of each local vertex's master (== `device` for masters).
    pub master_device: Box<[u32]>,
    /// Out-edges in local ids (weights preserved from the input graph).
    pub csr: Csr,
    /// In-edges (transpose of `csr`), for pull-style operators.
    pub in_csr: Csr,
    /// Host-side global→local map (not charged to GPU memory; Gluon keeps
    /// the equivalent on the host for address translation, then memoizes it
    /// away — §III-D2).
    pub g2l: HashMap<VertexId, VertexId>,
}

impl LocalGraph {
    /// Total proxies (masters + mirrors).
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.l2g.len() as u32
    }

    /// Mirror proxy count.
    #[inline]
    pub fn num_mirrors(&self) -> u32 {
        self.num_vertices() - self.num_masters
    }

    /// True when local vertex `lv` is a master proxy.
    #[inline]
    pub fn is_master(&self, lv: VertexId) -> bool {
        lv < self.num_masters
    }

    /// True when local vertex `lv` has at least one local out-edge (i.e. a
    /// push-style program *reads* it on this device).
    #[inline]
    pub fn has_out_edges(&self, lv: VertexId) -> bool {
        self.csr.out_degree(lv) > 0
    }

    /// True when local vertex `lv` has at least one local in-edge (i.e. a
    /// push-style program may *write* it on this device).
    #[inline]
    pub fn has_in_edges(&self, lv: VertexId) -> bool {
        self.in_csr.out_degree(lv) > 0
    }

    /// Local edge count.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.csr.num_edges()
    }

    /// Device-memory bytes to hold this partition: CSR (+ transpose when the
    /// program pulls) + `label_bytes` per proxy + the l2g table the kernels
    /// index. This is the quantity Table III/IV's memory columns report.
    pub fn device_bytes(&self, label_bytes: u64, needs_pull: bool) -> u64 {
        self.device_bytes_for(label_bytes, true, needs_pull, true)
    }

    /// Fine-grained memory accounting: only the directions and arrays the
    /// program actually loads are charged (a pull-only program loads the
    /// in-CSR alone; only sssp loads the weights).
    pub fn device_bytes_for(
        &self,
        label_bytes: u64,
        needs_out: bool,
        needs_in: bool,
        with_weights: bool,
    ) -> u64 {
        let mut b = 0;
        if needs_out {
            b += self.csr.bytes_with(with_weights);
        }
        if needs_in {
            b += self.in_csr.bytes_with(with_weights);
        }
        b += self.num_vertices() as u64 * (label_bytes + 4); // labels + l2g
        b
    }

    /// [`LocalGraph::device_bytes_for`] with the adjacency held compressed
    /// (delta-gap varint, decoded row-by-row each round): the CSR terms
    /// shrink to their exact encoded size while labels, l2g, and every other
    /// array the kernels index stay raw — only the edge arrays spill.
    pub fn device_bytes_spilled_for(
        &self,
        label_bytes: u64,
        needs_out: bool,
        needs_in: bool,
        with_weights: bool,
    ) -> u64 {
        let mut b = 0;
        if needs_out {
            b += self.csr.compressed_bytes_with(with_weights);
        }
        if needs_in {
            b += self.in_csr.compressed_bytes_with(with_weights);
        }
        b += self.num_vertices() as u64 * (label_bytes + 4); // labels + l2g
        b
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Partition;
    use crate::policy::Policy;
    use dirgl_graph::RmatConfig;

    #[test]
    fn masters_precede_mirrors_and_flags_match_csr() {
        let g = RmatConfig::new(9, 8).seed(2).generate();
        let part = Partition::build(&g, Policy::Cvc, 4, 0);
        for lg in &part.locals {
            for lv in 0..lg.num_vertices() {
                assert_eq!(lg.is_master(lv), lg.master_device[lv as usize] == lg.device);
                assert_eq!(lg.has_out_edges(lv), lg.csr.out_degree(lv) > 0);
                assert_eq!(lg.has_in_edges(lv), lg.in_csr.out_degree(lv) > 0);
            }
            // Mirrors must have at least one local edge (they only exist
            // because an edge endpoint landed here).
            for lv in lg.num_masters..lg.num_vertices() {
                assert!(
                    lg.has_out_edges(lv) || lg.has_in_edges(lv),
                    "dangling mirror"
                );
            }
        }
    }

    #[test]
    fn device_bytes_counts_pull_csr_only_when_needed() {
        let g = RmatConfig::new(8, 4).seed(2).generate();
        let part = Partition::build(&g, Policy::Oec, 2, 0);
        let lg = &part.locals[0];
        let push = lg.device_bytes(8, false);
        let pull = lg.device_bytes(8, true);
        assert!(pull > push);
        assert_eq!(pull - push, lg.in_csr.bytes());
    }

    #[test]
    fn spilled_bytes_shrink_only_the_adjacency_terms() {
        let g = RmatConfig::new(10, 8).seed(5).generate();
        let part = Partition::build(&g, Policy::Cvc, 4, 0);
        for lg in &part.locals {
            let raw = lg.device_bytes_for(8, true, true, true);
            let spilled = lg.device_bytes_spilled_for(8, true, true, true);
            assert!(spilled < raw, "dev {}: {spilled} !< {raw}", lg.device);
            // The non-adjacency remainder (labels + l2g) is identical.
            let raw_fixed = raw - lg.csr.bytes_with(true) - lg.in_csr.bytes_with(true);
            let sp_fixed = spilled
                - lg.csr.compressed_bytes_with(true)
                - lg.in_csr.compressed_bytes_with(true);
            assert_eq!(raw_fixed, sp_fixed);
        }
    }
}
