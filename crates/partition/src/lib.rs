//! CuSP-style streaming graph partitioner for the `dirgl` workspace.
//!
//! Implements the partitioning policies studied in the paper (§III-C):
//!
//! * **OEC / IEC** — edge-balanced outgoing/incoming edge-cuts (Lux's
//!   native policy is IEC);
//! * **HVC** — PowerLyra-style hybrid vertex-cut;
//! * **CVC** — the Cartesian vertex-cut of Boman et al. / Gluon, the 2D cut
//!   whose structural invariants make it the paper's headline result;
//! * **Random** — Gunrock's default random vertex assignment;
//! * **MetisLike** — a BFS-grow locality-seeking edge-cut standing in for
//!   the METIS partitions Groute consumes.
//!
//! [`Partition::build`] follows CuSP's two decision functions — a *master
//! assignment* rule and an *edge assignment* rule — then constructs one
//! [`LocalGraph`] per device (masters first, then mirrors, exactly the
//! proxy model of §III-A) and the aligned mirror↔master exchange links the
//! Gluon-style substrate synchronizes over.

pub mod builder;
pub mod edges;
pub mod io;
pub mod links;
pub mod local;
pub mod masters;
pub mod metrics;
pub mod policy;

pub use builder::Partition;
pub use links::PairLink;
pub use local::LocalGraph;
pub use metrics::PartitionMetrics;
pub use policy::{Grid, Policy};
