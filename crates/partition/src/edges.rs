//! Edge assignment — the second of CuSP's two decision functions.

use dirgl_graph::csr::VertexId;

use crate::policy::{Grid, Policy};

/// Everything the per-edge rule needs, precomputed once per partition build.
pub struct EdgeRule<'a> {
    policy: Policy,
    owner: &'a [u32],
    grid: Option<Grid>,
    in_degrees: Option<&'a [u32]>,
    /// HVC: vertices with in-degree above this have their in-edges split by
    /// source (PowerLyra's high-degree rule).
    pub hvc_threshold: u32,
}

impl<'a> EdgeRule<'a> {
    /// Builds the rule. `in_degrees` is required for HVC, `grid` for CVC.
    pub fn new(
        policy: Policy,
        owner: &'a [u32],
        grid: Option<Grid>,
        in_degrees: Option<&'a [u32]>,
        hvc_threshold: u32,
    ) -> Self {
        if policy == Policy::Cvc {
            assert!(grid.is_some(), "CVC needs a device grid");
        }
        if policy == Policy::Hvc {
            assert!(in_degrees.is_some(), "HVC needs in-degrees");
        }
        EdgeRule {
            policy,
            owner,
            grid,
            in_degrees,
            hvc_threshold,
        }
    }

    /// The device that stores edge `(u, v)`.
    #[inline]
    pub fn device_of(&self, u: VertexId, v: VertexId) -> u32 {
        match self.policy {
            // All out-edges of u colocate with u's master.
            Policy::Oec | Policy::Random | Policy::MetisLike | Policy::Xtrapulp => {
                self.owner[u as usize]
            }
            // All in-edges of v colocate with v's master.
            Policy::Iec => self.owner[v as usize],
            // Low-in-degree destinations behave like IEC; high-in-degree
            // destinations split their in-edges by source.
            Policy::Hvc => {
                let ind = self.in_degrees.unwrap();
                if ind[v as usize] <= self.hvc_threshold {
                    self.owner[v as usize]
                } else {
                    self.owner[u as usize]
                }
            }
            // 2D cut: grid row of u's owner, grid column of v's owner.
            Policy::Cvc => {
                let g = self.grid.as_ref().unwrap();
                g.device_at(g.row(self.owner[u as usize]), g.col(self.owner[v as usize]))
            }
        }
    }
}

/// Default HVC in-degree threshold given the average degree: PowerLyra uses
/// a constant (100); scaling with the average keeps the high-degree set a
/// comparable fraction on scaled-down analogues.
pub fn default_hvc_threshold(avg_degree: f64) -> u32 {
    (4.0 * avg_degree).ceil().max(8.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oec_follows_source_owner() {
        let owner = vec![0, 1, 2, 0];
        let rule = EdgeRule::new(Policy::Oec, &owner, None, None, 0);
        assert_eq!(rule.device_of(1, 3), 1);
        assert_eq!(rule.device_of(3, 1), 0);
    }

    #[test]
    fn iec_follows_destination_owner() {
        let owner = vec![0, 1, 2, 0];
        let rule = EdgeRule::new(Policy::Iec, &owner, None, None, 0);
        assert_eq!(rule.device_of(1, 2), 2);
        assert_eq!(rule.device_of(2, 0), 0);
    }

    #[test]
    fn hvc_switches_on_in_degree() {
        let owner = vec![0, 1];
        let ind = vec![1u32, 100u32];
        let rule = EdgeRule::new(Policy::Hvc, &owner, None, Some(&ind), 10);
        // Destination 0 is low-degree: edge follows destination.
        assert_eq!(rule.device_of(1, 0), 0);
        // Destination 1 is high-degree: edge follows source.
        assert_eq!(rule.device_of(0, 1), 0);
    }

    #[test]
    fn cvc_lands_on_row_of_src_col_of_dst() {
        // 4 devices, 2x2 grid; owners: u -> dev 3 (row 1), v -> dev 0 (col 0)
        let owner = vec![3, 0];
        let grid = Grid::for_devices(4);
        let rule = EdgeRule::new(Policy::Cvc, &owner, Some(grid), None, 0);
        let dev = rule.device_of(0, 1);
        assert_eq!(grid.row(dev), grid.row(3));
        assert_eq!(grid.col(dev), grid.col(0));
        assert_eq!(dev, 2);
    }

    #[test]
    #[should_panic(expected = "CVC needs a device grid")]
    fn cvc_requires_grid() {
        let owner = vec![0];
        let _ = EdgeRule::new(Policy::Cvc, &owner, None, None, 0);
    }

    #[test]
    fn hvc_threshold_scales() {
        assert_eq!(default_hvc_threshold(1.0), 8);
        assert_eq!(default_hvc_threshold(30.0), 120);
    }
}
