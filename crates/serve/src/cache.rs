//! Keyed result cache: `(graph epoch × program × params) → outcome`, with
//! LRU eviction.
//!
//! The key's program×params half is the [`JobSpec`] itself (it is `Hash +
//! Eq` and carries every parameter that changes the answer: source vertex,
//! k, …); the epoch half ties results to a graph version so a future
//! mutation path invalidates by bumping the epoch instead of chasing
//! entries. Repeated queries are O(lookup): a hit returns the same
//! `Arc`-shared [`JobOutcome`] bytes the cold run produced.

use std::collections::HashMap;
use std::sync::Arc;

use crate::job::{JobOutcome, JobSpec};

/// Cache key: graph epoch × the full job spec.
pub(crate) type CacheKey = (u64, JobSpec);

struct Entry {
    outcome: Arc<JobOutcome>,
    /// Logical-clock stamp of the last hit or insertion; the entry with
    /// the smallest stamp is the LRU eviction victim.
    last_used: u64,
}

/// Bounded LRU map. Not thread-safe by itself — the server wraps it in a
/// mutex; keeping the lock out of here keeps eviction testable.
pub(crate) struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    evictions: u64,
}

impl ResultCache {
    /// Cache holding at most `capacity` outcomes (0 disables caching).
    pub(crate) fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            tick: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<Arc<JobOutcome>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.outcome)
        })
    }

    /// Inserts `outcome` under `key`, evicting the least-recently-used
    /// entry when full. A no-op when the capacity is 0.
    pub(crate) fn insert(&mut self, key: CacheKey, outcome: Arc<JobOutcome>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the stalest entry; ties broken by key hash-map order
            // cannot happen (stamps are unique).
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                outcome,
                last_used: self.tick,
            },
        );
    }

    /// Drops every entry whose epoch is older than `epoch` (cache
    /// invalidation on graph mutation). Returns how many were dropped.
    pub(crate) fn purge_before(&mut self, epoch: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|(e, _), _| *e >= epoch);
        before - self.map.len()
    }

    /// Resident entries.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Total LRU evictions so far.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Arc<JobOutcome> {
        Arc::new(JobOutcome {
            reports: Vec::new(),
            per_source: Vec::new(),
        })
    }

    #[test]
    fn lru_evicts_the_stalest() {
        let mut c = ResultCache::new(2);
        c.insert((0, JobSpec::bfs(1)), outcome());
        c.insert((0, JobSpec::bfs(2)), outcome());
        // Touch source 1 so source 2 is the LRU victim.
        assert!(c.get(&(0, JobSpec::bfs(1))).is_some());
        c.insert((0, JobSpec::bfs(3)), outcome());
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&(0, JobSpec::bfs(2))).is_none());
        assert!(c.get(&(0, JobSpec::bfs(1))).is_some());
        assert!(c.get(&(0, JobSpec::bfs(3))).is_some());
    }

    #[test]
    fn multi_source_spec_is_its_own_key() {
        let mut c = ResultCache::new(8);
        c.insert(
            (
                0,
                JobSpec::Bfs {
                    sources: vec![1, 2],
                },
            ),
            outcome(),
        );
        assert!(c.get(&(0, JobSpec::bfs(1))).is_none());
        assert!(c
            .get(&(
                0,
                JobSpec::Bfs {
                    sources: vec![1, 2]
                }
            ))
            .is_some());
    }

    #[test]
    fn epoch_purge_invalidates_old_results() {
        let mut c = ResultCache::new(8);
        c.insert((0, JobSpec::Pagerank), outcome());
        c.insert((1, JobSpec::Pagerank), outcome());
        assert_eq!(c.purge_before(1), 1);
        assert!(c.get(&(0, JobSpec::Pagerank)).is_none());
        assert!(c.get(&(1, JobSpec::Pagerank)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert((0, JobSpec::Cc), outcome());
        assert_eq!(c.len(), 0);
        assert!(c.get(&(0, JobSpec::Cc)).is_none());
    }
}
