//! Job vocabulary: what a client asks for, how it is prioritized, and the
//! handle it waits on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dirgl_core::{ExecutionReport, RunError};

/// One analytics query against the resident graph. The spec is the
/// cache-key payload: two jobs with equal specs (in the same graph epoch)
/// are the same computation and may be served from the result cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobSpec {
    /// Breadth-first search from an arbitrary source.
    Bfs {
        /// Root vertex.
        source: u32,
    },
    /// Single-source shortest paths from an arbitrary source.
    Sssp {
        /// Root vertex.
        source: u32,
    },
    /// Residual pagerank (topology-driven pull; no parameters).
    Pagerank,
    /// Weakly connected components (runs on the symmetrized view).
    Cc,
    /// k-core decomposition (runs on the symmetrized view).
    KCore {
        /// Core threshold.
        k: u32,
    },
    /// Single-source betweenness centrality (two-phase: forward on the
    /// graph, backward on its resident transpose).
    Bc {
        /// Source vertex.
        source: u32,
    },
}

impl JobSpec {
    /// Benchmark-style name (matches the paper's program names).
    pub fn name(&self) -> &'static str {
        match self {
            JobSpec::Bfs { .. } => "bfs",
            JobSpec::Sssp { .. } => "sssp",
            JobSpec::Pagerank => "pagerank",
            JobSpec::Cc => "cc",
            JobSpec::KCore { .. } => "kcore",
            JobSpec::Bc { .. } => "bc",
        }
    }

    /// The source vertex, for specs that traverse from one.
    pub fn source(&self) -> Option<u32> {
        match *self {
            JobSpec::Bfs { source } | JobSpec::Sssp { source } | JobSpec::Bc { source } => {
                Some(source)
            }
            JobSpec::Pagerank | JobSpec::Cc | JobSpec::KCore { .. } => None,
        }
    }

    /// True when the job runs on the symmetrized (undirected) view.
    pub fn needs_symmetric(&self) -> bool {
        matches!(self, JobSpec::Cc | JobSpec::KCore { .. })
    }

    /// True when the job also needs the resident transpose view (bc's
    /// backward phase).
    pub fn needs_transpose(&self) -> bool {
        matches!(self, JobSpec::Bc { .. })
    }
}

/// Scheduling priority; higher runs first, FIFO within a level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work (cache warming, speculative queries).
    Low,
    /// The default.
    Normal,
    /// Latency-sensitive interactive queries.
    High,
}

/// A submission: the spec plus its scheduling envelope.
#[derive(Clone, Copy, Debug)]
pub struct JobRequest {
    /// What to compute.
    pub spec: JobSpec,
    /// Queue ordering class.
    pub priority: Priority,
    /// Give-up budget measured from submission: a job still queued when
    /// its deadline passes completes with [`JobError::DeadlineExpired`]
    /// instead of executing (admission control for stale work).
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// Normal-priority request with no deadline.
    pub fn new(spec: JobSpec) -> JobRequest {
        JobRequest {
            spec,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Sets the priority (builder style).
    pub fn priority(mut self, p: Priority) -> JobRequest {
        self.priority = p;
        self
    }

    /// Sets the deadline (builder style).
    pub fn deadline(mut self, d: Duration) -> JobRequest {
        self.deadline = Some(d);
        self
    }
}

/// A completed job's output: one [`ExecutionReport`] per phase (exactly
/// one for the single-phase programs; bc has forward + backward) and the
/// per-global-vertex values. Shared behind `Arc` between the requester and
/// the result cache, so a cache hit returns the very same bytes the cold
/// run produced.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Per-phase reports, in phase order.
    pub reports: Vec<ExecutionReport>,
    /// Final per-global-vertex outputs.
    pub values: Vec<f64>,
}

impl JobOutcome {
    /// The primary (last-phase) report — the one whose total time answers
    /// "how long did this query take" for multi-phase jobs too.
    pub fn report(&self) -> &ExecutionReport {
        self.reports
            .last()
            .expect("job outcome has at least one phase")
    }
}

/// What a successful [`crate::JobHandle::wait`] returns.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The (possibly cache-shared) output.
    pub outcome: Arc<JobOutcome>,
    /// True when served from the result cache instead of executed.
    pub from_cache: bool,
    /// Graph epoch the result belongs to.
    pub epoch: u64,
}

/// Why a submission was refused at the door (admission control). The job
/// never entered the queue; nothing will complete later.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The waiting queue is at capacity. Back off and retry.
    Saturated {
        /// Jobs currently waiting.
        queued: usize,
        /// Configured queue bound.
        capacity: usize,
    },
    /// The spec names a source vertex outside the resident graph — the
    /// degenerate-job class a resident server must refuse, not die on.
    InvalidSource {
        /// Requested source.
        source: u32,
        /// Vertices in the resident graph.
        num_vertices: u32,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { queued, capacity } => {
                write!(
                    f,
                    "server saturated: {queued} jobs queued (capacity {capacity})"
                )
            }
            SubmitError::InvalidSource {
                source,
                num_vertices,
            } => write!(
                f,
                "source vertex {source} out of range (graph has {num_vertices} vertices)"
            ),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* job did not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The engine refused the run (OOM, degenerate input).
    Run(RunError),
    /// The job's deadline passed while it was still queued.
    DeadlineExpired,
    /// The server shut down before the job ran.
    ShutDown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Run(e) => write!(f, "run failed: {e}"),
            JobError::DeadlineExpired => write!(f, "deadline expired before execution"),
            JobError::ShutDown => write!(f, "server shut down before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// The slot a worker fulfills and a client waits on.
pub(crate) struct JobCell {
    slot: Mutex<Option<Result<JobResult, JobError>>>,
    done: Condvar,
}

impl JobCell {
    pub(crate) fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// A cell born completed (cache fast path at submission).
    pub(crate) fn completed(r: Result<JobResult, JobError>) -> Arc<JobCell> {
        Arc::new(JobCell {
            slot: Mutex::new(Some(r)),
            done: Condvar::new(),
        })
    }

    /// Writes the result exactly once and wakes waiters.
    pub(crate) fn fulfill(&self, r: Result<JobResult, JobError>) {
        let mut s = self.slot.lock().unwrap();
        if s.is_none() {
            *s = Some(r);
            self.done.notify_all();
        }
    }
}

/// The client's ticket for one accepted job.
pub struct JobHandle {
    pub(crate) cell: Arc<JobCell>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

impl JobHandle {
    /// Blocks until the job completes (or fails), returning its result.
    /// May be called from any thread and more than once.
    pub fn wait(&self) -> Result<JobResult, JobError> {
        let mut s = self.cell.slot.lock().unwrap();
        while s.is_none() {
            s = self.cell.done.wait(s).unwrap();
        }
        s.as_ref().expect("slot filled").clone()
    }

    /// The result if the job already completed, without blocking.
    pub fn try_result(&self) -> Option<Result<JobResult, JobError>> {
        self.cell.slot.lock().unwrap().clone()
    }

    /// True once a result (or error) is available.
    pub fn is_done(&self) -> bool {
        self.cell.slot.lock().unwrap().is_some()
    }
}
