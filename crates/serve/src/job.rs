//! Job vocabulary: what a client asks for, how it is prioritized, and the
//! handle it waits on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dirgl_core::{ExecutionReport, ResilienceStats, RunError};

use crate::governor::RejectReason;

/// One analytics query against the resident graph. The spec is the
/// cache-key payload: two jobs with equal specs (in the same graph epoch)
/// are the same computation and may be served from the result cache.
///
/// The traversal specs carry a *set* of sources: one spec runs all of them
/// in a single K-lane batched pass (K ≤ 64 per engine launch), and its
/// outcome holds one value vector per source, in source order. Sources are
/// canonicalized (sorted, deduplicated) at admission so `bfs from {3, 7}`
/// and `bfs from {7, 3, 3}` are the same cache entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum JobSpec {
    /// Breadth-first search from one or more sources.
    Bfs {
        /// Root vertices (canonicalized at admission).
        sources: Vec<u32>,
    },
    /// Shortest paths from one or more sources.
    Sssp {
        /// Root vertices (canonicalized at admission).
        sources: Vec<u32>,
    },
    /// Residual pagerank (topology-driven pull; no parameters).
    Pagerank,
    /// Weakly connected components (runs on the symmetrized view).
    Cc,
    /// k-core decomposition (runs on the symmetrized view).
    KCore {
        /// Core threshold.
        k: u32,
    },
    /// Betweenness centrality from one or more sources (two-phase per
    /// batch: forward on the graph, backward on its resident transpose).
    Bc {
        /// Source vertices (canonicalized at admission).
        sources: Vec<u32>,
    },
}

impl JobSpec {
    /// Single-source bfs spec.
    pub fn bfs(source: u32) -> JobSpec {
        JobSpec::Bfs {
            sources: vec![source],
        }
    }

    /// Single-source sssp spec.
    pub fn sssp(source: u32) -> JobSpec {
        JobSpec::Sssp {
            sources: vec![source],
        }
    }

    /// Single-source bc spec.
    pub fn bc(source: u32) -> JobSpec {
        JobSpec::Bc {
            sources: vec![source],
        }
    }

    /// Benchmark-style name (matches the paper's program names).
    pub fn name(&self) -> &'static str {
        match self {
            JobSpec::Bfs { .. } => "bfs",
            JobSpec::Sssp { .. } => "sssp",
            JobSpec::Pagerank => "pagerank",
            JobSpec::Cc => "cc",
            JobSpec::KCore { .. } => "kcore",
            JobSpec::Bc { .. } => "bc",
        }
    }

    /// The source vertices, for specs that traverse from them.
    pub fn sources(&self) -> Option<&[u32]> {
        match self {
            JobSpec::Bfs { sources } | JobSpec::Sssp { sources } | JobSpec::Bc { sources } => {
                Some(sources)
            }
            JobSpec::Pagerank | JobSpec::Cc | JobSpec::KCore { .. } => None,
        }
    }

    /// Sorts and deduplicates the source set so equal queries hash equal.
    /// Called on every spec at admission.
    pub(crate) fn canonicalize(&mut self) {
        match self {
            JobSpec::Bfs { sources } | JobSpec::Sssp { sources } | JobSpec::Bc { sources } => {
                sources.sort_unstable();
                sources.dedup();
            }
            JobSpec::Pagerank | JobSpec::Cc | JobSpec::KCore { .. } => {}
        }
    }

    /// A spec for the same kind of job with a different source set
    /// (`None` for the parameterless/kcore kinds).
    pub(crate) fn with_sources(&self, sources: Vec<u32>) -> Option<JobSpec> {
        match self {
            JobSpec::Bfs { .. } => Some(JobSpec::Bfs { sources }),
            JobSpec::Sssp { .. } => Some(JobSpec::Sssp { sources }),
            JobSpec::Bc { .. } => Some(JobSpec::Bc { sources }),
            JobSpec::Pagerank | JobSpec::Cc | JobSpec::KCore { .. } => None,
        }
    }

    /// True when the job runs on the symmetrized (undirected) view.
    pub fn needs_symmetric(&self) -> bool {
        matches!(self, JobSpec::Cc | JobSpec::KCore { .. })
    }

    /// True when the job also needs the resident transpose view (bc's
    /// backward phase).
    pub fn needs_transpose(&self) -> bool {
        matches!(self, JobSpec::Bc { .. })
    }
}

/// Scheduling priority; higher runs first, FIFO within a level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work (cache warming, speculative queries).
    Low,
    /// The default.
    Normal,
    /// Latency-sensitive interactive queries.
    High,
}

/// A submission: the spec plus its scheduling envelope.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// What to compute.
    pub spec: JobSpec,
    /// Queue ordering class.
    pub priority: Priority,
    /// Give-up budget measured from submission: a job still queued when
    /// its deadline passes completes with [`JobError::DeadlineExpired`]
    /// instead of executing (admission control for stale work).
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// Normal-priority request with no deadline.
    pub fn new(spec: JobSpec) -> JobRequest {
        JobRequest {
            spec,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Sets the priority (builder style).
    pub fn priority(mut self, p: Priority) -> JobRequest {
        self.priority = p;
        self
    }

    /// Sets the deadline (builder style).
    pub fn deadline(mut self, d: Duration) -> JobRequest {
        self.deadline = Some(d);
        self
    }
}

/// A completed job's output: one [`ExecutionReport`] per phase (exactly
/// one for the single-phase programs; bc has forward + backward) and one
/// per-global-vertex value vector **per source**, in the spec's canonical
/// source order (parameterless jobs have exactly one entry). Shared behind
/// `Arc` between the requester and the result cache, so a cache hit
/// returns the very same bytes the cold run produced.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Per-phase reports, in phase order.
    pub reports: Vec<ExecutionReport>,
    /// One final value vector per source (canonical source order);
    /// parameterless jobs have exactly one.
    pub per_source: Vec<Vec<f64>>,
}

impl JobOutcome {
    /// The primary (last-phase) report — the one whose total time answers
    /// "how long did this query take" for multi-phase jobs too.
    pub fn report(&self) -> &ExecutionReport {
        self.reports
            .last()
            .expect("job outcome has at least one phase")
    }

    /// The value vector of a single-source or parameterless job (the first
    /// source's values otherwise).
    pub fn values(&self) -> &[f64] {
        self.per_source
            .first()
            .expect("job outcome has at least one value vector")
    }
}

/// What a successful [`crate::JobHandle::wait`] returns.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The (possibly cache-shared) output.
    pub outcome: Arc<JobOutcome>,
    /// True when served from the result cache instead of executed.
    pub from_cache: bool,
    /// Graph epoch the result belongs to.
    pub epoch: u64,
    /// How this job was kept alive: attempts, lane-width degradation and
    /// the engine-level fault/recovery counters. All default (zero
    /// attempts) for cache-served results.
    pub resilience: JobResilience,
}

/// Per-job resilience record: what the admission governor and the retry
/// ladder did to keep this job alive, plus the engine-level recovery
/// counters aggregated across every phase and attempt.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobResilience {
    /// Engine launches performed (1 for a clean first-try run; 0 when the
    /// result came from the cache).
    pub attempts: u32,
    /// Lane width the job asked for (sources per launch; 1 = scalar).
    pub requested_width: usize,
    /// Lane width the job actually ran at after admission and retries.
    pub granted_width: usize,
    /// True when `granted_width < requested_width` (the degradation
    /// ladder narrowed the job to fit memory or health pressure).
    pub degraded: bool,
    /// Engine-level fault and recovery counters (link retries, crashes,
    /// rollbacks, re-homed masters), summed over all phases and attempts.
    pub engine: ResilienceStats,
}

/// Why a submission was refused at the door (admission control). The job
/// never entered the queue; nothing will complete later.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The waiting queue is at capacity. Back off and retry.
    Saturated {
        /// Jobs currently waiting.
        queued: usize,
        /// Configured queue bound.
        capacity: usize,
    },
    /// The spec names a source vertex outside the resident graph — the
    /// degenerate-job class a resident server must refuse, not die on.
    /// Names the first offending id.
    InvalidSource {
        /// Requested source.
        source: u32,
        /// Vertices in the resident graph.
        num_vertices: u32,
    },
    /// A traversal spec arrived with an empty source set.
    EmptySources,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { queued, capacity } => {
                write!(
                    f,
                    "server saturated: {queued} jobs queued (capacity {capacity})"
                )
            }
            SubmitError::InvalidSource {
                source,
                num_vertices,
            } => write!(
                f,
                "source vertex {source} out of range (graph has {num_vertices} vertices)"
            ),
            SubmitError::EmptySources => write!(f, "traversal spec has no sources"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* job did not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The engine refused the run on every attempt. Carries the *last*
    /// attempt's full [`RunError`] (device, predicted vs available bytes
    /// for OOM) and how many launches were tried before giving up.
    Run {
        /// The final attempt's failure, structure intact.
        error: RunError,
        /// Engine launches performed before surrendering.
        attempts: u32,
    },
    /// The admission governor refused to launch the job at any lane width
    /// (memory pressure or dead devices); the engine was never invoked.
    Rejected(RejectReason),
    /// The job's deadline passed while it was queued, mid-retry-backoff,
    /// or before a retry could launch.
    DeadlineExpired,
    /// The server shut down before the job ran.
    ShutDown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Run { error, attempts } => {
                write!(f, "run failed after {attempts} attempt(s): {error}")
            }
            JobError::Rejected(r) => write!(f, "rejected by admission governor: {r}"),
            JobError::DeadlineExpired => write!(f, "deadline expired before execution"),
            JobError::ShutDown => write!(f, "server shut down before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// The slot a worker fulfills and a client waits on.
pub(crate) struct JobCell {
    slot: Mutex<Option<Result<JobResult, JobError>>>,
    done: Condvar,
}

impl JobCell {
    pub(crate) fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// A cell born completed (cache fast path at submission).
    pub(crate) fn completed(r: Result<JobResult, JobError>) -> Arc<JobCell> {
        Arc::new(JobCell {
            slot: Mutex::new(Some(r)),
            done: Condvar::new(),
        })
    }

    /// Writes the result exactly once and wakes waiters.
    pub(crate) fn fulfill(&self, r: Result<JobResult, JobError>) {
        let mut s = self.slot.lock().unwrap();
        if s.is_none() {
            *s = Some(r);
            self.done.notify_all();
        }
    }
}

/// The client's ticket for one accepted job.
pub struct JobHandle {
    pub(crate) cell: Arc<JobCell>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

impl JobHandle {
    /// Blocks until the job completes (or fails), returning its result.
    /// May be called from any thread and more than once.
    pub fn wait(&self) -> Result<JobResult, JobError> {
        let mut s = self.cell.slot.lock().unwrap();
        while s.is_none() {
            s = self.cell.done.wait(s).unwrap();
        }
        s.as_ref().expect("slot filled").clone()
    }

    /// The result if the job already completed, without blocking.
    pub fn try_result(&self) -> Option<Result<JobResult, JobError>> {
        self.cell.slot.lock().unwrap().clone()
    }

    /// True once a result (or error) is available.
    pub fn is_done(&self) -> bool {
        self.cell.slot.lock().unwrap().is_some()
    }
}
