//! The admission governor: predict, then admit / degrade / shed / reject.
//!
//! The paper's headline failure mode is the *missing data point* — a run
//! that OOMs simply vanishes from the figure. A resident service cannot
//! afford that shape of failure: a job that would OOM at K = 64 should run
//! degraded at K = 32 (or scalar), not die. The governor closes the loop
//! between the engine's memory model and the scheduler:
//!
//! 1. **Predict.** Before launching, the server computes the job's
//!    per-device footprint with [`dirgl_core::Runtime::footprint`] — the
//!    *same* `required_bytes` formula the engine's load check charges
//!    (K-scaled `state_bytes`, CSR arrays, bitsets, comm buffers), so
//!    prediction and engine admission cannot disagree.
//! 2. **Check.** The predicted bytes are held against each device's
//!    *residual* capacity: raw capacity minus bytes already reserved by
//!    in-flight jobs, shrunk further by health — a dead device contributes
//!    nothing (its load re-homes onto the least-loaded survivor, mirroring
//!    the engine's graceful-degradation adopter rule), a straggler's
//!    effective capacity is scaled down so pressure steers wide batches
//!    away from it.
//! 3. **Decide.** Walk the degradation ladder (requested width, then
//!    halving: 64 → 32 → 16 → … → 2 → scalar) and grant the widest rung
//!    that fits. Low-priority work is shed instead of degraded — under
//!    pressure the cheap-to-rerun background jobs go first. If not even
//!    the scalar rung fits an *idle* server, reject with the offending
//!    device and bytes; if it fits idle capacity but not the current
//!    residual, the denial is transient ([`Denial::Busy`]) and the worker
//!    waits for an in-flight job to release its reservation.
//!
//! Granted footprints are *reserved* until the job releases them, so
//! concurrent workers cannot jointly over-commit a device that each job
//! individually fits.

use std::sync::Mutex;

use dirgl_core::ResilienceStats;
use dirgl_gpusim::{DeviceHealth, HealthTracker, MemoryTracker};

use crate::job::Priority;

/// Why the governor refused to launch an accepted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// No rung of the degradation ladder fits: even the scalar footprint
    /// exceeds some device's effective capacity with zero reservations —
    /// the job can never run on this server as it stands. Names the worst
    /// offender.
    MemoryExceeded {
        /// Device whose capacity the scalar rung still exceeds.
        device: u32,
        /// Predicted bytes on that device (scalar rung, after re-homing).
        predicted: u64,
        /// The device's effective residual capacity.
        capacity: u64,
    },
    /// The job fits only degraded, and its priority is [`Priority::Low`]:
    /// background work is shed under pressure instead of competing with
    /// interactive jobs for the narrowed budget.
    Shed {
        /// The width the job asked for (which did not fit).
        requested_width: usize,
    },
    /// Every device is marked dead; nothing can execute.
    NoAliveDevices,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::MemoryExceeded {
                device,
                predicted,
                capacity,
            } => write!(
                f,
                "predicted {predicted} B on device {device} exceeds its effective residual {capacity} B even at scalar width"
            ),
            RejectReason::Shed { requested_width } => write!(
                f,
                "low-priority job shed under memory pressure (width {requested_width} does not fit)"
            ),
            RejectReason::NoAliveDevices => write!(f, "no alive devices"),
        }
    }
}

/// Why [`Governor::decide`] did not grant right now. `Busy` is transient —
/// the job fits an *idle* server but in-flight reservations currently
/// crowd it out, so the caller should wait for a release and ask again
/// (deadline permitting) instead of surfacing a rejection for pressure
/// that clears by itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Denial {
    /// Fits total effective capacity, not the current residual: retry
    /// after in-flight jobs release their reservations.
    Busy,
    /// Terminal: would not fit even with zero reservations (or is shed /
    /// has no alive device to run on).
    Reject(RejectReason),
}

/// What the governor granted for one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Grant {
    /// Lanes per engine launch (1 = the scalar backend).
    pub width: usize,
    /// True when `width` is below the requested width.
    pub degraded: bool,
    /// The per-device bytes reserved for this job (after re-homing); hand
    /// back to [`Governor::release`] when the job finishes.
    pub reserved: Vec<u64>,
}

/// One operator-visible device row of [`crate::JobServer::status`].
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceStatus {
    /// Device id.
    pub device: u32,
    /// Health as last observed from job reports.
    pub health: DeviceHealth,
    /// Compute slowdown factor (1.0 unless straggling).
    pub slow_factor: f64,
    /// Raw device capacity in bytes.
    pub capacity: u64,
    /// Bytes reserved by in-flight jobs.
    pub reserved: u64,
    /// Effective residual bytes the next job is admitted against
    /// (health-shrunk capacity minus reservations; 0 when dead).
    pub residual: u64,
}

struct GovState {
    /// Per-device reservation ledger (capacity = raw device bytes).
    mem: Vec<MemoryTracker>,
    health: HealthTracker,
}

/// The admission governor (see module docs). One per [`crate::JobServer`].
pub(crate) struct Governor {
    enabled: bool,
    /// Effective-capacity multiplier for straggling devices, in `(0, 1]`.
    straggler_factor: f64,
    state: Mutex<GovState>,
}

impl Governor {
    /// Governor over devices with the given raw `capacities`. A known
    /// straggler window in the server's fault plan pre-registers that
    /// device as slow; crashes are observed from job reports as they
    /// happen.
    pub(crate) fn new(
        capacities: Vec<u64>,
        enabled: bool,
        straggler_factor: f64,
        straggler: Option<(u32, f64)>,
    ) -> Governor {
        let n = capacities.len() as u32;
        let mut health = HealthTracker::new(n);
        if let Some((dev, factor)) = straggler {
            if dev < n {
                health.set_straggler(dev, factor);
            }
        }
        Governor {
            enabled,
            straggler_factor: straggler_factor.clamp(f64::EPSILON, 1.0),
            state: Mutex::new(GovState {
                mem: capacities.into_iter().map(MemoryTracker::new).collect(),
                health,
            }),
        }
    }

    /// Effective capacity of device `d`: 0 when dead, health-scaled
    /// otherwise.
    fn effective_capacity(&self, st: &GovState, d: usize) -> u64 {
        match st.health.health(d as u32) {
            DeviceHealth::Dead => 0,
            DeviceHealth::Straggler => (st.mem[d].capacity() as f64 * self.straggler_factor) as u64,
            DeviceHealth::Healthy => st.mem[d].capacity(),
        }
    }

    /// Re-homes predicted load off dead devices onto the least-loaded
    /// survivor (lowest index on ties) — the same adopter rule the
    /// engine's graceful degradation applies to reassigned masters.
    /// `None` when no device is alive.
    fn rehome(st: &GovState, pred: &[u64]) -> Option<Vec<u64>> {
        if st.health.alive_count() == 0 {
            return None;
        }
        let mut out = pred.to_vec();
        for d in 0..out.len() {
            if !st.health.is_alive(d as u32) && out[d] > 0 {
                let load = std::mem::take(&mut out[d]);
                let adopter = (0..out.len())
                    .filter(|&a| st.health.is_alive(a as u32))
                    .min_by_key(|&a| (out[a] + st.mem[a].in_use(), a))
                    .expect("alive_count > 0");
                out[adopter] += load;
            }
        }
        Some(out)
    }

    /// True when `mapped` fits every device's effective residual.
    fn fits(&self, st: &GovState, mapped: &[u64]) -> bool {
        mapped.iter().enumerate().all(|(d, &need)| {
            need == 0 || st.mem[d].in_use().saturating_add(need) <= self.effective_capacity(st, d)
        })
    }

    /// True when `mapped` would fit an *idle* server: every device's
    /// effective capacity with zero reservations. Separates transient
    /// pressure (reservations clear) from terminal infeasibility.
    fn fits_idle(&self, st: &GovState, mapped: &[u64]) -> bool {
        mapped
            .iter()
            .enumerate()
            .all(|(d, &need)| need == 0 || need <= self.effective_capacity(st, d))
    }

    /// Walks the degradation `ladder` (widest rung first, each a
    /// `(width, per-device prediction)` pair) and atomically grants —
    /// and reserves — the widest rung that fits the current residual.
    ///
    /// Terminal outcomes (shed, memory-exceeded) are judged against an
    /// *idle* server, so concurrent in-flight reservations can only
    /// produce [`Denial::Busy`] — never a spurious rejection of a job
    /// that would run fine a moment later. Low-priority work is never
    /// granted below its requested width: it is shed if even an idle
    /// server would have to degrade it, and waits otherwise.
    pub(crate) fn decide(
        &self,
        priority: Priority,
        ladder: &[(usize, Vec<u64>)],
    ) -> Result<Grant, Denial> {
        let requested = ladder.first().map(|(w, _)| *w).unwrap_or(1);
        if !self.enabled {
            return Ok(Grant {
                width: requested,
                degraded: false,
                reserved: Vec::new(),
            });
        }
        let mut st = self.state.lock().unwrap();
        let mut feasible = false; // some rung fits an idle server
        let mut last_mapped: Option<Vec<u64>> = None;
        for (width, pred) in ladder {
            let Some(mapped) = Self::rehome(&st, pred) else {
                return Err(Denial::Reject(RejectReason::NoAliveDevices));
            };
            if !feasible && self.fits_idle(&st, &mapped) {
                feasible = true;
                if *width < requested && priority == Priority::Low {
                    return Err(Denial::Reject(RejectReason::Shed {
                        requested_width: requested,
                    }));
                }
            }
            if self.fits(&st, &mapped) {
                if *width < requested && priority == Priority::Low {
                    // Low is never granted degraded width; since the shed
                    // check above passed, the requested width fits an idle
                    // server — wait for it.
                    break;
                }
                for (d, &need) in mapped.iter().enumerate() {
                    // Cannot fail: fits() checked against effective
                    // capacity, which never exceeds the ledger's raw one.
                    st.mem[d].alloc(need).expect("reservation fits capacity");
                }
                return Ok(Grant {
                    width: *width,
                    degraded: *width < requested,
                    reserved: mapped,
                });
            }
            last_mapped = Some(mapped);
        }
        if feasible {
            return Err(Denial::Busy);
        }
        // Not even the narrowest rung fits an idle server: name the worst
        // offender.
        let mapped = last_mapped.expect("ladder has at least one rung");
        let (device, predicted, capacity) = mapped
            .iter()
            .enumerate()
            .map(|(d, &need)| {
                let cap = self
                    .effective_capacity(&st, d)
                    .saturating_sub(st.mem[d].in_use());
                (d as u32, need, cap)
            })
            .max_by_key(|&(_, need, cap)| need.saturating_sub(cap))
            .expect("platform has devices");
        Err(Denial::Reject(RejectReason::MemoryExceeded {
            device,
            predicted,
            capacity,
        }))
    }

    /// Returns a grant's reservation to the pool.
    pub(crate) fn release(&self, reserved: &[u64]) {
        if reserved.is_empty() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        for (d, &need) in reserved.iter().enumerate() {
            st.mem[d].free(need);
        }
    }

    /// Folds one finished job's engine-level resilience stats into the
    /// health picture: a crash that never rejoined leaves the scheduled
    /// device dead (its masters were permanently re-homed), a rejoin
    /// restores it.
    pub(crate) fn observe(&self, crash_device: Option<u32>, stats: &ResilienceStats) {
        let Some(dev) = crash_device else { return };
        if stats.crashes == 0 {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if dev >= st.health.num_devices() {
            return;
        }
        if stats.rejoins >= stats.crashes {
            st.health.revive(dev);
        } else {
            st.health.mark_dead(dev);
        }
    }

    /// Per-device operator snapshot.
    pub(crate) fn device_status(&self) -> Vec<DeviceStatus> {
        let st = self.state.lock().unwrap();
        (0..st.mem.len())
            .map(|d| {
                let effective = self.effective_capacity(&st, d);
                DeviceStatus {
                    device: d as u32,
                    health: st.health.health(d as u32),
                    slow_factor: st.health.factor(d as u32),
                    capacity: st.mem[d].capacity(),
                    reserved: st.mem[d].in_use(),
                    residual: effective.saturating_sub(st.mem[d].in_use()),
                }
            })
            .collect()
    }
}

/// The degradation ladder's widths: `requested`, then halving down to 2,
/// then the scalar rung (width 1).
pub(crate) fn ladder_widths(requested: usize) -> Vec<usize> {
    let mut widths = vec![requested.max(1)];
    let mut w = requested.max(1);
    while w > 1 {
        w /= 2;
        widths.push(w.max(1));
    }
    widths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(crashes: u32, rejoins: u32) -> ResilienceStats {
        ResilienceStats {
            crashes,
            rejoins,
            ..ResilienceStats::default()
        }
    }

    #[test]
    fn ladder_halves_down_to_scalar() {
        assert_eq!(ladder_widths(64), vec![64, 32, 16, 8, 4, 2, 1]);
        assert_eq!(ladder_widths(6), vec![6, 3, 1]);
        assert_eq!(ladder_widths(1), vec![1]);
        assert_eq!(ladder_widths(0), vec![1]);
    }

    #[test]
    fn admits_widest_fitting_rung_and_reserves() {
        let gov = Governor::new(vec![100, 100], true, 1.0, None);
        // 64 lanes need 120 B/device, 32 need 60, scalar needs 10.
        let ladder = vec![(64, vec![120, 120]), (32, vec![60, 60]), (1, vec![10, 10])];
        let g = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(g.width, 32, "widest fitting rung wins");
        assert!(g.degraded);
        assert_eq!(g.reserved, vec![60, 60]);

        // A second identical job must see the reservation: 60+60 > 100,
        // so only the scalar rung fits now.
        let g2 = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(g2.width, 1);

        // A third job needing 40 B sees 70/100 in use: it does not fit
        // the residual, but fits an idle server — transient, not a
        // rejection.
        assert_eq!(
            gov.decide(Priority::Normal, &[(1, vec![40, 40])])
                .unwrap_err(),
            Denial::Busy
        );

        gov.release(&g.reserved);
        gov.release(&g2.reserved);
        let g3 = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(g3.width, 32, "released reservations are reusable");
    }

    #[test]
    fn low_priority_is_shed_instead_of_degraded() {
        let gov = Governor::new(vec![100], true, 1.0, None);
        let ladder = vec![(64, vec![200]), (32, vec![50])];
        assert_eq!(
            gov.decide(Priority::Low, &ladder).unwrap_err(),
            Denial::Reject(RejectReason::Shed {
                requested_width: 64
            })
        );
        // The same job at Normal priority degrades instead.
        let g = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(g.width, 32);
        // A Low job that fits at its requested width is NOT shed.
        gov.release(&g.reserved);
        let fits = vec![(64, vec![80])];
        let low_grant = gov.decide(Priority::Low, &fits).unwrap();
        assert_eq!(low_grant.width, 64);
        // A Low job whose requested width fits idle capacity but is
        // crowded out by a reservation waits rather than taking the
        // narrower rung that would fit the residual right now.
        assert_eq!(
            gov.decide(Priority::Low, &[(64, vec![80]), (32, vec![15])])
                .unwrap_err(),
            Denial::Busy,
            "Low is never granted degraded width; it waits for full width"
        );
        gov.release(&low_grant.reserved);
    }

    #[test]
    fn nothing_fits_rejects_with_worst_device() {
        let gov = Governor::new(vec![100, 40], true, 1.0, None);
        let ladder = vec![(2, vec![90, 90]), (1, vec![50, 50])];
        assert_eq!(
            gov.decide(Priority::High, &ladder).unwrap_err(),
            Denial::Reject(RejectReason::MemoryExceeded {
                device: 1,
                predicted: 50,
                capacity: 40
            })
        );
    }

    #[test]
    fn dead_device_rehomes_onto_least_loaded_survivor() {
        let gov = Governor::new(vec![100, 100, 100], true, 1.0, None);
        gov.observe(Some(1), &stats_with(1, 0)); // crash, no rejoin
        let status = gov.device_status();
        assert_eq!(status[1].health, DeviceHealth::Dead);
        assert_eq!(status[1].residual, 0);

        // Device 1's 40 B lands on a survivor; 60+40 fits 100.
        let ladder = vec![(2, vec![60, 40, 70])];
        let g = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(
            g.reserved,
            vec![100, 0, 70],
            "dead device's load re-homes onto the least-loaded survivor"
        );
        gov.release(&g.reserved);

        // A rejoin revives it and load stays home.
        gov.observe(Some(1), &stats_with(1, 1));
        let g = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(g.reserved, vec![60, 40, 70]);
    }

    #[test]
    fn all_dead_rejects() {
        let gov = Governor::new(vec![100], true, 1.0, None);
        gov.observe(Some(0), &stats_with(1, 0));
        assert_eq!(
            gov.decide(Priority::Normal, &[(1, vec![10])]).unwrap_err(),
            Denial::Reject(RejectReason::NoAliveDevices)
        );
    }

    #[test]
    fn straggler_shrinks_effective_capacity() {
        let gov = Governor::new(vec![100, 100], true, 0.5, Some((1, 4.0)));
        let status = gov.device_status();
        assert_eq!(status[1].health, DeviceHealth::Straggler);
        assert_eq!(status[1].slow_factor, 4.0);
        assert_eq!(status[1].residual, 50, "capacity × straggler factor");

        // 60 B fits device 0 but not the straggler's shrunk 50 B.
        let ladder = vec![(2, vec![60, 60]), (1, vec![30, 30])];
        let g = gov.decide(Priority::Normal, &ladder).unwrap();
        assert_eq!(g.width, 1, "pressure steers wide batches off stragglers");
    }

    #[test]
    fn disabled_governor_admits_everything_unreserved() {
        let gov = Governor::new(vec![10], false, 1.0, None);
        let g = gov.decide(Priority::Low, &[(64, vec![u64::MAX])]).unwrap();
        assert_eq!(g.width, 64);
        assert!(g.reserved.is_empty());
    }
}
