//! The resident job-server.
//!
//! [`JobServer::load`] pays the graph-residency cost once — partitioning
//! the dataset under the runtime's policy into three prepared views
//! (directed, symmetrized, transposed), each with its sync plan and
//! extract indexes — then serves any number of concurrent jobs against
//! that `Arc`-shared immutable state. Per job, only the per-device
//! program state (including the round scratch) is materialized, which is
//! exactly what the `(shared partition, program, source)` execution unit
//! of [`dirgl_core::Runtime::job`] needs.
//!
//! Scheduling: submissions pass admission control (source validation and a
//! bounded waiting queue — refusals say why), then wait in a priority
//! queue (higher [`Priority`] first, FIFO within a level). A fixed set of
//! executor threads bounds the jobs in flight; inside a job, the engine's
//! per-device loops fan out over the process-wide worker pool as usual, so
//! concurrent jobs share the same pool the one-shot harness uses.
//! Completed outcomes land in the keyed result cache
//! (epoch × program × params) with LRU eviction; repeated queries are
//! O(lookup) and return the very bytes the cold run produced.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use std::time::Duration;

use dirgl_apps::{
    batched_betweenness_centrality_prepared, betweenness_centrality_prepared, BcBackward,
    BcForward, Bfs, Cc, KCore, PageRank, Sssp,
};
use dirgl_core::{
    Backend, ExecutionReport, Lanes, MultiSourceProgram, PreparedPartition, ResilienceStats,
    RunConfig, RunError, RunOutput, Runtime, LANE_WIDTH,
};
use dirgl_gpusim::Platform;
use dirgl_graph::Csr;

use crate::cache::{CacheKey, ResultCache};
use crate::governor::{ladder_widths, Denial, DeviceStatus, Governor, RejectReason};
use crate::job::{
    JobCell, JobError, JobHandle, JobOutcome, JobRequest, JobResilience, JobResult, JobSpec,
    Priority, SubmitError,
};

/// Server sizing and policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Executor threads = maximum jobs in flight at once.
    pub workers: usize,
    /// Maximum jobs waiting in the queue; submissions beyond it are
    /// rejected with [`SubmitError::Saturated`].
    pub queue_capacity: usize,
    /// Result-cache entries (LRU-evicted; 0 disables caching).
    pub cache_capacity: usize,
    /// Start with execution paused; jobs queue (and admission control
    /// applies) but nothing runs until [`JobServer::resume`]. Tests use
    /// this to make saturation and deadline behavior deterministic.
    pub start_paused: bool,
    /// Run every launch through the admission governor (predict the
    /// per-device footprint, degrade the lane width until it fits, shed
    /// Low-priority work under pressure, reject what cannot fit at all).
    /// Disabled, jobs launch at their requested width and the engine's
    /// own load check is the only guard.
    pub governor: bool,
    /// Effective-capacity multiplier the governor applies to a straggling
    /// device, in `(0, 1]` — pressure steers wide batches away from slow
    /// devices before they inflate the barrier.
    pub straggler_capacity_factor: f64,
    /// Retries after a retriable engine failure (OOM); each retry halves
    /// the lane width. `0` disables retrying.
    pub max_retries: u32,
    /// Base retry pause; attempt `i` (0-based) backs off `2^i ×` this,
    /// truncated at the job's deadline.
    pub retry_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            start_paused: false,
            governor: true,
            straggler_capacity_factor: 0.9,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// Monotonic counters, readable at any time via [`JobServer::stats`].
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected_saturated: AtomicU64,
    rejected_invalid: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    invalidated: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    rejected_gov: AtomicU64,
    shut_down: AtomicU64,
}

/// A point-in-time statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Submissions seen (accepted or not).
    pub submitted: u64,
    /// Jobs admitted to the queue (including cache fast-path completions).
    pub accepted: u64,
    /// Submissions refused because the queue was full.
    pub rejected_saturated: u64,
    /// Submissions refused for naming an out-of-range source.
    pub rejected_invalid: u64,
    /// Jobs that executed to completion.
    pub completed: u64,
    /// Jobs whose execution returned a [`RunError`].
    pub failed: u64,
    /// Jobs dropped because their deadline passed while queued.
    pub expired: u64,
    /// Results served from the cache (at submission or at dequeue).
    pub cache_hits: u64,
    /// Jobs that had to execute because no cached result existed.
    pub cache_misses: u64,
    /// Cached results dropped by epoch invalidation.
    pub invalidated: u64,
    /// Jobs served as lanes of a coalesced multi-source engine launch
    /// (counts every member of a merged batch).
    pub coalesced: u64,
    /// Engine relaunches after a retriable failure (each halves the lane
    /// width).
    pub retries: u64,
    /// Jobs that completed at a lane width below the one they requested
    /// (admission degradation or retry narrowing).
    pub degraded: u64,
    /// Low-priority jobs the governor shed under memory pressure (a
    /// subset of [`ServerStats::rejected_gov`]).
    pub shed: u64,
    /// Jobs the admission governor refused to launch (no rung of the
    /// degradation ladder fit, all devices dead, or shed).
    pub rejected_gov: u64,
    /// Queued jobs failed because the server shut down first.
    pub shut_down: u64,
    /// Cache entries currently resident.
    pub cache_entries: usize,
    /// LRU evictions so far.
    pub cache_evictions: u64,
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs executing right now.
    pub in_flight: usize,
    /// Current graph epoch.
    pub epoch: u64,
}

/// One queued job. The heap orders by priority (higher first), then by
/// submission sequence (earlier first) — deterministic FIFO within a
/// priority level.
struct Queued {
    priority: Priority,
    seq: u64,
    deadline: Option<Instant>,
    spec: JobSpec,
    epoch: u64,
    cell: Arc<JobCell>,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Mutable scheduler state behind one mutex.
struct Sched {
    queue: BinaryHeap<Queued>,
    in_flight: usize,
    paused: bool,
    shutdown: bool,
    next_seq: u64,
}

struct Inner {
    rt: Runtime,
    /// The dataset as given (bfs, sssp, pagerank, bc forward).
    directed: Arc<PreparedPartition>,
    /// Symmetrized view (cc, kcore).
    symmetric: Arc<PreparedPartition>,
    /// Transposed view (bc backward).
    transpose: Arc<PreparedPartition>,
    queue_capacity: usize,
    cache_enabled: bool,
    /// Memory/health-aware admission (see [`crate::governor`]).
    gov: Governor,
    /// Device the server's fault plan crashes (observed from job reports
    /// to keep the governor's health picture current).
    crash_device: Option<u32>,
    max_retries: u32,
    retry_backoff: Duration,
    sched: Mutex<Sched>,
    /// Signaled when work arrives, pause state flips, or shutdown begins.
    work: Condvar,
    /// Signaled when the server goes idle (empty queue, nothing in
    /// flight) — what [`JobServer::drain`] waits on.
    idle: Condvar,
    cache: Mutex<ResultCache>,
    epoch: AtomicU64,
    c: Counters,
}

impl Inner {
    /// The prepared view `spec` runs on (bc's second view is handled by
    /// its driver).
    fn view_for(&self, spec: &JobSpec) -> &Arc<PreparedPartition> {
        if spec.needs_symmetric() {
            &self.symmetric
        } else {
            &self.directed
        }
    }

    /// Executes `spec` against the resident views at lane width `width`.
    /// Pure with respect to server state: all shared inputs are immutable,
    /// every mutable buffer is job-local, so any number of these may run
    /// concurrently and each single-source job reproduces its one-shot
    /// equivalent byte for byte. Multi-source traversal specs run the
    /// K-lane batched backend in `width`-lane chunks (`width == 1` runs
    /// each source through the scalar backend — the ladder's last rung);
    /// every width produces bit-identical per-source values.
    fn execute_at(&self, spec: &JobSpec, width: usize) -> Result<JobOutcome, RunError> {
        if let Some(sources) = spec.sources() {
            if sources.len() > 1 {
                return self
                    .execute_lanes(spec, sources, width)
                    .map(|(reports, per_source)| JobOutcome {
                        reports,
                        per_source,
                    });
            }
        }
        let single = |out: RunOutput| JobOutcome {
            reports: vec![out.report],
            per_source: vec![out.values],
        };
        match spec {
            JobSpec::Bfs { sources } => self
                .rt
                .job(&self.directed, &Bfs::new(sources[0]))
                .execute()
                .map(single),
            JobSpec::Sssp { sources } => self
                .rt
                .job(&self.directed, &Sssp::new(sources[0]))
                .execute()
                .map(single),
            JobSpec::Pagerank => self
                .rt
                .job(&self.directed, &PageRank::new())
                .execute()
                .map(single),
            JobSpec::Cc => self.rt.job(&self.symmetric, &Cc).execute().map(single),
            JobSpec::KCore { k } => self
                .rt
                .job(&self.symmetric, &KCore::new(*k))
                .execute()
                .map(single),
            JobSpec::Bc { sources } => betweenness_centrality_prepared(
                &self.rt,
                &self.directed,
                &self.transpose,
                sources[0],
            )
            .map(|bc| JobOutcome {
                reports: vec![bc.forward, bc.backward],
                per_source: vec![bc.scores],
            }),
        }
    }

    /// Runs a traversal spec's kind from every source in `sources` with
    /// the K-lane backend in `width`-lane chunks (scalar backend when
    /// `width == 1`). Returns the per-launch phase reports and one value
    /// vector per source, in `sources` order.
    fn execute_lanes(
        &self,
        spec: &JobSpec,
        sources: &[u32],
        width: usize,
    ) -> Result<(Vec<ExecutionReport>, Vec<Vec<f64>>), RunError> {
        let width = width.clamp(1, LANE_WIDTH);
        let backend = if width > 1 {
            Backend::Lanes
        } else {
            Backend::Scalar
        };
        match spec {
            JobSpec::Bfs { .. } => self
                .rt
                .job(&self.directed, &Bfs::new(sources[0]))
                .backend(backend)
                .batch(sources)
                .lane_width(width)
                .execute()
                .map(|out| {
                    let vals = out.lanes.into_iter().map(|l| l.values).collect();
                    (out.engine_reports, vals)
                }),
            JobSpec::Sssp { .. } => self
                .rt
                .job(&self.directed, &Sssp::new(sources[0]))
                .backend(backend)
                .batch(sources)
                .lane_width(width)
                .execute()
                .map(|out| {
                    let vals = out.lanes.into_iter().map(|l| l.values).collect();
                    (out.engine_reports, vals)
                }),
            JobSpec::Bc { .. } if width > 1 => {
                let mut outs = Vec::with_capacity(sources.len());
                for chunk in sources.chunks(width) {
                    outs.extend(batched_betweenness_centrality_prepared(
                        &self.rt,
                        &self.directed,
                        &self.transpose,
                        chunk,
                    )?);
                }
                let reports = vec![outs[0].forward.clone(), outs[0].backward.clone()];
                Ok((reports, outs.into_iter().map(|b| b.scores).collect()))
            }
            JobSpec::Bc { .. } => {
                // Scalar rung: one two-phase driver run per source.
                let mut outs = Vec::with_capacity(sources.len());
                for &src in sources {
                    outs.push(betweenness_centrality_prepared(
                        &self.rt,
                        &self.directed,
                        &self.transpose,
                        src,
                    )?);
                }
                let reports = vec![outs[0].forward.clone(), outs[0].backward.clone()];
                Ok((reports, outs.into_iter().map(|b| b.scores).collect()))
            }
            JobSpec::Pagerank | JobSpec::Cc | JobSpec::KCore { .. } => {
                unreachable!("only traversal specs carry sources")
            }
        }
    }

    /// One program's per-device footprint, by the representation the
    /// engine's load check would pick. Without [`RunConfig::spill`] this
    /// is the raw oracle ([`dirgl_core::Runtime::footprint`]); with it, a
    /// device whose raw footprint exceeds its *capacity* is charged the
    /// compressed footprint instead ([`Runtime::footprint_spilled`]) —
    /// the same raw-first-then-compressed decision the admission makes,
    /// so prediction and engine charge still cannot disagree.
    fn fp<P: dirgl_core::VertexProgram>(&self, prep: &PreparedPartition, prog: &P) -> Vec<u64> {
        let raw = self.rt.footprint(prep, prog);
        if !self.rt.config.spill {
            return raw;
        }
        let spilled = self.rt.footprint_spilled(prep, prog);
        raw.iter()
            .zip(&spilled)
            .zip(&self.rt.platform.gpus)
            .map(|((&r, &s), gpu)| if r <= gpu.memory_bytes { r } else { s })
            .collect()
    }

    /// Predicts `spec`'s per-device footprint at lane width `width` with
    /// the engine's own `required_bytes` formula
    /// ([`dirgl_core::Runtime::footprint`] /
    /// [`Runtime::footprint_spilled`] per the spill decision — see
    /// [`Inner::fp`]), instantiating exactly the program
    /// [`Inner::execute_at`] would launch — batched adapter for
    /// `width ≥ 2`, the scalar program for the scalar rung — so
    /// prediction and the engine's load check cannot disagree. Chunked
    /// runs execute sequentially and a full-width chunk's footprint
    /// dominates its narrower tail, so the first chunk is the maximum.
    fn predict(&self, spec: &JobSpec, width: usize) -> Vec<u64> {
        match spec {
            JobSpec::Bfs { sources } => {
                let k = width.clamp(1, LANE_WIDTH).min(sources.len());
                if k > 1 {
                    let prog = Bfs::new(sources[0]).batched(&sources[..k]);
                    self.fp(&self.directed, &prog)
                } else {
                    self.fp(&self.directed, &Bfs::new(sources[0]))
                }
            }
            JobSpec::Sssp { sources } => {
                let k = width.clamp(1, LANE_WIDTH).min(sources.len());
                if k > 1 {
                    let prog = Sssp::new(sources[0]).batched(&sources[..k]);
                    self.fp(&self.directed, &prog)
                } else {
                    self.fp(&self.directed, &Sssp::new(sources[0]))
                }
            }
            JobSpec::Pagerank => self.fp(&self.directed, &PageRank::new()),
            JobSpec::Cc => self.fp(&self.symmetric, &Cc),
            JobSpec::KCore { k } => self.fp(&self.symmetric, &KCore::new(*k)),
            JobSpec::Bc { sources } => {
                // Two sequential phases on two views: the job's footprint
                // on a device is the larger phase's.
                let k = width.clamp(1, LANE_WIDTH).min(sources.len());
                let fwd = BcForward { source: sources[0] };
                let (f, b) = if k > 1 {
                    let bwd: Vec<BcBackward> = (0..k).map(|_| BcBackward::new(0)).collect();
                    (
                        self.rt
                            .footprint(&self.directed, &Lanes::new(&fwd, &sources[..k])),
                        self.rt
                            .footprint(&self.transpose, &Lanes::from_programs(bwd)),
                    )
                } else {
                    (
                        self.fp(&self.directed, &fwd),
                        self.fp(&self.transpose, &BcBackward::new(0)),
                    )
                };
                f.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect()
            }
        }
    }

    /// The full serve path for one (possibly coalesced) launch: governor
    /// admission over the degradation ladder, execution at the granted
    /// width, and on retriable failure a capped exponential-backoff retry
    /// loop that halves the width per attempt — all under `deadline`
    /// (checked before every launch and across every backoff pause).
    /// Returns the outcome plus the job's resilience record; the caller
    /// owns counter bookkeeping.
    fn execute_governed(
        &self,
        spec: &JobSpec,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<(JobOutcome, JobResilience), JobError> {
        let requested = spec.sources().map(|s| s.len().min(LANE_WIDTH)).unwrap_or(1);
        let ladder: Vec<(usize, Vec<u64>)> = ladder_widths(requested)
            .into_iter()
            .map(|w| (w, self.predict(spec, w)))
            .collect();
        // Transient denials (the job fits an idle server but in-flight
        // reservations crowd it out) wait for a release and ask again;
        // only terminal denials surface as rejections. The wait cannot
        // wedge: `Busy` implies another worker holds a reservation it
        // will release when its launch finishes.
        let grant = loop {
            match self.gov.decide(priority, &ladder) {
                Ok(g) => break g,
                Err(Denial::Reject(r)) => return Err(JobError::Rejected(r)),
                Err(Denial::Busy) => {
                    let pause = self.retry_backoff.max(Duration::from_micros(200));
                    if let Some(dl) = deadline {
                        let now = Instant::now();
                        if now + pause >= dl {
                            std::thread::sleep(dl.saturating_duration_since(now));
                            return Err(JobError::DeadlineExpired);
                        }
                    }
                    std::thread::sleep(pause);
                }
            }
        };

        let mut width = grant.width;
        let mut attempts: u32 = 0;
        let outcome = loop {
            if deadline.is_some_and(|dl| Instant::now() > dl) {
                self.gov.release(&grant.reserved);
                return Err(JobError::DeadlineExpired);
            }
            attempts += 1;
            match self.execute_at(spec, width) {
                Ok(outcome) => break outcome,
                Err(e) => {
                    if e.is_retriable() && width > 1 && attempts <= self.max_retries {
                        // Narrow and back off; a pause that would cross
                        // the deadline expires the job instead (exactly
                        // once, at the deadline).
                        width = (width / 2).max(1);
                        let pause = self
                            .retry_backoff
                            .saturating_mul(1u32 << (attempts - 1).min(16));
                        if let Some(dl) = deadline {
                            let now = Instant::now();
                            if now + pause >= dl {
                                std::thread::sleep(dl.saturating_duration_since(now));
                                self.gov.release(&grant.reserved);
                                return Err(JobError::DeadlineExpired);
                            }
                        }
                        std::thread::sleep(pause);
                        self.c.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.gov.release(&grant.reserved);
                    return Err(JobError::Run { error: e, attempts });
                }
            }
        };
        self.gov.release(&grant.reserved);

        let mut engine = ResilienceStats::default();
        for r in &outcome.reports {
            fold_resilience(&mut engine, &r.resilience);
        }
        // Keep the health picture current: a crash that never rejoined
        // leaves its device dead for subsequent admissions.
        self.gov.observe(self.crash_device, &engine);

        let resilience = JobResilience {
            attempts,
            requested_width: requested,
            granted_width: width,
            degraded: width < requested,
            engine,
        };
        if resilience.degraded {
            self.c.degraded.fetch_add(1, Ordering::Relaxed);
        }
        Ok((outcome, resilience))
    }

    /// One-stop failure bookkeeping — every terminal [`JobError`] a
    /// worker produces is counted here, exactly once, so the counters
    /// reconcile (`accepted = completed + cache_hits + failed + expired +
    /// rejected_gov + shut_down`).
    fn count_error(&self, e: &JobError) {
        match e {
            JobError::Run { .. } => {
                self.c.failed.fetch_add(1, Ordering::Relaxed);
            }
            JobError::Rejected(r) => {
                self.c.rejected_gov.fetch_add(1, Ordering::Relaxed);
                if matches!(r, RejectReason::Shed { .. }) {
                    self.c.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            JobError::DeadlineExpired => {
                self.c.expired.fetch_add(1, Ordering::Relaxed);
            }
            JobError::ShutDown => {
                self.c.shut_down.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The executor loop: pop the highest-priority job, widen it into a
    /// coalescing window (same-kind single-source traversal jobs at the
    /// same epoch merge into one K-lane engine launch, up to the lane
    /// width), serve the batch, fulfill every handle. Exits on shutdown
    /// after the queue has been drained (drained jobs complete with
    /// [`JobError::ShutDown`]).
    fn worker_loop(self: &Arc<Inner>) {
        loop {
            let batch = {
                let mut s = self.sched.lock().unwrap();
                loop {
                    if s.shutdown {
                        // Fail whatever is still queued, exactly once
                        // across workers (whoever holds the lock first).
                        while let Some(q) = s.queue.pop() {
                            self.c.shut_down.fetch_add(1, Ordering::Relaxed);
                            q.cell.fulfill(Err(JobError::ShutDown));
                        }
                        self.idle.notify_all();
                        return;
                    }
                    if !s.paused {
                        if let Some(j) = s.queue.pop() {
                            let batch = Self::coalesce_window(&mut s.queue, j);
                            s.in_flight += batch.len();
                            break batch;
                        }
                    }
                    s = self.work.wait(s).unwrap();
                }
            };

            let n = batch.len();
            if n == 1 {
                let job = &batch[0];
                let result = self.serve_one(job);
                job.cell.fulfill(result);
            } else {
                self.serve_coalesced(batch);
            }

            let mut s = self.sched.lock().unwrap();
            s.in_flight -= n;
            if s.in_flight == 0 && s.queue.is_empty() {
                self.idle.notify_all();
            }
        }
    }

    /// The coalescing window: starting from dequeued job `first`, absorbs
    /// every queued job of the same traversal kind with exactly one source
    /// and the same epoch, up to [`LANE_WIDTH`] lanes total. Multi-source
    /// specs and parameterless kinds pass through untouched; everything
    /// not absorbed goes back on the heap.
    fn coalesce_window(queue: &mut BinaryHeap<Queued>, first: Queued) -> Vec<Queued> {
        let coalescible = |q: &Queued| q.spec.sources().is_some_and(|ss| ss.len() == 1);
        if !coalescible(&first) || queue.is_empty() {
            return vec![first];
        }
        let mut batch = vec![first];
        let mut rest = Vec::new();
        for q in std::mem::take(queue).into_sorted_vec().into_iter().rev() {
            let take = batch.len() < LANE_WIDTH
                && q.epoch == batch[0].epoch
                && q.spec.name() == batch[0].spec.name()
                && coalescible(&q);
            if take {
                batch.push(q);
            } else {
                rest.push(q);
            }
        }
        queue.extend(rest);
        batch
    }

    /// Serves a coalesced window: per-job deadline and cache checks still
    /// apply individually, then the surviving singletons run as lanes of
    /// one governed batched engine launch at the batch's highest member
    /// priority. Each job gets its own outcome (sharing the batch's
    /// resilience record), and the cache is filled per source under the
    /// canonical singleton spec, so later single-source queries hit.
    ///
    /// Member deadlines are enforced before the launch only: the batch
    /// retries without a deadline, so a member whose deadline passes
    /// mid-run still receives its (late) result rather than poisoning the
    /// shared launch. Jobs that need hard mid-run expiry should not
    /// coalesce (multi-source specs never do).
    fn serve_coalesced(&self, jobs: Vec<Queued>) {
        let epoch = jobs[0].epoch;
        let mut run = Vec::with_capacity(jobs.len());
        for job in jobs {
            if let Some(dl) = job.deadline {
                if Instant::now() > dl {
                    self.c.expired.fetch_add(1, Ordering::Relaxed);
                    job.cell.fulfill(Err(JobError::DeadlineExpired));
                    continue;
                }
            }
            if self.cache_enabled {
                let key: CacheKey = (epoch, job.spec.clone());
                if let Some(outcome) = self.cache.lock().unwrap().get(&key) {
                    self.c.cache_hits.fetch_add(1, Ordering::Relaxed);
                    job.cell.fulfill(Ok(JobResult {
                        outcome,
                        from_cache: true,
                        epoch,
                        resilience: JobResilience::default(),
                    }));
                    continue;
                }
            }
            self.c.cache_misses.fetch_add(1, Ordering::Relaxed);
            run.push(job);
        }
        if run.is_empty() {
            return;
        }

        // Distinct sources become lanes; duplicate submissions share one.
        let mut sources: Vec<u32> = run
            .iter()
            .map(|q| q.spec.sources().expect("coalesced jobs have sources")[0])
            .collect();
        sources.sort_unstable();
        sources.dedup();

        let batch_spec = run[0]
            .spec
            .with_sources(sources.clone())
            .expect("coalesced jobs are traversal specs");
        let priority = run
            .iter()
            .map(|q| q.priority)
            .max()
            .expect("batch is non-empty");

        match self.execute_governed(&batch_spec, priority, None) {
            Ok((outcome, resilience)) => {
                if run.len() > 1 {
                    self.c
                        .coalesced
                        .fetch_add(run.len() as u64, Ordering::Relaxed);
                }
                // One singleton outcome per source, shared between the
                // cache, this batch's duplicates, and future hits.
                let outcomes: Vec<Arc<JobOutcome>> = outcome
                    .per_source
                    .into_iter()
                    .map(|values| {
                        Arc::new(JobOutcome {
                            reports: outcome.reports.clone(),
                            per_source: vec![values],
                        })
                    })
                    .collect();
                if self.cache_enabled {
                    let mut cache = self.cache.lock().unwrap();
                    for (i, &src) in sources.iter().enumerate() {
                        let spec = run[0].spec.with_sources(vec![src]).expect("traversal spec");
                        cache.insert((epoch, spec), Arc::clone(&outcomes[i]));
                    }
                }
                for job in run {
                    let src = job.spec.sources().expect("traversal spec")[0];
                    let i = sources.binary_search(&src).expect("source is a lane");
                    self.c.completed.fetch_add(1, Ordering::Relaxed);
                    job.cell.fulfill(Ok(JobResult {
                        outcome: Arc::clone(&outcomes[i]),
                        from_cache: false,
                        epoch,
                        resilience: resilience.clone(),
                    }));
                }
            }
            Err(e) => {
                for job in run {
                    self.count_error(&e);
                    job.cell.fulfill(Err(e.clone()));
                }
            }
        }
    }

    /// Serves one dequeued job: deadline check, cache re-check (an
    /// identical job may have completed while this one queued), then
    /// governed execution + cache fill.
    fn serve_one(&self, job: &Queued) -> Result<JobResult, JobError> {
        if let Some(dl) = job.deadline {
            if Instant::now() > dl {
                self.c.expired.fetch_add(1, Ordering::Relaxed);
                return Err(JobError::DeadlineExpired);
            }
        }
        let key: CacheKey = (job.epoch, job.spec.clone());
        if self.cache_enabled {
            if let Some(outcome) = self.cache.lock().unwrap().get(&key) {
                self.c.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(JobResult {
                    outcome,
                    from_cache: true,
                    epoch: job.epoch,
                    resilience: JobResilience::default(),
                });
            }
        }
        self.c.cache_misses.fetch_add(1, Ordering::Relaxed);
        match self.execute_governed(&job.spec, job.priority, job.deadline) {
            Ok((outcome, resilience)) => {
                let outcome = Arc::new(outcome);
                if self.cache_enabled {
                    self.cache.lock().unwrap().insert(key, Arc::clone(&outcome));
                }
                self.c.completed.fetch_add(1, Ordering::Relaxed);
                Ok(JobResult {
                    outcome,
                    from_cache: false,
                    epoch: job.epoch,
                    resilience,
                })
            }
            Err(e) => {
                self.count_error(&e);
                Err(e)
            }
        }
    }
}

/// Field-wise fold of one phase's engine resilience counters into a
/// job-level total.
fn fold_resilience(total: &mut ResilienceStats, r: &ResilienceStats) {
    total.faults.merge(&r.faults);
    total.crashes += r.crashes;
    total.checkpoints_taken += r.checkpoints_taken;
    total.checkpoint_bytes += r.checkpoint_bytes;
    total.rollbacks += r.rollbacks;
    total.rounds_replayed += r.rounds_replayed;
    total.rejoins += r.rejoins;
    total.masters_reassigned += r.masters_reassigned;
    total.recovery_time += r.recovery_time;
}

/// The operator-facing snapshot [`JobServer::status`] returns: the
/// admission governor's per-device view (health, reserved and residual
/// bytes) plus queue occupancy and the counter set.
#[derive(Clone, Debug)]
pub struct ServerStatus {
    /// One row per device, as the governor admits against it right now.
    pub devices: Vec<DeviceStatus>,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs executing right now.
    pub in_flight: usize,
    /// The full counter snapshot.
    pub stats: ServerStats,
}

/// A long-lived analytics server over one resident dataset. See the
/// module docs for the lifecycle; construct with [`JobServer::load`].
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Loads `graph` once: builds the three prepared views under
    /// `config`'s policy/seed on `platform`, then starts the executor
    /// threads. The partitions a bare `runner(...).execute()` would build
    /// per call are exactly the ones prepared here, so served results are
    /// byte-identical to their one-shot equivalents.
    pub fn load(
        graph: &Csr,
        platform: Platform,
        config: RunConfig,
        serve: ServeConfig,
    ) -> Result<JobServer, RunError> {
        let rt = Runtime::new(platform, config);
        let directed = Arc::new(rt.prepare(graph, false)?);
        let symmetric = Arc::new(rt.prepare(graph, true)?);
        let transpose = Arc::new(rt.prepare(&graph.transpose(), false)?);
        let capacities: Vec<u64> = rt.platform.gpus.iter().map(|g| g.memory_bytes).collect();
        let faults = rt.config.faults.as_ref();
        let straggler = faults.and_then(|f| f.straggler.map(|s| (s.device, s.factor)));
        let crash_device = faults.and_then(|f| f.crash.map(|c| c.device));
        let gov = Governor::new(
            capacities,
            serve.governor,
            serve.straggler_capacity_factor,
            straggler,
        );
        let inner = Arc::new(Inner {
            rt,
            directed,
            symmetric,
            transpose,
            queue_capacity: serve.queue_capacity,
            cache_enabled: serve.cache_capacity > 0,
            gov,
            crash_device,
            max_retries: serve.max_retries,
            retry_backoff: serve.retry_backoff,
            sched: Mutex::new(Sched {
                queue: BinaryHeap::new(),
                in_flight: 0,
                paused: serve.start_paused,
                shutdown: false,
                next_seq: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            cache: Mutex::new(ResultCache::new(serve.cache_capacity)),
            epoch: AtomicU64::new(0),
            c: Counters::default(),
        });
        let workers = (0..serve.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dirgl-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("failed to spawn serve worker")
            })
            .collect();
        Ok(JobServer { inner, workers })
    }

    /// Submits one job. Admission control happens here: the source set is
    /// canonicalized (sorted, deduplicated); an empty source set, an
    /// out-of-range source (the error names the offending id) or a full
    /// queue is refused with the reason; a cached result completes
    /// immediately without queueing. Accepted jobs return a [`JobHandle`]
    /// to wait on.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, SubmitError> {
        let inner = &self.inner;
        inner.c.submitted.fetch_add(1, Ordering::Relaxed);

        let mut spec = req.spec;
        spec.canonicalize();

        // Degenerate jobs are refused at the door — the resident process
        // must never die (or even spin) on one.
        if let Some(sources) = spec.sources() {
            if sources.is_empty() {
                inner.c.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::EmptySources);
            }
            let n = inner.view_for(&spec).num_vertices();
            if let Some(&source) = sources.iter().find(|&&s| s >= n) {
                inner.c.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::InvalidSource {
                    source,
                    num_vertices: n,
                });
            }
        }

        let epoch = inner.epoch.load(Ordering::SeqCst);

        // Cache fast path: a repeated query never occupies a queue slot.
        if inner.cache_enabled {
            if let Some(outcome) = inner.cache.lock().unwrap().get(&(epoch, spec.clone())) {
                inner.c.cache_hits.fetch_add(1, Ordering::Relaxed);
                inner.c.accepted.fetch_add(1, Ordering::Relaxed);
                return Ok(JobHandle {
                    cell: JobCell::completed(Ok(JobResult {
                        outcome,
                        from_cache: true,
                        epoch,
                        resilience: JobResilience::default(),
                    })),
                });
            }
        }

        let deadline = req.deadline.map(|d| Instant::now() + d);
        let mut s = inner.sched.lock().unwrap();
        if s.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if s.queue.len() >= inner.queue_capacity {
            inner.c.rejected_saturated.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Saturated {
                queued: s.queue.len(),
                capacity: inner.queue_capacity,
            });
        }
        let cell = JobCell::new();
        let seq = s.next_seq;
        s.next_seq += 1;
        s.queue.push(Queued {
            priority: req.priority,
            seq,
            deadline,
            spec,
            epoch,
            cell: Arc::clone(&cell),
        });
        drop(s);
        inner.c.accepted.fetch_add(1, Ordering::Relaxed);
        inner.work.notify_one();
        Ok(JobHandle { cell })
    }

    /// Convenience: submit with default priority and no deadline.
    pub fn submit_spec(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit(JobRequest::new(spec))
    }

    /// Stops dequeueing (in-flight jobs finish; submissions still queue).
    pub fn pause(&self) {
        self.inner.sched.lock().unwrap().paused = true;
        self.inner.work.notify_all();
    }

    /// Resumes dequeueing after [`JobServer::pause`].
    pub fn resume(&self) {
        self.inner.sched.lock().unwrap().paused = false;
        self.inner.work.notify_all();
    }

    /// Blocks until the queue is empty and nothing is in flight. Panics if
    /// called while paused with work queued (it could never return).
    pub fn drain(&self) {
        let mut s = self.inner.sched.lock().unwrap();
        assert!(
            !s.paused || (s.queue.is_empty() && s.in_flight == 0),
            "drain() on a paused server with queued work would block forever"
        );
        while !(s.queue.is_empty() && s.in_flight == 0) {
            s = self.inner.idle.wait(s).unwrap();
        }
    }

    /// Advances the graph epoch (a mutation hook for the streaming path):
    /// all cached results of earlier epochs become unreachable and are
    /// purged; queued jobs keep the epoch they were submitted under.
    pub fn bump_epoch(&self) -> u64 {
        let new = self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let purged = self.inner.cache.lock().unwrap().purge_before(new);
        self.inner
            .c
            .invalidated
            .fetch_add(purged as u64, Ordering::Relaxed);
        new
    }

    /// The current graph epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// The resident directed view (source of truth for vertex count and
    /// the bfs/sssp source convention).
    pub fn directed_view(&self) -> &Arc<PreparedPartition> {
        &self.inner.directed
    }

    /// The paper's default traversal source (highest out-degree vertex of
    /// the directed view); `None` on an empty graph.
    pub fn default_source(&self) -> Option<u32> {
        self.inner.directed.max_out_degree_source()
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> ServerStats {
        let inner = &self.inner;
        let (queued, in_flight) = {
            let s = inner.sched.lock().unwrap();
            (s.queue.len(), s.in_flight)
        };
        let (cache_entries, cache_evictions) = {
            let c = inner.cache.lock().unwrap();
            (c.len(), c.evictions())
        };
        let c = &inner.c;
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected_saturated: c.rejected_saturated.load(Ordering::Relaxed),
            rejected_invalid: c.rejected_invalid.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            invalidated: c.invalidated.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rejected_gov: c.rejected_gov.load(Ordering::Relaxed),
            shut_down: c.shut_down.load(Ordering::Relaxed),
            cache_entries,
            cache_evictions,
            queued,
            in_flight,
            epoch: inner.epoch.load(Ordering::SeqCst),
        }
    }

    /// Predicts `spec`'s per-device footprint in bytes at lane width
    /// `width` — the exact bytes the engine's load check will charge
    /// (the admission governor's oracle; see
    /// [`dirgl_core::Runtime::footprint`]). The spec is canonicalized
    /// first, mirroring submission.
    pub fn predict_footprint(&self, spec: &JobSpec, width: usize) -> Vec<u64> {
        let mut spec = spec.clone();
        spec.canonicalize();
        self.inner.predict(&spec, width.clamp(1, LANE_WIDTH))
    }

    /// Operator snapshot: per-device health and residual memory as the
    /// admission governor currently sees them, queue occupancy, and the
    /// full counter set.
    pub fn status(&self) -> ServerStatus {
        let stats = self.stats();
        ServerStatus {
            devices: self.inner.gov.device_status(),
            queued: stats.queued,
            in_flight: stats.in_flight,
            stats,
        }
    }

    /// Shuts the server down: refuses new submissions, fails queued jobs
    /// with [`JobError::ShutDown`], lets in-flight jobs finish, joins the
    /// executors.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut s = self.inner.sched.lock().unwrap();
            s.shutdown = true;
            // A paused server must still wake workers so they observe
            // shutdown and drain the queue.
            s.paused = false;
        }
        self.inner.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(priority: Priority, seq: u64) -> Queued {
        Queued {
            priority,
            seq,
            deadline: None,
            spec: JobSpec::Pagerank,
            epoch: 0,
            cell: JobCell::new(),
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut h = BinaryHeap::new();
        h.push(q(Priority::Normal, 0));
        h.push(q(Priority::Low, 1));
        h.push(q(Priority::High, 2));
        h.push(q(Priority::High, 3));
        h.push(q(Priority::Low, 4));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|x| x.seq)).collect();
        assert_eq!(order, vec![2, 3, 0, 1, 4]);
    }
}
