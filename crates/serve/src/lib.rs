//! # dirgl-serve — the resident analytics service
//!
//! The one-shot harness pays the full residency cost — load, partition,
//! sync-plan construction — on every `runner(...).execute()` call. This
//! crate turns that around for the interactive-analytics shape the paper's
//! framework ultimately serves: load a dataset **once** into a
//! [`JobServer`], keep the partitioned graph, per-device local graphs and
//! communication plans resident behind `Arc`-shared immutable state, and
//! answer many concurrent queries (bfs/sssp/bc from arbitrary sources,
//! pagerank, cc, kcore) against it.
//!
//! Three layers:
//!
//! * [`JobSpec`]/[`JobRequest`]/[`JobHandle`] ([`mod@crate::job`] items) —
//!   the client vocabulary: what to compute, at which [`Priority`], with
//!   what deadline; the handle to block on.
//! * the result cache — completed outcomes keyed by
//!   `(graph epoch × program × params)` with LRU eviction, so repeated
//!   queries return the very bytes the cold run produced.
//! * [`JobServer`] — admission control (source validation, bounded queue
//!   with reject-with-reason), a priority queue, a fixed executor pool
//!   bounding jobs in flight, and counters ([`ServerStats`]).
//! * the resilience layer ([`mod@crate::governor`] + per-job recovery) —
//!   before launch, the admission governor predicts the job's per-device
//!   memory footprint with the engine's own formula, checks it against
//!   health-shrunk residual capacity and walks the lane-width degradation
//!   ladder (64 → 32 → … → scalar) until it fits, shedding Low-priority
//!   work under pressure; retriable engine failures retry with capped
//!   exponential backoff and width halving, deadlines are enforced across
//!   retries, and every result carries its [`JobResilience`] record.
//!
//! Traversal specs (bfs/sssp/bc) carry a *set* of sources and run them as
//! lanes of one K-lane batched engine pass (K ≤ 64). At dequeue, a worker
//! additionally widens its job into a **coalescing window**: queued
//! single-source jobs of the same kind and epoch merge into one batched
//! launch, each job keeps its own handle and outcome, and the result cache
//! is filled per source — later identical singletons hit without running.
//!
//! Determinism carries over: each served job is byte-identical to its
//! serial `runner(...).execute()` equivalent, because the server's
//! prepared views are built by the exact same path
//! ([`dirgl_core::Runtime::prepare`]) the one-shot runner uses.
//!
//! ```
//! use dirgl_serve::{JobServer, JobSpec, ServeConfig};
//! use dirgl_core::{RunConfig, Runtime};
//! use dirgl_gpusim::Platform;
//! use dirgl_partition::Policy;
//!
//! let g = dirgl_graph::RmatConfig::new(8, 6).seed(7).generate();
//! let server = JobServer::load(
//!     &g,
//!     Platform::bridges(4),
//!     RunConfig::var4(Policy::Cvc),
//!     ServeConfig::default(),
//! )
//! .unwrap();
//! let src = server.default_source().unwrap();
//! let h = server.submit_spec(JobSpec::bfs(src)).unwrap();
//! let r = h.wait().unwrap();
//! assert!(!r.outcome.values().is_empty());
//! ```

#![warn(missing_docs)]

mod cache;
mod governor;
mod job;
mod server;

pub use dirgl_gpusim::DeviceHealth;
pub use governor::{DeviceStatus, RejectReason};
pub use job::{
    JobError, JobHandle, JobOutcome, JobRequest, JobResilience, JobResult, JobSpec, Priority,
    SubmitError,
};
pub use server::{JobServer, ServeConfig, ServerStats, ServerStatus};
