//! Chaos harness: a mixed concurrent job stream against a server whose
//! world is actively hostile — dropped/duplicated/delayed links, a device
//! crash (both recovery modes), a straggler window, memory pressure via
//! tightened device capacities, deadline churn and queue saturation —
//! all driven by one seed (`DIRGL_FAULT_SEED`, default 7; CI sweeps
//! {7, 42, 1337}).
//!
//! The contract under every storm:
//!
//! * every job that *completes* returns values bit-identical to the
//!   fault-free answer (bfs/sssp/cc are exact programs; pagerank is
//!   tolerance-checked, as in the fault-free suite),
//! * the server never panics and never wedges,
//! * the counters reconcile: `submitted = accepted + rejected_saturated +
//!   rejected_invalid` and `accepted = completed + cache_hits + failed +
//!   expired + rejected_gov + shut_down`.

use std::time::Duration;

use dirgl_comm::FaultPlan;
use dirgl_core::{RunConfig, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::weights::randomize_weights;
use dirgl_graph::{Csr, RmatConfig};
use dirgl_partition::Policy;
use dirgl_serve::{
    JobError, JobHandle, JobRequest, JobServer, JobSpec, ServeConfig, ServerStats, SubmitError,
};

const DEVICES: u32 = 4;

/// Fault-decision seed; CI sweeps a small fixed matrix via
/// `DIRGL_FAULT_SEED`, local runs default to 7.
fn fault_seed() -> u64 {
    std::env::var("DIRGL_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn rmat() -> Csr {
    randomize_weights(&RmatConfig::new(9, 8).seed(21).generate(), 100, 5)
}

/// `k` distinct sources spread across the vertex range.
fn sources(g: &Csr, k: u32) -> Vec<u32> {
    let n = g.num_vertices();
    (0..k).map(|i| (i * n) / k).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn reconciles(s: &ServerStats) {
    assert_eq!(
        s.submitted,
        s.accepted + s.rejected_saturated + s.rejected_invalid,
        "submission counters must reconcile: {s:?}"
    );
    assert_eq!(
        s.accepted,
        s.completed + s.cache_hits + s.failed + s.expired + s.rejected_gov + s.shut_down,
        "terminal counters must reconcile: {s:?}"
    );
}

fn clean_config() -> RunConfig {
    RunConfig::new(Policy::Cvc, Variant::var3())
}

/// The full link + device chaos plan: lossy, duplicating, delaying links,
/// a crash of device 1 at round 2, and a 4× straggler window on device 2.
fn storm(rejoin: bool) -> FaultPlan {
    FaultPlan::seeded(fault_seed())
        .with_drop(0.05)
        .with_duplicate(0.02)
        .with_delay(0.01, 0.005)
        .with_crash(1, 2, rejoin)
        .with_straggler(2, 1, 3, 4.0)
}

/// The mixed stream both servers run: multi-source traversals, four
/// coalescible singletons, the undirected kinds and pagerank.
fn stream(g: &Csr) -> Vec<JobSpec> {
    let mut jobs = vec![
        JobSpec::Bfs {
            sources: sources(g, 8),
        },
        JobSpec::Sssp {
            sources: sources(g, 8),
        },
        JobSpec::Cc,
        JobSpec::KCore { k: 2 },
        JobSpec::Pagerank,
    ];
    for s in sources(g, 4) {
        jobs.push(JobSpec::bfs(s + 1)); // offset: distinct from lane 0 above
    }
    jobs
}

fn submit_all(srv: &JobServer, jobs: &[JobSpec]) -> Vec<JobHandle> {
    jobs.iter()
        .map(|j| srv.submit_spec(j.clone()).expect("stream fits the queue"))
        .collect()
}

/// Link drops + duplicates + delays + a crash (both recovery modes) + a
/// straggler, against the full concurrent stream: every completed job's
/// values must be bit-identical to the fault-free server's (pagerank
/// within tolerance), and the engine-level recovery must be visible in
/// the per-job resilience records.
#[test]
fn mixed_stream_under_link_and_device_chaos_is_exact() {
    let g = rmat();
    let jobs = stream(&g);

    let clean = JobServer::load(
        &g,
        Platform::bridges(DEVICES),
        clean_config(),
        ServeConfig::default(),
    )
    .unwrap();
    let want: Vec<_> = submit_all(&clean, &jobs)
        .iter()
        .map(|h| h.wait().unwrap())
        .collect();

    for rejoin in [true, false] {
        let chaotic = JobServer::load(
            &g,
            Platform::bridges(DEVICES),
            clean_config()
                .with_faults(storm(rejoin))
                .with_checkpoints(2),
            ServeConfig::default(),
        )
        .unwrap();
        let got: Vec<_> = submit_all(&chaotic, &jobs)
            .iter()
            .map(|h| h.wait().unwrap())
            .collect();

        let mut crashes = 0u32;
        let mut retransmits = 0u64;
        for ((spec, w), r) in jobs.iter().zip(&want).zip(&got) {
            assert_eq!(w.outcome.per_source.len(), r.outcome.per_source.len());
            crashes += r.resilience.engine.crashes;
            retransmits += r.resilience.engine.faults.retransmits;
            for (lane, (wv, rv)) in w
                .outcome
                .per_source
                .iter()
                .zip(&r.outcome.per_source)
                .enumerate()
            {
                if matches!(spec, JobSpec::Pagerank) {
                    let worst = wv
                        .iter()
                        .zip(rv.iter())
                        .map(|(a, b)| (a - b).abs() / a.max(0.15))
                        .fold(0.0f64, f64::max);
                    assert!(
                        worst < 0.02,
                        "pagerank/{rejoin}: worst relative error {worst}"
                    );
                } else {
                    assert_eq!(
                        bits(wv),
                        bits(rv),
                        "{}/lane {lane}/rejoin={rejoin}: chaos changed the answer",
                        spec.name()
                    );
                }
            }
        }
        assert!(
            crashes > 0,
            "rejoin={rejoin}: the crash never fired across the stream"
        );
        assert!(
            retransmits > 0,
            "rejoin={rejoin}: the lossy links never forced a retransmission"
        );
        let stats = chaotic.stats();
        assert_eq!(stats.failed, 0, "no job may die under the storm: {stats:?}");
        reconciles(&stats);
        chaotic.shutdown();
    }
    reconciles(&clean.stats());
}

/// Memory pressure (tightened device capacities) on top of lossy links:
/// wide batches degrade down the lane-width ladder, still answering
/// bit-identically to the unconstrained fault-free run.
#[test]
fn memory_pressure_degrades_but_answers_do_not_change() {
    let g = rmat();
    let spec = JobSpec::Sssp {
        sources: sources(&g, 16),
    };

    let clean = JobServer::load(
        &g,
        Platform::bridges(DEVICES),
        clean_config(),
        ServeConfig::default(),
    )
    .unwrap();
    let want = clean.submit_spec(spec.clone()).unwrap().wait().unwrap();
    let f16 = *clean.predict_footprint(&spec, 16).iter().max().unwrap();
    let f4 = *clean.predict_footprint(&spec, 4).iter().max().unwrap();
    assert!(f4 < f16);

    let mut platform = Platform::bridges(DEVICES);
    for gpu in &mut platform.gpus {
        gpu.memory_bytes = (f4 + f16) / 2; // width 16 cannot fit; 4 can
    }
    let pressured = JobServer::load(
        &g,
        platform,
        clean_config().with_faults(FaultPlan::seeded(fault_seed()).with_drop(0.02)),
        ServeConfig::default(),
    )
    .unwrap();
    let r = pressured.submit_spec(spec).unwrap().wait().unwrap();
    assert!(r.resilience.degraded, "pressure must narrow the batch");
    assert!(r.resilience.granted_width < 16);
    for (lane, (wv, rv)) in want
        .outcome
        .per_source
        .iter()
        .zip(&r.outcome.per_source)
        .enumerate()
    {
        assert_eq!(
            bits(wv),
            bits(rv),
            "lane {lane}: degradation changed values"
        );
    }
    let stats = pressured.stats();
    assert!(stats.degraded >= 1);
    assert_eq!(stats.failed, 0);
    reconciles(&stats);
}

/// Deadline churn: stale work expires (exactly once each), fresh work
/// completes, and nothing leaks from the ledger.
#[test]
fn deadline_churn_expires_stale_work_only() {
    let g = rmat();
    let srv = JobServer::load(
        &g,
        Platform::bridges(DEVICES),
        clean_config().with_faults(FaultPlan::seeded(fault_seed()).with_drop(0.05)),
        ServeConfig {
            workers: 1,
            start_paused: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Three stale jobs: queued with a deadline that passes while paused.
    let stale: Vec<_> = [JobSpec::Cc, JobSpec::KCore { k: 2 }, JobSpec::Pagerank]
        .into_iter()
        .map(|spec| {
            srv.submit(JobRequest::new(spec).deadline(Duration::from_millis(1)))
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    // Three fresh singletons (they may coalesce into one launch).
    let fresh = submit_all(
        &srv,
        &sources(&g, 3)
            .into_iter()
            .map(JobSpec::bfs)
            .collect::<Vec<_>>(),
    );

    srv.resume();
    for h in &stale {
        assert_eq!(h.wait().unwrap_err(), JobError::DeadlineExpired);
    }
    for h in &fresh {
        assert!(h.wait().is_ok(), "fresh work must survive the churn");
    }
    srv.drain();
    let stats = srv.stats();
    assert_eq!(stats.expired, 3, "each stale job expires exactly once");
    assert_eq!(stats.completed, 3);
    reconciles(&stats);
}

/// Queue saturation under chaos: the bounded queue sheds the burst with
/// `Saturated` refusals, everything accepted completes, and the books
/// balance.
#[test]
fn saturation_sheds_the_burst_and_reconciles() {
    let g = rmat();
    let srv = JobServer::load(
        &g,
        Platform::bridges(DEVICES),
        clean_config().with_faults(FaultPlan::seeded(fault_seed()).with_drop(0.05)),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 0,
            start_paused: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Six distinct non-coalescible jobs against a 2-slot queue.
    let burst: Vec<JobSpec> = (1..=6).map(|k| JobSpec::KCore { k }).collect();
    let mut handles = Vec::new();
    let mut refused = 0;
    for spec in burst {
        match srv.submit_spec(spec) {
            Ok(h) => handles.push(h),
            Err(SubmitError::Saturated { queued, capacity }) => {
                assert_eq!(capacity, 2);
                assert_eq!(queued, 2);
                refused += 1;
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert_eq!(refused, 4, "a 2-slot queue takes 2 of 6 while paused");

    srv.resume();
    for h in &handles {
        assert!(h.wait().is_ok());
    }
    srv.drain();
    let stats = srv.stats();
    assert_eq!(stats.rejected_saturated, 4);
    assert_eq!(stats.completed, 2);
    reconciles(&stats);
}

/// Shutdown mid-storm: queued jobs fail with `ShutDown`, the counters
/// record them, and the books still balance.
#[test]
fn shutdown_under_chaos_keeps_the_books() {
    let g = rmat();
    let srv = JobServer::load(
        &g,
        Platform::bridges(DEVICES),
        clean_config().with_faults(storm(true)).with_checkpoints(2),
        ServeConfig {
            workers: 1,
            start_paused: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handles = submit_all(
        &srv,
        &[JobSpec::Cc, JobSpec::Pagerank, JobSpec::KCore { k: 2 }],
    );
    let stats_before = srv.stats();
    assert_eq!(stats_before.accepted, 3);
    srv.shutdown();
    for h in &handles {
        assert_eq!(h.wait().unwrap_err(), JobError::ShutDown);
    }
    // The server is gone; its final books were balanced when it left.
    assert_eq!(stats_before.submitted, 3);
}
