//! End-to-end contracts of the resident job-server.
//!
//! The load-bearing one: any number of concurrent jobs against one
//! resident prepared partition produce **byte-identical** values to the
//! serial one-shot `runner(...).execute()` path, on both the synchronous
//! (Var1/BSP) and asynchronous (Var4/BASP) engines — including when the
//! server coalesces queued single-source traversals into one K-lane
//! batched launch. Plus the service semantics: cache hits return the cold
//! run's exact bytes, admission control canonicalizes and rejects with a
//! reason, deadlines expire, priorities order the queue, and epoch bumps
//! invalidate cached results.

use std::sync::Arc;
use std::time::Duration;

use dirgl_apps::{betweenness_centrality, Bfs, Cc, PageRank, Sssp};
use dirgl_core::{ExecutionReport, RunConfig, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::Csr;
use dirgl_partition::Policy;
use dirgl_serve::{JobError, JobRequest, JobServer, JobSpec, Priority, ServeConfig, SubmitError};

fn graph() -> Csr {
    dirgl_graph::RmatConfig::new(8, 6).seed(13).generate()
}

fn config(variant: Variant) -> RunConfig {
    RunConfig::new(Policy::Cvc, variant)
}

fn server(variant: Variant, serve: ServeConfig) -> JobServer {
    JobServer::load(&graph(), Platform::bridges(4), config(variant), serve).unwrap()
}

fn fingerprint(report: &ExecutionReport, values: &[f64]) -> (String, Vec<u64>) {
    (
        format!("{report:?}"),
        values.iter().map(|v| v.to_bits()).collect(),
    )
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// The acceptance matrix: 16 concurrent mixed jobs (bfs from 4 sources ×2
/// submissions, sssp from 2 sources ×2, pagerank ×2, cc ×2) against one
/// resident partition, each value-identical to its serial one-shot
/// equivalent — on both engines. (Traversal jobs may coalesce into a
/// K-lane launch depending on queue timing, which changes their *report*
/// but never their values; the parameterless kinds never coalesce, so
/// their reports stay byte-identical too.)
#[test]
fn sixteen_concurrent_jobs_match_serial_one_shots_on_both_engines() {
    let g = graph();
    let sources: Vec<u32> = {
        let n = g.num_vertices();
        (0..4)
            .map(|k| (g.max_out_degree_vertex() + k * (n / 5 + 1)) % n)
            .collect()
    };

    for variant in [Variant::var1(), Variant::var4()] {
        // Serial one-shot fingerprints, computed the pre-server way (fresh
        // partition per call).
        let rt = Runtime::new(Platform::bridges(4), config(variant));
        let serial: Vec<(JobSpec, (String, Vec<u64>))> = {
            let mut v = Vec::new();
            for &s in &sources {
                let out = rt.runner(&g, &Bfs::new(s)).execute().unwrap();
                v.push((JobSpec::bfs(s), fingerprint(&out.report, &out.values)));
            }
            for &s in &sources[..2] {
                let out = rt.runner(&g, &Sssp::new(s)).execute().unwrap();
                v.push((JobSpec::sssp(s), fingerprint(&out.report, &out.values)));
            }
            let out = rt.runner(&g, &PageRank::new()).execute().unwrap();
            v.push((JobSpec::Pagerank, fingerprint(&out.report, &out.values)));
            let out = rt.runner(&g, &Cc).execute().unwrap();
            v.push((JobSpec::Cc, fingerprint(&out.report, &out.values)));
            v
        };

        // 16 jobs: the 8 distinct specs, each submitted twice, all in
        // flight at once on a 4-executor server.
        let srv = server(variant, ServeConfig::default());
        let jobs: Vec<JobSpec> = serial
            .iter()
            .chain(serial.iter())
            .map(|(spec, _)| spec.clone())
            .collect();
        assert_eq!(jobs.len(), 16);
        let results: Vec<_> = std::thread::scope(|sc| {
            let srv = &srv;
            let handles: Vec<_> = jobs
                .iter()
                .map(|spec| {
                    let spec = spec.clone();
                    sc.spawn(move || srv.submit_spec(spec).unwrap().wait().unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (spec, result) in jobs.iter().zip(&results) {
            let (want_report, want_bits) = &serial.iter().find(|(s, _)| s == spec).unwrap().1;
            assert_eq!(
                &bits(result.outcome.values()),
                want_bits,
                "{} served on {} diverged from its serial one-shot",
                spec.name(),
                variant.label()
            );
            if spec.sources().is_none() {
                assert_eq!(
                    &format!("{:?}", result.outcome.report()),
                    want_report,
                    "{} on {}: non-coalescible reports must stay byte-identical",
                    spec.name(),
                    variant.label()
                );
            }
        }

        // Every duplicate was coalesced, served through the cache, or
        // executed — all are correct; the counters must account for all.
        let stats = srv.stats();
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.accepted, 16);
        assert_eq!(stats.cache_hits + stats.completed, 16);
        assert!(stats.completed >= 8, "8 distinct specs must execute");
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected_saturated + stats.rejected_invalid, 0);
    }
}

/// The coalescing window end to end: 16 queued single-source bfs jobs
/// merge into ONE 16-lane engine launch whose per-job values are
/// byte-identical to 16 serial one-shots, and the per-source cache fill
/// makes every later singleton resubmission hit.
#[test]
fn coalesced_sixteen_job_batch_matches_serial_and_fills_cache_per_source() {
    let g = graph();
    let n = g.num_vertices();
    let sources: Vec<u32> = (0..16)
        .map(|k| (g.max_out_degree_vertex() + k * (n / 17 + 1)) % n)
        .collect();

    // Serial scalar one-shots (fresh partition per call) are the oracle.
    let rt = Runtime::new(Platform::bridges(4), config(Variant::var4()));
    let serial: Vec<Vec<u64>> = sources
        .iter()
        .map(|&s| bits(&rt.runner(&g, &Bfs::new(s)).execute().unwrap().values))
        .collect();

    // One paused worker: all 16 land in the queue, then resume opens a
    // single coalescing window over the whole batch.
    let srv = server(
        Variant::var4(),
        ServeConfig {
            workers: 1,
            queue_capacity: 32,
            cache_capacity: 64,
            start_paused: true,
            ..ServeConfig::default()
        },
    );
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| srv.submit_spec(JobSpec::bfs(s)).unwrap())
        .collect();
    srv.resume();
    let results: Vec<_> = handles.iter().map(|h| h.wait().unwrap()).collect();
    srv.drain();

    let first_report = format!("{:?}", results[0].outcome.report());
    for ((r, want), &s) in results.iter().zip(&serial).zip(&sources) {
        assert!(!r.from_cache);
        assert_eq!(
            &bits(r.outcome.values()),
            want,
            "source {s}: coalesced lane diverged from its serial one-shot"
        );
        assert_eq!(
            format!("{:?}", r.outcome.report()),
            first_report,
            "source {s}: every lane shares the one batched engine report"
        );
    }

    let stats = srv.stats();
    assert_eq!(stats.coalesced, 16, "all 16 jobs rode one batched launch");
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.cache_misses, 16);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_entries, 16, "one entry per source");

    // Later singletons hit the per-source fills — same Arc, no execution.
    for (h, &s) in results.iter().zip(&sources) {
        let hit = srv.submit_spec(JobSpec::bfs(s)).unwrap().wait().unwrap();
        assert!(hit.from_cache, "source {s} must be served from the cache");
        assert!(
            Arc::ptr_eq(&h.outcome, &hit.outcome),
            "source {s}: hit must share the batch's allocation"
        );
    }
    assert_eq!(srv.stats().cache_hits, 16);
    assert_eq!(srv.stats().completed, 16, "no further executions");
}

/// A multi-source spec submitted directly: admission canonicalizes
/// (sorts + dedups) the source set, the outcome carries one value vector
/// per source matching the serial scalar runs, and a permuted
/// resubmission is the same cache key.
#[test]
fn multi_source_spec_canonicalizes_and_matches_scalar_runs() {
    let g = graph();
    let n = g.num_vertices();
    let s: Vec<u32> = (0..3)
        .map(|k| (g.max_out_degree_vertex() + k * (n / 4 + 1)) % n)
        .collect();
    let rt = Runtime::new(Platform::bridges(4), config(Variant::var1()));

    let srv = server(Variant::var1(), ServeConfig::default());
    let spec = JobSpec::Sssp {
        sources: vec![s[2], s[0], s[1], s[0]], // unsorted, with a duplicate
    };
    let r = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert_eq!(r.outcome.per_source.len(), 3, "duplicates collapse");
    let mut canon = s.clone();
    canon.sort_unstable();
    for (vals, &src) in r.outcome.per_source.iter().zip(&canon) {
        let want = rt.runner(&g, &Sssp::new(src)).execute().unwrap().values;
        assert_eq!(
            bits(vals),
            bits(&want),
            "source {src}: lane diverged from its scalar run"
        );
    }
    srv.drain();

    // Already-sorted resubmission is the same canonical key: cache hit.
    let hit = srv
        .submit_spec(JobSpec::Sssp {
            sources: canon.clone(),
        })
        .unwrap()
        .wait()
        .unwrap();
    assert!(hit.from_cache);
    assert!(Arc::ptr_eq(&r.outcome, &hit.outcome));
}

/// bc (two-phase, forward + transpose backward) served from the resident
/// views matches the one-shot driver bit for bit.
#[test]
fn served_bc_matches_one_shot_driver() {
    let g = graph();
    let src = g.max_out_degree_vertex();
    let rt = Runtime::new(Platform::bridges(4), config(Variant::var4()));
    let want = betweenness_centrality(&rt, &g, src).unwrap();

    let srv = server(Variant::var4(), ServeConfig::default());
    let r = srv.submit_spec(JobSpec::bc(src)).unwrap().wait().unwrap();
    assert_eq!(
        r.outcome.reports.len(),
        2,
        "bc has forward + backward phases"
    );
    assert_eq!(
        fingerprint(&r.outcome.reports[0], r.outcome.values()),
        fingerprint(&want.forward, &want.scores)
    );
    assert_eq!(
        format!("{:?}", r.outcome.reports[1]),
        format!("{:?}", want.backward)
    );
}

/// A cache hit returns the very bytes of the cold run (the same `Arc`,
/// even) and the hit/miss counters track it.
#[test]
fn cache_hit_is_bit_identical_to_the_cold_run() {
    let srv = server(Variant::var4(), ServeConfig::default());
    let spec = JobSpec::bfs(3);

    let cold = srv.submit_spec(spec.clone()).unwrap().wait().unwrap();
    assert!(!cold.from_cache);
    srv.drain();

    let hit = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert!(hit.from_cache);
    assert!(
        Arc::ptr_eq(&cold.outcome, &hit.outcome),
        "hit must share the cold run's allocation"
    );
    assert_eq!(
        fingerprint(cold.outcome.report(), cold.outcome.values()),
        fingerprint(hit.outcome.report(), hit.outcome.values())
    );

    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_entries, 1);
}

/// A saturated queue refuses with the observed occupancy; accepted work
/// still completes after resume.
#[test]
fn saturation_rejects_with_reason() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 16,
            start_paused: true,
            ..ServeConfig::default()
        },
    );
    let h1 = srv.submit_spec(JobSpec::bfs(1)).unwrap();
    let h2 = srv.submit_spec(JobSpec::bfs(2)).unwrap();
    let refused = srv.submit_spec(JobSpec::bfs(3));
    assert_eq!(
        refused.unwrap_err(),
        SubmitError::Saturated {
            queued: 2,
            capacity: 2
        }
    );

    let stats = srv.stats();
    assert_eq!(stats.rejected_saturated, 1);
    assert_eq!(stats.queued, 2);

    srv.resume();
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());
    assert_eq!(srv.stats().completed, 2);
}

/// An out-of-range source is refused at the door — naming the offending
/// id even when it hides inside a multi-source set — because the resident
/// server must never crash (or queue useless work) for a degenerate job.
#[test]
fn invalid_source_is_refused_at_admission() {
    let srv = server(Variant::var1(), ServeConfig::default());
    let n = srv.directed_view().num_vertices();
    let refused = srv.submit_spec(JobSpec::sssp(n + 7));
    assert_eq!(
        refused.unwrap_err(),
        SubmitError::InvalidSource {
            source: n + 7,
            num_vertices: n
        }
    );
    // In a batch, the error names the offending id, not the whole set.
    let refused = srv.submit_spec(JobSpec::Bfs {
        sources: vec![0, n + 3, 1],
    });
    assert_eq!(
        refused.unwrap_err(),
        SubmitError::InvalidSource {
            source: n + 3,
            num_vertices: n
        }
    );
    let refused = srv.submit_spec(JobSpec::Bfs {
        sources: Vec::new(),
    });
    assert_eq!(refused.unwrap_err(), SubmitError::EmptySources);
    assert_eq!(srv.stats().rejected_invalid, 3);
    assert_eq!(srv.stats().accepted, 0);
}

/// A job whose deadline passes while queued completes with
/// `DeadlineExpired` instead of executing.
#[test]
fn deadline_expires_while_queued() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
            start_paused: true,
            ..ServeConfig::default()
        },
    );
    let h = srv
        .submit(JobRequest::new(JobSpec::bfs(1)).deadline(Duration::from_millis(1)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    srv.resume();
    assert_eq!(h.wait().unwrap_err(), JobError::DeadlineExpired);
    let stats = srv.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 0);
}

/// With one executor, a high-priority job submitted after a low-priority
/// one still runs first (observed through completion: when the low job
/// finishes, the high one is already done). Different kinds, so the
/// coalescing window cannot merge them into one launch.
#[test]
fn high_priority_overtakes_low_in_the_queue() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0, // no cache: both jobs must truly execute
            start_paused: true,
            ..ServeConfig::default()
        },
    );
    let low = srv
        .submit(JobRequest::new(JobSpec::sssp(1)).priority(Priority::Low))
        .unwrap();
    let high = srv
        .submit(JobRequest::new(JobSpec::bfs(2)).priority(Priority::High))
        .unwrap();
    srv.resume();
    low.wait().unwrap();
    assert!(
        high.is_done(),
        "single executor finished the low job before the high one"
    );
}

/// Bumping the graph epoch invalidates cached results: the same spec
/// re-executes and lands under the new epoch.
#[test]
fn epoch_bump_invalidates_cached_results() {
    let srv = server(Variant::var4(), ServeConfig::default());
    let spec = JobSpec::Pagerank;
    let first = srv.submit_spec(spec.clone()).unwrap().wait().unwrap();
    assert_eq!(first.epoch, 0);
    srv.drain();

    assert_eq!(srv.bump_epoch(), 1);
    let stats = srv.stats();
    assert_eq!(stats.invalidated, 1);
    assert_eq!(stats.cache_entries, 0);

    let second = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert!(!second.from_cache, "old-epoch result must not be served");
    assert_eq!(second.epoch, 1);
    assert_eq!(srv.stats().cache_misses, 2);
}

/// Shutdown fails queued-but-unstarted jobs with `ShutDown` rather than
/// leaving their waiters hanging.
#[test]
fn shutdown_fails_queued_jobs() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
            start_paused: true,
            ..ServeConfig::default()
        },
    );
    let h = srv.submit_spec(JobSpec::Cc).unwrap();
    drop(srv); // shutdown path
    assert_eq!(h.wait().unwrap_err(), JobError::ShutDown);
}
