//! End-to-end contracts of the resident job-server.
//!
//! The load-bearing one: any number of concurrent jobs against one
//! resident prepared partition produce **byte-identical** reports and
//! values to the serial one-shot `runner(...).execute()` path, on both
//! the synchronous (Var1/BSP) and asynchronous (Var4/BASP) engines. Plus
//! the service semantics: cache hits return the cold run's exact bytes,
//! admission control rejects with a reason, deadlines expire, priorities
//! order the queue, and epoch bumps invalidate cached results.

use std::sync::Arc;
use std::time::Duration;

use dirgl_apps::{betweenness_centrality, Bfs, Cc, PageRank, Sssp};
use dirgl_core::{ExecutionReport, RunConfig, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::Csr;
use dirgl_partition::Policy;
use dirgl_serve::{JobError, JobRequest, JobServer, JobSpec, Priority, ServeConfig, SubmitError};

fn graph() -> Csr {
    dirgl_graph::RmatConfig::new(8, 6).seed(13).generate()
}

fn config(variant: Variant) -> RunConfig {
    RunConfig::new(Policy::Cvc, variant)
}

fn server(variant: Variant, serve: ServeConfig) -> JobServer {
    JobServer::load(&graph(), Platform::bridges(4), config(variant), serve).unwrap()
}

fn fingerprint(report: &ExecutionReport, values: &[f64]) -> (String, Vec<u64>) {
    (
        format!("{report:?}"),
        values.iter().map(|v| v.to_bits()).collect(),
    )
}

/// The acceptance matrix: 16 concurrent mixed jobs (bfs from 4 sources ×2
/// submissions, sssp from 2 sources ×2, pagerank ×2, cc ×2) against one
/// resident partition, each byte-identical to its serial one-shot
/// equivalent — on both engines.
#[test]
fn sixteen_concurrent_jobs_match_serial_one_shots_on_both_engines() {
    let g = graph();
    let sources: Vec<u32> = {
        let n = g.num_vertices();
        (0..4)
            .map(|k| (g.max_out_degree_vertex() + k * (n / 5 + 1)) % n)
            .collect()
    };

    for variant in [Variant::var1(), Variant::var4()] {
        // Serial one-shot fingerprints, computed the pre-server way (fresh
        // partition per call).
        let rt = Runtime::new(Platform::bridges(4), config(variant));
        let serial: Vec<(JobSpec, (String, Vec<u64>))> = {
            let mut v = Vec::new();
            for &s in &sources {
                let out = rt.runner(&g, &Bfs::new(s)).execute().unwrap();
                v.push((
                    JobSpec::Bfs { source: s },
                    fingerprint(&out.report, &out.values),
                ));
            }
            for &s in &sources[..2] {
                let out = rt.runner(&g, &Sssp::new(s)).execute().unwrap();
                v.push((
                    JobSpec::Sssp { source: s },
                    fingerprint(&out.report, &out.values),
                ));
            }
            let out = rt.runner(&g, &PageRank::new()).execute().unwrap();
            v.push((JobSpec::Pagerank, fingerprint(&out.report, &out.values)));
            let out = rt.runner(&g, &Cc).execute().unwrap();
            v.push((JobSpec::Cc, fingerprint(&out.report, &out.values)));
            v
        };

        // 16 jobs: the 8 distinct specs, each submitted twice, all in
        // flight at once on a 4-executor server.
        let srv = server(variant, ServeConfig::default());
        let jobs: Vec<JobSpec> = serial
            .iter()
            .chain(serial.iter())
            .map(|(spec, _)| *spec)
            .collect();
        assert_eq!(jobs.len(), 16);
        let results: Vec<_> = std::thread::scope(|sc| {
            let srv = &srv;
            let handles: Vec<_> = jobs
                .iter()
                .map(|&spec| sc.spawn(move || srv.submit_spec(spec).unwrap().wait().unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (spec, result) in jobs.iter().zip(&results) {
            let want = &serial.iter().find(|(s, _)| s == spec).unwrap().1;
            let got = fingerprint(result.outcome.report(), &result.outcome.values);
            assert_eq!(
                &got,
                want,
                "{} served on {} diverged from its serial one-shot",
                spec.name(),
                variant.label()
            );
        }

        // Every duplicate was either coalesced through the cache or
        // executed — both are correct; the counters must account for all.
        let stats = srv.stats();
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.accepted, 16);
        assert_eq!(stats.cache_hits + stats.completed, 16);
        assert!(stats.completed >= 8, "8 distinct specs must execute");
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected_saturated + stats.rejected_invalid, 0);
    }
}

/// bc (two-phase, forward + transpose backward) served from the resident
/// views matches the one-shot driver bit for bit.
#[test]
fn served_bc_matches_one_shot_driver() {
    let g = graph();
    let src = g.max_out_degree_vertex();
    let rt = Runtime::new(Platform::bridges(4), config(Variant::var4()));
    let want = betweenness_centrality(&rt, &g, src).unwrap();

    let srv = server(Variant::var4(), ServeConfig::default());
    let r = srv
        .submit_spec(JobSpec::Bc { source: src })
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        r.outcome.reports.len(),
        2,
        "bc has forward + backward phases"
    );
    assert_eq!(
        fingerprint(&r.outcome.reports[0], &r.outcome.values),
        fingerprint(&want.forward, &want.scores)
    );
    assert_eq!(
        format!("{:?}", r.outcome.reports[1]),
        format!("{:?}", want.backward)
    );
}

/// A cache hit returns the very bytes of the cold run (the same `Arc`,
/// even) and the hit/miss counters track it.
#[test]
fn cache_hit_is_bit_identical_to_the_cold_run() {
    let srv = server(Variant::var4(), ServeConfig::default());
    let spec = JobSpec::Bfs { source: 3 };

    let cold = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert!(!cold.from_cache);
    srv.drain();

    let hit = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert!(hit.from_cache);
    assert!(
        Arc::ptr_eq(&cold.outcome, &hit.outcome),
        "hit must share the cold run's allocation"
    );
    assert_eq!(
        fingerprint(cold.outcome.report(), &cold.outcome.values),
        fingerprint(hit.outcome.report(), &hit.outcome.values)
    );

    let stats = srv.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_entries, 1);
}

/// A saturated queue refuses with the observed occupancy; accepted work
/// still completes after resume.
#[test]
fn saturation_rejects_with_reason() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 16,
            start_paused: true,
        },
    );
    let h1 = srv.submit_spec(JobSpec::Bfs { source: 1 }).unwrap();
    let h2 = srv.submit_spec(JobSpec::Bfs { source: 2 }).unwrap();
    let refused = srv.submit_spec(JobSpec::Bfs { source: 3 });
    assert_eq!(
        refused.unwrap_err(),
        SubmitError::Saturated {
            queued: 2,
            capacity: 2
        }
    );

    let stats = srv.stats();
    assert_eq!(stats.rejected_saturated, 1);
    assert_eq!(stats.queued, 2);

    srv.resume();
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());
    assert_eq!(srv.stats().completed, 2);
}

/// An out-of-range source is refused at the door — the resident server
/// must never crash (or queue useless work) for a degenerate job.
#[test]
fn invalid_source_is_refused_at_admission() {
    let srv = server(Variant::var1(), ServeConfig::default());
    let n = srv.directed_view().num_vertices();
    let refused = srv.submit_spec(JobSpec::Sssp { source: n + 7 });
    assert_eq!(
        refused.unwrap_err(),
        SubmitError::InvalidSource {
            source: n + 7,
            num_vertices: n
        }
    );
    assert_eq!(srv.stats().rejected_invalid, 1);
    assert_eq!(srv.stats().accepted, 0);
}

/// A job whose deadline passes while queued completes with
/// `DeadlineExpired` instead of executing.
#[test]
fn deadline_expires_while_queued() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
            start_paused: true,
        },
    );
    let h = srv
        .submit(JobRequest::new(JobSpec::Bfs { source: 1 }).deadline(Duration::from_millis(1)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    srv.resume();
    assert_eq!(h.wait().unwrap_err(), JobError::DeadlineExpired);
    let stats = srv.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 0);
}

/// With one executor, a high-priority job submitted after a low-priority
/// one still runs first (observed through completion: when the low job
/// finishes, the high one is already done).
#[test]
fn high_priority_overtakes_low_in_the_queue() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0, // no cache: both jobs must truly execute
            start_paused: true,
        },
    );
    let low = srv
        .submit(JobRequest::new(JobSpec::Bfs { source: 1 }).priority(Priority::Low))
        .unwrap();
    let high = srv
        .submit(JobRequest::new(JobSpec::Bfs { source: 2 }).priority(Priority::High))
        .unwrap();
    srv.resume();
    low.wait().unwrap();
    assert!(
        high.is_done(),
        "single executor finished the low job before the high one"
    );
}

/// Bumping the graph epoch invalidates cached results: the same spec
/// re-executes and lands under the new epoch.
#[test]
fn epoch_bump_invalidates_cached_results() {
    let srv = server(Variant::var4(), ServeConfig::default());
    let spec = JobSpec::Pagerank;
    let first = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert_eq!(first.epoch, 0);
    srv.drain();

    assert_eq!(srv.bump_epoch(), 1);
    let stats = srv.stats();
    assert_eq!(stats.invalidated, 1);
    assert_eq!(stats.cache_entries, 0);

    let second = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert!(!second.from_cache, "old-epoch result must not be served");
    assert_eq!(second.epoch, 1);
    assert_eq!(srv.stats().cache_misses, 2);
}

/// Shutdown fails queued-but-unstarted jobs with `ShutDown` rather than
/// leaving their waiters hanging.
#[test]
fn shutdown_fails_queued_jobs() {
    let srv = server(
        Variant::var1(),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
            start_paused: true,
        },
    );
    let h = srv.submit_spec(JobSpec::Cc).unwrap();
    drop(srv); // shutdown path
    assert_eq!(h.wait().unwrap_err(), JobError::ShutDown);
}
