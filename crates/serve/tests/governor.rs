//! The admission governor end to end: footprint prediction pinned to the
//! engine's memory charge across the policy × lane-width matrix (the
//! uk07/CVC/K=64 OOM of DESIGN §3.12 included), the degradation ladder
//! serving what used to be a missing data point, retry narrowing,
//! deadline enforcement mid-backoff, shedding, rejection, and the
//! operator status snapshot. Counters must reconcile after every story:
//! `accepted = completed + cache_hits + failed + expired + rejected_gov +
//! shut_down`.

use std::time::Duration;

use dirgl_core::{MultiSourceProgram, RunConfig, Runtime, Variant};
use dirgl_gpusim::{DeviceHealth, Platform};
use dirgl_graph::datasets::DatasetId;
use dirgl_graph::Csr;
use dirgl_partition::Policy;
use dirgl_serve::{
    JobError, JobRequest, JobServer, JobSpec, Priority, RejectReason, ServeConfig, ServerStats,
};

fn graph() -> Csr {
    dirgl_graph::RmatConfig::new(8, 6).seed(13).generate()
}

/// `k` distinct sources spread across the vertex range.
fn sources(g: &Csr, k: u32) -> Vec<u32> {
    let n = g.num_vertices();
    assert!(k <= n);
    (0..k).map(|i| (i * n) / k).collect()
}

fn reconciles(s: &ServerStats) {
    assert_eq!(
        s.submitted,
        s.accepted + s.rejected_saturated + s.rejected_invalid,
        "submission counters must reconcile: {s:?}"
    );
    assert_eq!(
        s.accepted,
        s.completed + s.cache_hits + s.failed + s.expired + s.rejected_gov + s.shut_down,
        "terminal counters must reconcile: {s:?}"
    );
}

/// A platform whose devices all have `bytes` of memory.
fn capped(devices: u32, bytes: u64) -> Platform {
    let mut p = Platform::bridges(devices);
    for g in &mut p.gpus {
        g.memory_bytes = bytes;
    }
    p
}

/// The governor's prediction must be the engine's actual charge — same
/// formula, same program, same partition — across every partition policy
/// and every rung of the lane-width ladder. Exact equality pins both "no
/// false admits" and "no over-estimation" at once.
#[test]
fn predicted_footprint_is_the_engine_charge_across_policy_and_width() {
    let g = graph();
    for policy in [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc] {
        let srv = JobServer::load(
            &g,
            Platform::bridges(4),
            RunConfig::new(policy, Variant::var1()),
            ServeConfig {
                cache_capacity: 0, // every submission must truly execute
                ..ServeConfig::default()
            },
        )
        .unwrap();
        for k in [1u32, 16, 64] {
            for spec in [
                JobSpec::Bfs {
                    sources: sources(&g, k),
                },
                JobSpec::Sssp {
                    sources: sources(&g, k),
                },
            ] {
                let predicted = srv.predict_footprint(&spec, k as usize);
                let r = srv.submit_spec(spec.clone()).unwrap().wait().unwrap();
                assert_eq!(
                    r.resilience.granted_width, k as usize,
                    "{policy:?}/K={k}: nothing should degrade on 16 GB devices"
                );
                assert_eq!(
                    r.outcome.report().memory_per_device,
                    predicted,
                    "{policy:?}/{}/K={k}: prediction must equal the measured peak",
                    spec.name()
                );
            }

            // bc runs two phases on two views; the prediction is the
            // elementwise max of the phase charges.
            let spec = JobSpec::Bc {
                sources: sources(&g, k),
            };
            let predicted = srv.predict_footprint(&spec, k as usize);
            let r = srv.submit_spec(spec).unwrap().wait().unwrap();
            let fwd = &r.outcome.reports[0].memory_per_device;
            let bwd = &r.outcome.reports[1].memory_per_device;
            let peak: Vec<u64> = fwd.iter().zip(bwd).map(|(&a, &b)| a.max(b)).collect();
            assert_eq!(
                peak, predicted,
                "{policy:?}/bc/K={k}: prediction must equal the larger phase's peak"
            );
        }
        // Parameterless kinds predict their scalar footprint.
        for spec in [JobSpec::Pagerank, JobSpec::Cc, JobSpec::KCore { k: 3 }] {
            let predicted = srv.predict_footprint(&spec, 1);
            let r = srv.submit_spec(spec.clone()).unwrap().wait().unwrap();
            assert_eq!(
                r.outcome.report().memory_per_device,
                predicted,
                "{policy:?}/{}: prediction must equal the measured peak",
                spec.name()
            );
        }
        reconciles(&srv.stats());
    }
}

/// DESIGN §3.12's missing data point, served: the uk07 analogue under
/// CVC replication OOMs at K = 64 on 4 devices. The governor must admit
/// the job anyway — degraded down the lane-width ladder until it fits —
/// and every lane's values must be bit-identical to its scalar run.
#[test]
fn uk07_cvc_k64_oom_is_served_degraded_and_bit_identical() {
    let ds = DatasetId::Uk07.load_scaled(8); // extra-small for test speed
    let g = &ds.graph;
    let config = RunConfig::new(Policy::Cvc, Variant::var1()).scale(ds.divisor);
    let srv = JobServer::load(
        g,
        Platform::bridges(4),
        config.clone(),
        ServeConfig::default(),
    )
    .unwrap();

    let srcs = sources(g, 64);
    let spec = JobSpec::Sssp {
        sources: srcs.clone(),
    };

    // The premise: at full width the predicted footprint exceeds device
    // capacity (this is the run that simply vanished from the paper's
    // figures), while the scalar rung fits.
    let full = srv.predict_footprint(&spec, 64);
    let cap = Platform::bridges(4).gpus[0].memory_bytes;
    assert!(
        full.iter().any(|&b| b > cap),
        "premise broken: K=64 sssp no longer OOMs the uk07 analogue \
         (predicted {full:?} vs capacity {cap})"
    );
    let scalar = srv.predict_footprint(&spec, 1);
    assert!(
        scalar.iter().all(|&b| b <= cap),
        "premise broken: even the scalar rung OOMs ({scalar:?})"
    );

    let r = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert!(r.resilience.degraded, "the job must degrade, not die");
    assert_eq!(r.resilience.requested_width, 64);
    assert!(
        r.resilience.granted_width < 64,
        "granted width must be a narrower rung"
    );
    assert_eq!(r.outcome.per_source.len(), 64);
    let stats = srv.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.degraded, 1);
    reconciles(&stats);

    // Spot-check lanes against scalar single-source runs on an equally
    // prepared partition: bit-identical, per the batching contract.
    let rt = Runtime::new(Platform::bridges(4), config);
    let prep = rt.prepare(g, false).unwrap();
    for &i in &[0usize, 31, 63] {
        let want = rt
            .job(&prep, &dirgl_apps::Sssp::new(srcs[i]))
            .execute()
            .unwrap();
        assert_eq!(
            r.outcome.per_source[i], want.values,
            "lane {i} (source {}) diverged from its scalar run",
            srcs[i]
        );
    }
}

/// The spill fallback: a capacity that raw admission refuses at the
/// requested width is served *at full width* when [`RunConfig::spill`]
/// holds the over-capacity devices compressed — no degradation — and the
/// governor's spill-aware oracle still equals the engine's measured
/// charge exactly. The same pressure without spill must not grant the
/// full width.
#[test]
fn spill_serves_full_width_where_raw_cannot() {
    // Denser than `graph()`: compression pays per *edge* while costing a
    // fixed 4 B per vertex over raw offsets, so the adjacency must carry
    // enough edges per vertex for the compressed footprint to win.
    let g = dirgl_graph::RmatConfig::new(10, 32).seed(13).generate();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    let srcs = sources(&g, 16);
    let spec = JobSpec::Sssp {
        sources: srcs.clone(),
    };

    // Probe both representations' footprints with the engine's own
    // oracles, on exactly the partition the server prepares.
    let rt = Runtime::new(Platform::bridges(4), config.clone());
    let prep = rt.prepare(&g, false).unwrap();
    let prog = dirgl_apps::Sssp::new(srcs[0]).batched(&srcs);
    let raw16 = *rt.footprint(&prep, &prog).iter().max().unwrap();
    let spilled16 = *rt.footprint_spilled(&prep, &prog).iter().max().unwrap();
    assert!(
        spilled16 < raw16,
        "premise broken: compression saved nothing ({spilled16} !< {raw16})"
    );
    let cap = spilled16 + (raw16 - spilled16) / 2;

    // Without spill, this capacity cannot grant the full 16 lanes: the
    // job either degrades to a narrower rung or is rejected outright.
    let raw_srv = JobServer::load(
        &g,
        capped(4, cap),
        config.clone(),
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    match raw_srv.submit_spec(spec.clone()).unwrap().wait() {
        Ok(r) => assert!(
            r.resilience.granted_width < 16,
            "premise broken: raw fits at full width under cap {cap}"
        ),
        Err(JobError::Rejected(RejectReason::MemoryExceeded { .. })) => {}
        Err(other) => panic!("unexpected failure: {other:?}"),
    }
    reconciles(&raw_srv.stats());

    // With spill, the same capacity serves the full width, and the
    // prediction is the engine's exact (compressed) memory charge.
    let srv = JobServer::load(
        &g,
        capped(4, cap),
        config.with_spill(true),
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let predicted = srv.predict_footprint(&spec, 16);
    assert!(predicted.iter().all(|&b| b <= cap), "oracle over cap");
    let r = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert_eq!(r.resilience.granted_width, 16, "spill must avoid degrading");
    assert!(!r.resilience.degraded);
    assert_eq!(
        r.outcome.report().memory_per_device,
        predicted,
        "spill-aware prediction must equal the measured peak"
    );
    let stats = srv.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.degraded, 0);
    reconciles(&stats);
}

/// With the governor disabled the engine itself OOMs at the requested
/// width; the retry ladder must relaunch with halved widths (backing
/// off) until the run fits, and report the attempts.
#[test]
fn retry_narrows_width_after_engine_oom() {
    let g = graph();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    // Probe footprints on an uncapped server, then pick a capacity that
    // rejects width 16 but fits width 8.
    let probe = JobServer::load(
        &g,
        Platform::bridges(4),
        config.clone(),
        ServeConfig::default(),
    )
    .unwrap();
    let spec = JobSpec::Sssp {
        sources: sources(&g, 16),
    };
    let f16 = *probe.predict_footprint(&spec, 16).iter().max().unwrap();
    let f8 = *probe.predict_footprint(&spec, 8).iter().max().unwrap();
    assert!(f8 < f16);
    drop(probe);

    let srv = JobServer::load(
        &g,
        capped(4, (f8 + f16) / 2),
        config,
        ServeConfig {
            governor: false,
            retry_backoff: Duration::from_micros(100),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let r = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert_eq!(r.resilience.attempts, 2, "one OOM launch, one retry");
    assert_eq!(r.resilience.granted_width, 8);
    assert!(r.resilience.degraded);
    assert_eq!(r.outcome.per_source.len(), 16);
    let stats = srv.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.failed, 0);
    reconciles(&stats);
}

/// The same pressure with the governor on never launches a doomed run:
/// the ladder is walked at admission, zero engine OOMs, zero retries.
#[test]
fn governor_degrades_without_burning_an_attempt() {
    let g = graph();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    let probe = JobServer::load(
        &g,
        Platform::bridges(4),
        config.clone(),
        ServeConfig::default(),
    )
    .unwrap();
    let spec = JobSpec::Sssp {
        sources: sources(&g, 16),
    };
    let f16 = *probe.predict_footprint(&spec, 16).iter().max().unwrap();
    let f8 = *probe.predict_footprint(&spec, 8).iter().max().unwrap();
    drop(probe);

    let srv = JobServer::load(
        &g,
        capped(4, (f8 + f16) / 2),
        config,
        ServeConfig::default(),
    )
    .unwrap();
    let r = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert_eq!(r.resilience.attempts, 1, "no engine launch may fail");
    assert_eq!(r.resilience.granted_width, 8);
    assert!(r.resilience.degraded);
    let stats = srv.stats();
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.degraded, 1);
    reconciles(&stats);
}

/// Nothing fits, not even scalar: the job is rejected with the offending
/// device and bytes, and the engine is never invoked.
#[test]
fn impossible_job_is_rejected_with_structured_reason() {
    let g = graph();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    let probe = JobServer::load(
        &g,
        Platform::bridges(4),
        config.clone(),
        ServeConfig::default(),
    )
    .unwrap();
    let spec = JobSpec::Sssp {
        sources: sources(&g, 4),
    };
    let f1 = *probe.predict_footprint(&spec, 1).iter().max().unwrap();
    drop(probe);

    let srv = JobServer::load(&g, capped(4, f1 / 2), config, ServeConfig::default()).unwrap();
    let err = srv.submit_spec(spec).unwrap().wait().unwrap_err();
    match err {
        JobError::Rejected(RejectReason::MemoryExceeded {
            predicted,
            capacity,
            ..
        }) => {
            assert!(predicted > capacity);
        }
        other => panic!("expected a MemoryExceeded rejection, got {other:?}"),
    }
    let stats = srv.stats();
    assert_eq!(stats.rejected_gov, 1);
    assert_eq!(stats.failed, 0, "the engine must never have launched");
    reconciles(&stats);
}

/// Under pressure, Low-priority work is shed rather than degraded; the
/// identical job at Normal priority is served narrow.
#[test]
fn low_priority_is_shed_where_normal_degrades() {
    let g = graph();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    let probe = JobServer::load(
        &g,
        Platform::bridges(4),
        config.clone(),
        ServeConfig::default(),
    )
    .unwrap();
    let spec = JobSpec::Bfs {
        sources: sources(&g, 16),
    };
    let f16 = *probe.predict_footprint(&spec, 16).iter().max().unwrap();
    let f8 = *probe.predict_footprint(&spec, 8).iter().max().unwrap();
    drop(probe);

    let srv = JobServer::load(
        &g,
        capped(4, (f8 + f16) / 2),
        config,
        ServeConfig {
            cache_capacity: 0, // the second submission must re-execute
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let low = srv
        .submit(JobRequest::new(spec.clone()).priority(Priority::Low))
        .unwrap()
        .wait()
        .unwrap_err();
    assert_eq!(
        low,
        JobError::Rejected(RejectReason::Shed {
            requested_width: 16
        })
    );

    let normal = srv.submit_spec(spec).unwrap().wait().unwrap();
    assert_eq!(normal.resilience.granted_width, 8);

    let stats = srv.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.rejected_gov, 1, "shed is a governor rejection");
    assert_eq!(stats.completed, 1);
    reconciles(&stats);
}

/// A deadline that expires during retry backoff fails the job with
/// `DeadlineExpired` — counted exactly once — instead of letting the
/// retry ladder outlive the caller's patience.
#[test]
fn deadline_expires_mid_backoff_exactly_once() {
    let g = graph();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    let probe = JobServer::load(
        &g,
        Platform::bridges(4),
        config.clone(),
        ServeConfig::default(),
    )
    .unwrap();
    let spec = JobSpec::Sssp {
        sources: sources(&g, 16),
    };
    let f1 = *probe.predict_footprint(&spec, 1).iter().max().unwrap();
    drop(probe);

    // Governor off and nothing fits: every attempt OOMs, and the first
    // backoff pause (5 s) crosses the 300 ms deadline.
    let srv = JobServer::load(
        &g,
        capped(4, f1 / 2),
        config,
        ServeConfig {
            governor: false,
            retry_backoff: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let err = srv
        .submit(JobRequest::new(spec).deadline(Duration::from_millis(300)))
        .unwrap()
        .wait()
        .unwrap_err();
    assert_eq!(err, JobError::DeadlineExpired);
    let stats = srv.stats();
    assert_eq!(stats.expired, 1, "expiry must be counted exactly once");
    assert_eq!(stats.failed, 0);
    reconciles(&stats);
}

/// The operator snapshot: healthy devices with full residual capacity at
/// rest, reservations visible as zero once drained, counters embedded.
#[test]
fn status_reports_devices_and_counters() {
    let g = graph();
    let srv = JobServer::load(
        &g,
        Platform::bridges(4),
        RunConfig::new(Policy::Cvc, Variant::var4()),
        ServeConfig::default(),
    )
    .unwrap();
    let src = srv.default_source().unwrap();
    srv.submit_spec(JobSpec::bfs(src)).unwrap().wait().unwrap();
    srv.drain();

    let status = srv.status();
    assert_eq!(status.devices.len(), 4);
    for d in &status.devices {
        assert_eq!(d.health, DeviceHealth::Healthy);
        assert_eq!(d.slow_factor, 1.0);
        assert_eq!(d.reserved, 0, "drained server holds no reservations");
        assert_eq!(d.residual, d.capacity);
    }
    assert_eq!(status.queued, 0);
    assert_eq!(status.in_flight, 0);
    assert_eq!(status.stats.completed, 1);
    reconciles(&status.stats);
}

/// A clean single-source run's resilience record: one attempt, no
/// degradation, all engine counters zero.
#[test]
fn clean_run_resilience_record_is_quiet() {
    let g = graph();
    let srv = JobServer::load(
        &g,
        Platform::bridges(4),
        RunConfig::new(Policy::Cvc, Variant::var1()),
        ServeConfig::default(),
    )
    .unwrap();
    let r = srv.submit_spec(JobSpec::bfs(0)).unwrap().wait().unwrap();
    assert_eq!(r.resilience.attempts, 1);
    assert_eq!(r.resilience.requested_width, 1);
    assert_eq!(r.resilience.granted_width, 1);
    assert!(!r.resilience.degraded);
    assert_eq!(r.resilience.engine, Default::default());

    // A cache hit performs zero launches.
    srv.drain();
    let hit = srv.submit_spec(JobSpec::bfs(0)).unwrap().wait().unwrap();
    assert!(hit.from_cache);
    assert_eq!(hit.resilience.attempts, 0);
}
