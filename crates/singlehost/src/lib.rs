//! Gunrock-like and Groute-like single-host multi-GPU baselines (§IV-B).
//!
//! Both run on the same substrates as the D-IrGL equivalent but with each
//! framework's published design decisions:
//!
//! * [`GunrockSim`] — random vertex partitioning (Gunrock's recommended
//!   default), the LB load balancer ("balances the edges of a vertex,
//!   irrespective of its degree, among all thread blocks"), BSP rounds,
//!   and **direction-optimizing traversal for bfs** (the algorithmic
//!   advantage behind its Table II bfs wins). Gunrock's pagerank is
//!   omitted, as the paper omits it ("its pr produced incorrect output").
//! * [`GrouteSim`] — METIS-like locality-seeking edge-cut partitioning and
//!   **asynchronous** execution (Groute is "the only framework other than
//!   D-IrGL that supports asynchronous communication between GPUs").
//!   Groute's pointer-jumping cc is approximated by asynchronous label
//!   propagation — a documented substitution (see `EXPERIMENTS.md`):
//!   on the low-diameter small inputs of Table II the round-count
//!   difference between pointer jumping and label propagation is modest.

pub mod dobfs;

use dirgl_apps::{Cc, PageRank, Sssp};
use dirgl_comm::CommMode;
use dirgl_core::{ExecModel, RunConfig, RunError, RunOutput, Runtime, Variant};
use dirgl_gpusim::{Balancer, Platform};
use dirgl_graph::csr::Csr;
use dirgl_partition::Policy;

pub use dobfs::DoBfs;

/// Gunrock keeps double-buffered frontier queues, per-peer staging buffers
/// and partition tables on every GPU on top of the CSR working set
/// (its Table III footprint is ~3x D-IrGL's); modelled as a constant
/// working-set multiplier.
pub const GUNROCK_BUFFER_FACTOR: f64 = 2.2;

/// The Gunrock-like single-host framework.
pub struct GunrockSim {
    /// Devices (a Tuxedo subset in the paper's experiments).
    pub platform: Platform,
    /// Paper-equivalence divisor.
    pub scale_divisor: u64,
}

impl GunrockSim {
    /// Creates the framework simulator.
    pub fn new(platform: Platform, scale_divisor: u64) -> GunrockSim {
        GunrockSim {
            platform,
            scale_divisor,
        }
    }

    fn runtime(&self) -> Runtime {
        Runtime::new(
            self.platform.clone(),
            RunConfig::new(
                Policy::Random,
                Variant {
                    balancer: Balancer::Lb,
                    comm: CommMode::UpdatedOnly, // frontier-based exchange
                    model: ExecModel::Sync,
                },
            )
            .scale(self.scale_divisor),
        )
    }

    fn inflate_memory(mut out: RunOutput) -> RunOutput {
        for m in out.report.memory_per_device.iter_mut() {
            *m = (*m as f64 * GUNROCK_BUFFER_FACTOR) as u64;
        }
        out
    }

    /// Direction-optimizing BFS from the max-out-degree source.
    pub fn run_bfs(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime()
            .runner(g, &DoBfs::from_max_out_degree(g))
            .execute()
            .map(Self::inflate_memory)
    }

    /// Label-propagation connected components (with Gunrock's
    /// app-specific optimizations folded into the shared engine).
    pub fn run_cc(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime()
            .runner(g, &Cc)
            .execute()
            .map(Self::inflate_memory)
    }

    /// Delta-stepping-style sssp (modelled as the shared push program).
    pub fn run_sssp(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime()
            .runner(g, &Sssp::from_max_out_degree(g))
            .execute()
            .map(Self::inflate_memory)
    }
}

/// The Groute-like single-host asynchronous framework.
pub struct GrouteSim {
    /// Devices.
    pub platform: Platform,
    /// Paper-equivalence divisor.
    pub scale_divisor: u64,
}

impl GrouteSim {
    /// Creates the framework simulator.
    pub fn new(platform: Platform, scale_divisor: u64) -> GrouteSim {
        GrouteSim {
            platform,
            scale_divisor,
        }
    }

    fn runtime(&self) -> Runtime {
        Runtime::new(
            self.platform.clone(),
            RunConfig::new(
                Policy::MetisLike,
                Variant {
                    balancer: Balancer::Twc,
                    comm: CommMode::UpdatedOnly,
                    model: ExecModel::Async,
                },
            )
            .scale(self.scale_divisor),
        )
    }

    /// Asynchronous data-driven BFS.
    pub fn run_bfs(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime()
            .runner(g, &dirgl_apps::Bfs::from_max_out_degree(g))
            .execute()
    }

    /// Connected components (pointer jumping approximated by asynchronous
    /// label propagation — see crate docs).
    pub fn run_cc(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime().runner(g, &Cc).execute()
    }

    /// Asynchronous sssp.
    pub fn run_sssp(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime()
            .runner(g, &Sssp::from_max_out_degree(g))
            .execute()
    }

    /// Asynchronous residual pagerank.
    pub fn run_pagerank(&self, g: &Csr) -> Result<RunOutput, RunError> {
        self.runtime().runner(g, &PageRank::new()).execute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_apps::reference;
    use dirgl_apps::UNREACHED;
    use dirgl_graph::weights::randomize_weights;
    use dirgl_graph::RmatConfig;

    fn graph() -> Csr {
        randomize_weights(&RmatConfig::new(9, 8).seed(13).generate(), 100, 2)
    }

    #[test]
    fn gunrock_apps_are_correct() {
        let g = graph();
        let gr = GunrockSim::new(Platform::tuxedo_n(4), 1);
        let bfs = gr.run_bfs(&g).unwrap();
        let want = reference::bfs(&g, g.max_out_degree_vertex());
        for (got, want) in bfs.values.iter().zip(&want) {
            assert_eq!(*got, *want as f64, "gunrock bfs");
        }
        let cc = gr.run_cc(&g).unwrap();
        let want = reference::cc(&g.symmetrize());
        for (got, want) in cc.values.iter().zip(&want) {
            assert_eq!(*got, *want as f64, "gunrock cc");
        }
        let sssp = gr.run_sssp(&g).unwrap();
        let want = reference::sssp(&g, g.max_out_degree_vertex());
        for (got, want) in sssp.values.iter().zip(&want) {
            assert_eq!(*got, *want as f64, "gunrock sssp");
        }
    }

    #[test]
    fn groute_apps_are_correct() {
        let g = graph();
        let gr = GrouteSim::new(Platform::tuxedo_n(4), 1);
        let bfs = gr.run_bfs(&g).unwrap();
        let want = reference::bfs(&g, g.max_out_degree_vertex());
        for (got, want) in bfs.values.iter().zip(&want) {
            assert_eq!(*got, *want as f64, "groute bfs");
        }
        let cc = gr.run_cc(&g).unwrap();
        let want = reference::cc(&g.symmetrize());
        for (got, want) in cc.values.iter().zip(&want) {
            assert_eq!(*got, *want as f64, "groute cc");
        }
    }

    #[test]
    fn batched_direction_optimizing_bfs_matches_scalar_lanes() {
        // A graph large and dense enough that the hybrid density test
        // actually flips to bottom-up mid-run, exercising the K-lane
        // exhaustive pull path and the aggregated direction decision.
        let g = dirgl_graph::SocialConfig::new(4_000, 80_000, 800, 1_200)
            .seed(7)
            .generate();
        let n = g.num_vertices();
        let sources: Vec<u32> = (0..6)
            .map(|k| (g.max_out_degree_vertex() + k * (n / 7 + 1)) % n)
            .collect();
        let sim = GunrockSim::new(Platform::tuxedo_n(4), 1);
        let rt = sim.runtime();
        let base = DoBfs::new(sources[0]);
        let lanes = rt
            .runner(&g, &base)
            .backend(dirgl_core::Backend::Lanes)
            .batch(&sources)
            .execute()
            .unwrap();
        let scalar = rt.runner(&g, &base).batch(&sources).execute().unwrap();
        assert_eq!(lanes.engine_reports.len(), 1, "6 sources fit one chunk");
        assert_eq!(scalar.engine_reports.len(), sources.len());
        for (l, s) in lanes.lanes.iter().zip(&scalar.lanes) {
            assert_eq!(l.source, s.source);
            let same = l
                .values
                .iter()
                .zip(&s.values)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "source {}: lane diverged from scalar run", l.source);
            assert_eq!(l.summary, s.summary);
            // And both equal the sequential reference.
            let want = reference::bfs(&g, l.source);
            for (got, want) in l.values.iter().zip(&want) {
                assert_eq!(*got, *want as f64);
            }
        }
        // The reached sets pack into one bit-matrix frontier.
        let reached = lanes.frontier_where(|v| v < UNREACHED as f64);
        for (l, lane) in lanes.lanes.iter().enumerate() {
            let expect = lane
                .values
                .iter()
                .filter(|&&v| v < UNREACHED as f64)
                .count() as u64;
            assert_eq!(reached.lane_weight(l as u32), expect);
        }
    }

    #[test]
    fn direction_optimization_reduces_bfs_work_on_low_diameter_input() {
        // Social-style graph: almost everything is reached in 2-3 hops, so
        // the bottom-up rounds scan far fewer edges than top-down frontier
        // expansion over the hub fan-outs.
        let g = dirgl_graph::SocialConfig::new(8_000, 160_000, 1_500, 2_500)
            .seed(3)
            .generate();
        let hybrid = GunrockSim::new(Platform::tuxedo_n(4), 1)
            .run_bfs(&g)
            .unwrap();
        // Same framework config with plain push bfs.
        let plain = Runtime::new(
            Platform::tuxedo_n(4),
            RunConfig::new(
                Policy::Random,
                Variant {
                    balancer: Balancer::Lb,
                    comm: CommMode::UpdatedOnly,
                    model: ExecModel::Sync,
                },
            ),
        )
        .runner(&g, &dirgl_apps::Bfs::from_max_out_degree(&g))
        .execute()
        .unwrap();
        assert!(
            hybrid.report.work_items < plain.report.work_items,
            "hybrid={} plain={}",
            hybrid.report.work_items,
            plain.report.work_items
        );
        // And identical answers.
        assert_eq!(hybrid.values, plain.values);
    }
}
