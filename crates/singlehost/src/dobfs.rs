//! Direction-optimizing BFS (Beamer et al.), Gunrock's bfs algorithm.
//!
//! Top-down (push) while the frontier is small; bottom-up (pull) — every
//! unreached vertex scans its in-edges for a reached parent — while the
//! frontier is a sizeable fraction of the graph. On low-diameter power-law
//! inputs the bottom-up phase skips the enormous middle-frontier edge
//! expansion, which is exactly Gunrock's Table II advantage.

use dirgl_apps::bfs::BfsState;
use dirgl_apps::UNREACHED;
use dirgl_core::{InitCtx, Lanes, MultiSourceProgram, Style, VertexProgram};
use dirgl_graph::csr::{Csr, VertexId};

/// Frontier fraction above which rounds switch to bottom-up.
pub const PULL_THRESHOLD: f64 = 0.05;

/// Direction-optimizing BFS from `source`.
#[derive(Clone, Copy, Debug)]
pub struct DoBfs {
    /// Root vertex.
    pub source: VertexId,
}

impl DoBfs {
    /// From an explicit source.
    pub fn new(source: VertexId) -> DoBfs {
        DoBfs { source }
    }

    /// From the paper's source convention.
    pub fn from_max_out_degree(g: &Csr) -> DoBfs {
        DoBfs {
            source: g.max_out_degree_vertex(),
        }
    }

    fn inner(&self) -> dirgl_apps::Bfs {
        dirgl_apps::Bfs::new(self.source)
    }
}

impl VertexProgram for DoBfs {
    type State = BfsState;
    type Wire = u32;

    fn name(&self) -> &'static str {
        "bfs(direction-optimizing)"
    }

    fn style(&self) -> Style {
        Style::HybridPushPull
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> BfsState {
        self.inner().init_state(gv, ctx)
    }

    fn initially_active(&self, gv: VertexId, ctx: &InitCtx<'_>) -> bool {
        self.inner().initially_active(gv, ctx)
    }

    fn edge_msg(&self, state: &BfsState, weight: u32) -> Option<u32> {
        self.inner().edge_msg(state, weight)
    }

    fn accumulate(&self, state: &mut BfsState, msg: u32) -> bool {
        self.inner().accumulate(state, msg)
    }

    fn absorb(&self, state: &mut BfsState) -> bool {
        self.inner().absorb(state)
    }

    fn take_delta(&self, state: &mut BfsState) -> u32 {
        self.inner().take_delta(state)
    }

    fn canonical(&self, state: &BfsState) -> u32 {
        self.inner().canonical(state)
    }

    fn set_canonical(&self, state: &mut BfsState, v: u32) -> bool {
        self.inner().set_canonical(state, v)
    }

    fn pull_when(&self, active: u64, total: u64) -> bool {
        active as f64 > PULL_THRESHOLD * total as f64
    }

    fn pull_ready(&self, state: &BfsState) -> bool {
        state.dist == UNREACHED
    }

    fn output(&self, state: &BfsState) -> f64 {
        self.inner().output(state)
    }
}

/// Direction-optimizing BFS batches lane-for-lane: the K-lane adapter
/// aggregates the per-lane frontiers into one density test, and its
/// exhaustive bottom-up scan keeps every lane's minimum.
impl MultiSourceProgram for DoBfs {
    type Batched = Lanes<DoBfs>;

    fn for_source(&self, source: VertexId) -> DoBfs {
        DoBfs::new(source)
    }

    fn batched(&self, sources: &[VertexId]) -> Lanes<DoBfs> {
        Lanes::new(self, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_test_thresholds() {
        let b = DoBfs::new(0);
        assert!(!b.pull_when(10, 1000));
        assert!(b.pull_when(100, 1000));
    }

    #[test]
    fn pull_ready_only_for_unreached() {
        let b = DoBfs::new(0);
        assert!(b.pull_ready(&BfsState {
            dist: UNREACHED,
            acc: UNREACHED
        }));
        assert!(!b.pull_ready(&BfsState {
            dist: 3,
            acc: UNREACHED
        }));
    }
}
