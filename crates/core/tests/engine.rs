//! Engine-level tests with a controlled min-propagation program on graphs
//! whose behaviour is known in closed form.

use dirgl_comm::CommMode;
use dirgl_core::{ExecModel, InitCtx, RunConfig, Runtime, Style, Variant, VertexProgram};
use dirgl_gpusim::{Balancer, Platform};
use dirgl_graph::csr::{Csr, CsrBuilder, VertexId};
use dirgl_partition::Policy;

/// Minimal single-source min-propagation (bfs with unit steps), used to
/// observe engine mechanics precisely.
struct MinProp {
    source: VertexId,
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct St {
    dist: u32,
    acc: u32,
}

impl VertexProgram for MinProp {
    type State = St;
    type Wire = u32;
    fn name(&self) -> &'static str {
        "minprop"
    }
    fn style(&self) -> Style {
        Style::PushDataDriven
    }
    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> St {
        St { dist: if gv == self.source { 0 } else { u32::MAX }, acc: u32::MAX }
    }
    fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        gv == self.source
    }
    fn edge_msg(&self, state: &St, _w: u32) -> Option<u32> {
        (state.dist != u32::MAX).then(|| state.dist + 1)
    }
    fn accumulate(&self, state: &mut St, msg: u32) -> bool {
        if msg < state.acc && msg < state.dist {
            state.acc = msg;
            true
        } else {
            false
        }
    }
    fn absorb(&self, state: &mut St) -> bool {
        if state.acc < state.dist {
            state.dist = state.acc;
            true
        } else {
            false
        }
    }
    fn take_delta(&self, state: &mut St) -> u32 {
        let d = state.acc.min(state.dist);
        state.acc = u32::MAX;
        d
    }
    fn canonical(&self, state: &St) -> u32 {
        state.dist
    }
    fn set_canonical(&self, state: &mut St, v: u32) -> bool {
        if v < state.dist {
            state.dist = v;
            true
        } else {
            false
        }
    }
    fn output(&self, state: &St) -> f64 {
        state.dist as f64
    }
}

fn path(n: u32) -> Csr {
    let mut b = CsrBuilder::new(n);
    for i in 0..n - 1 {
        b.add(i, i + 1);
    }
    b.build()
}

fn run(g: &Csr, cfg: RunConfig, devices: u32) -> dirgl_core::RunOutput {
    Runtime::new(Platform::bridges(devices), cfg).run(g, &MinProp { source: 0 }).unwrap()
}

#[test]
fn bsp_round_count_equals_path_length() {
    // On a path of 17 vertices, the frontier advances one hop per global
    // round: 16 productive rounds + 1 empty detection round.
    let g = path(17);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var3()), 4);
    assert_eq!(out.report.rounds, 17);
    for (v, d) in out.values.iter().enumerate() {
        assert_eq!(*d, v as f64);
    }
}

#[test]
fn basp_quiesces_on_path() {
    let g = path(17);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var4()), 4);
    for (v, d) in out.values.iter().enumerate() {
        assert_eq!(*d, v as f64);
    }
    // Devices holding later path segments idle while the wave approaches:
    // minimum local rounds is well below the path length.
    assert!(out.report.rounds < 17, "min rounds {}", out.report.rounds);
}

#[test]
fn as_sends_every_round_uo_only_updates() {
    // Wide links are needed: on one-entry links UO's bitset header makes
    // it *bigger* than AS — which is exactly the paper's "threshold below
    // which the extraction overhead outweighs the volume reduction".
    let g = dirgl_graph::RmatConfig::new(10, 8).seed(5).generate();
    let as_run = run(
        &g,
        RunConfig::new(
            Policy::Iec,
            Variant { balancer: Balancer::Alb, comm: CommMode::AllShared, model: ExecModel::Sync },
        ),
        4,
    );
    let uo_run = run(&g, RunConfig::new(Policy::Iec, Variant::var3()), 4);
    assert_eq!(as_run.values, uo_run.values);
    // Same number of messages (one per partner per round under the
    // always-send BSP discipline) but AS moves more bytes.
    assert!(as_run.report.comm_bytes > uo_run.report.comm_bytes);
}

#[test]
fn single_device_runs_have_no_communication() {
    let g = path(9);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var3()), 1);
    assert_eq!(out.report.comm_bytes, 0);
    assert_eq!(out.report.messages, 0);
    assert_eq!(out.values, (0..9).map(f64::from).collect::<Vec<_>>());
}

#[test]
fn throttle_reduces_basp_rounds() {
    // A denser graph so unthrottled BASP overlaps work.
    let g = dirgl_graph::RmatConfig::new(10, 8).seed(3).generate();
    let mut free = RunConfig::new(Policy::Iec, Variant::var4()).scale(1024);
    free.basp_round_gap_secs = 0.0;
    let unthrottled = run(&g, free.clone(), 8);
    let mut gap = free;
    gap.basp_round_gap_secs = 0.05;
    let throttled = run(&g, gap, 8);
    assert_eq!(unthrottled.values, throttled.values);
    assert!(
        throttled.report.max_rounds <= unthrottled.report.max_rounds,
        "throttled {} vs {}",
        throttled.report.max_rounds,
        unthrottled.report.max_rounds
    );
}

#[test]
fn work_items_scale_with_divisor() {
    let g = path(9);
    let small = run(&g, RunConfig::new(Policy::Oec, Variant::var3()).scale(1), 2);
    let big = run(&g, RunConfig::new(Policy::Oec, Variant::var3()).scale(1000), 2);
    assert_eq!(small.values, big.values);
    assert_eq!(big.report.work_items, 1000 * small.report.work_items);
}

#[test]
fn lux_round_overhead_is_charged_per_round() {
    let g = path(17);
    let mut plain = RunConfig::new(Policy::Iec, Variant::var3());
    let base = run(&g, plain.clone(), 4);
    plain.runtime_round_overhead_secs = 0.010;
    let taxed = run(&g, plain, 4);
    let extra = taxed.report.total_time.as_secs_f64() - base.report.total_time.as_secs_f64();
    let expected = 0.010 * base.report.rounds as f64;
    assert!(
        (extra - expected).abs() < 0.2 * expected,
        "extra {extra} vs expected {expected}"
    );
}

#[test]
fn disconnected_vertices_stay_unreached() {
    // Two components; source in the first.
    let mut b = CsrBuilder::new(6);
    b.add(0, 1);
    b.add(1, 2);
    b.add(4, 5);
    let g = b.build();
    for variant in [Variant::var3(), Variant::var4()] {
        let out = run(&g, RunConfig::new(Policy::Cvc, variant), 3);
        assert_eq!(out.values[2], 2.0);
        assert_eq!(out.values[4], u32::MAX as f64);
        assert_eq!(out.values[5], u32::MAX as f64);
    }
}

#[test]
fn empty_graph_terminates_immediately() {
    let g = Csr::empty(8);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var3()), 2);
    assert!(out.report.rounds <= 1);
    assert_eq!(out.values[0], 0.0); // the source itself
    assert!(out.values[1..].iter().all(|&d| d == u32::MAX as f64));
}

#[test]
fn gpudirect_reduces_device_comm_share() {
    let g = dirgl_graph::RmatConfig::new(11, 8).seed(9).generate();
    let mut cfg = RunConfig::new(Policy::Cvc, Variant::var3()).scale(1024);
    let staged = run(&g, cfg.clone(), 8);
    cfg.gpudirect = true;
    let direct = run(&g, cfg, 8);
    assert!(direct.report.total_time < staged.report.total_time);
    assert_eq!(direct.values, staged.values);
}
