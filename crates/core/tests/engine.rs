//! Engine-level tests with a controlled min-propagation program on graphs
//! whose behaviour is known in closed form.

use dirgl_comm::{CommMode, SimTime};
use dirgl_core::{
    CollectingSink, EngineKind, ExecModel, InitCtx, RunConfig, Runtime, Style, Variant,
    VertexProgram,
};
use dirgl_gpusim::{Balancer, Platform};
use dirgl_graph::csr::{Csr, CsrBuilder, VertexId};
use dirgl_partition::Policy;

/// Minimal single-source min-propagation (bfs with unit steps), used to
/// observe engine mechanics precisely.
struct MinProp {
    source: VertexId,
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct St {
    dist: u32,
    acc: u32,
}

impl VertexProgram for MinProp {
    type State = St;
    type Wire = u32;
    fn name(&self) -> &'static str {
        "minprop"
    }
    fn style(&self) -> Style {
        Style::PushDataDriven
    }
    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> St {
        St {
            dist: if gv == self.source { 0 } else { u32::MAX },
            acc: u32::MAX,
        }
    }
    fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        gv == self.source
    }
    fn edge_msg(&self, state: &St, _w: u32) -> Option<u32> {
        (state.dist != u32::MAX).then(|| state.dist + 1)
    }
    fn accumulate(&self, state: &mut St, msg: u32) -> bool {
        if msg < state.acc && msg < state.dist {
            state.acc = msg;
            true
        } else {
            false
        }
    }
    fn absorb(&self, state: &mut St) -> bool {
        if state.acc < state.dist {
            state.dist = state.acc;
            true
        } else {
            false
        }
    }
    fn take_delta(&self, state: &mut St) -> u32 {
        let d = state.acc.min(state.dist);
        state.acc = u32::MAX;
        d
    }
    fn canonical(&self, state: &St) -> u32 {
        state.dist
    }
    fn set_canonical(&self, state: &mut St, v: u32) -> bool {
        if v < state.dist {
            state.dist = v;
            true
        } else {
            false
        }
    }
    fn output(&self, state: &St) -> f64 {
        state.dist as f64
    }
}

fn path(n: u32) -> Csr {
    let mut b = CsrBuilder::new(n);
    for i in 0..n - 1 {
        b.add(i, i + 1);
    }
    b.build()
}

fn run(g: &Csr, cfg: RunConfig, devices: u32) -> dirgl_core::RunOutput {
    Runtime::new(Platform::bridges(devices), cfg)
        .runner(g, &MinProp { source: 0 })
        .execute()
        .unwrap()
}

#[test]
fn bsp_round_count_equals_path_length() {
    // On a path of 17 vertices, the frontier advances one hop per global
    // round: 16 productive rounds + 1 empty detection round.
    let g = path(17);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var3()), 4);
    assert_eq!(out.report.rounds, 17);
    for (v, d) in out.values.iter().enumerate() {
        assert_eq!(*d, v as f64);
    }
}

#[test]
fn basp_quiesces_on_path() {
    let g = path(17);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var4()), 4);
    for (v, d) in out.values.iter().enumerate() {
        assert_eq!(*d, v as f64);
    }
    // Devices holding later path segments idle while the wave approaches:
    // minimum local rounds is well below the path length.
    assert!(out.report.rounds < 17, "min rounds {}", out.report.rounds);
}

#[test]
fn as_sends_every_round_uo_only_updates() {
    // Wide links are needed: on one-entry links UO's bitset header makes
    // it *bigger* than AS — which is exactly the paper's "threshold below
    // which the extraction overhead outweighs the volume reduction".
    let g = dirgl_graph::RmatConfig::new(10, 8).seed(5).generate();
    let as_run = run(
        &g,
        RunConfig::new(
            Policy::Iec,
            Variant {
                balancer: Balancer::Alb,
                comm: CommMode::AllShared,
                model: ExecModel::Sync,
            },
        ),
        4,
    );
    let uo_run = run(&g, RunConfig::new(Policy::Iec, Variant::var3()), 4);
    assert_eq!(as_run.values, uo_run.values);
    // Same number of messages (one per partner per round under the
    // always-send BSP discipline) but AS moves more bytes.
    assert!(as_run.report.comm_bytes > uo_run.report.comm_bytes);
}

#[test]
fn single_device_runs_have_no_communication() {
    let g = path(9);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var3()), 1);
    assert_eq!(out.report.comm_bytes, 0);
    assert_eq!(out.report.messages, 0);
    assert_eq!(out.values, (0..9).map(f64::from).collect::<Vec<_>>());
}

#[test]
fn throttle_reduces_basp_rounds() {
    // A denser graph so unthrottled BASP overlaps work.
    let g = dirgl_graph::RmatConfig::new(10, 8).seed(3).generate();
    let mut free = RunConfig::new(Policy::Iec, Variant::var4()).scale(1024);
    free.basp_round_gap_secs = 0.0;
    let unthrottled = run(&g, free.clone(), 8);
    let mut gap = free;
    gap.basp_round_gap_secs = 0.05;
    let throttled = run(&g, gap, 8);
    assert_eq!(unthrottled.values, throttled.values);
    assert!(
        throttled.report.max_rounds <= unthrottled.report.max_rounds,
        "throttled {} vs {}",
        throttled.report.max_rounds,
        unthrottled.report.max_rounds
    );
}

#[test]
fn work_items_scale_with_divisor() {
    let g = path(9);
    let small = run(&g, RunConfig::new(Policy::Oec, Variant::var3()).scale(1), 2);
    let big = run(
        &g,
        RunConfig::new(Policy::Oec, Variant::var3()).scale(1000),
        2,
    );
    assert_eq!(small.values, big.values);
    assert_eq!(big.report.work_items, 1000 * small.report.work_items);
}

#[test]
fn lux_round_overhead_is_charged_per_round() {
    let g = path(17);
    let mut plain = RunConfig::new(Policy::Iec, Variant::var3());
    let base = run(&g, plain.clone(), 4);
    plain.runtime_round_overhead_secs = 0.010;
    let taxed = run(&g, plain, 4);
    let extra = taxed.report.total_time.as_secs_f64() - base.report.total_time.as_secs_f64();
    let expected = 0.010 * base.report.rounds as f64;
    assert!(
        (extra - expected).abs() < 0.2 * expected,
        "extra {extra} vs expected {expected}"
    );
}

#[test]
fn disconnected_vertices_stay_unreached() {
    // Two components; source in the first.
    let mut b = CsrBuilder::new(6);
    b.add(0, 1);
    b.add(1, 2);
    b.add(4, 5);
    let g = b.build();
    for variant in [Variant::var3(), Variant::var4()] {
        let out = run(&g, RunConfig::new(Policy::Cvc, variant), 3);
        assert_eq!(out.values[2], 2.0);
        assert_eq!(out.values[4], u32::MAX as f64);
        assert_eq!(out.values[5], u32::MAX as f64);
    }
}

#[test]
fn empty_graph_terminates_immediately() {
    let g = Csr::empty(8);
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var3()), 2);
    assert!(out.report.rounds <= 1);
    assert_eq!(out.values[0], 0.0); // the source itself
    assert!(out.values[1..].iter().all(|&d| d == u32::MAX as f64));
}

fn run_traced(g: &Csr, cfg: RunConfig, devices: u32) -> (dirgl_core::RunOutput, CollectingSink) {
    let mut sink = CollectingSink::new();
    let out = Runtime::new(Platform::bridges(devices), cfg)
        .runner(g, &MinProp { source: 0 })
        .trace(&mut sink)
        .execute()
        .unwrap();
    (out, sink)
}

#[test]
fn bsp_trace_has_one_record_per_round_and_device() {
    let g = path(17);
    let (out, sink) = run_traced(&g, RunConfig::new(Policy::Oec, Variant::var3()), 4);
    assert_eq!(out.report.rounds, 17);

    // One record per (round, device), every round complete.
    assert_eq!(sink.records.len(), 17 * 4);
    for round in 0..17u32 {
        let mut devs: Vec<u32> = sink
            .records
            .iter()
            .filter(|r| r.round == round)
            .map(|r| r.device)
            .collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1, 2, 3], "round {round}");
    }
    assert!(sink.records.iter().all(|r| r.engine == EngineKind::Bsp));

    // Per-round traffic sums to the run totals, on both ends of the wire.
    let sent: u64 = sink.records.iter().map(|r| r.bytes_sent).sum();
    let received: u64 = sink.records.iter().map(|r| r.bytes_received).sum();
    assert_eq!(sent, out.report.comm_bytes);
    assert_eq!(received, out.report.comm_bytes);
    let msgs: u64 = sink.records.iter().map(|r| r.messages_sent).sum();
    assert_eq!(msgs, out.report.messages);

    // Inbound blocking is attributed per device: receivers of the wave's
    // messages wait; the total is nonzero on a multi-device path.
    assert!(sink.records.iter().any(|r| r.wait > SimTime::ZERO));

    // Per-device clocks never run backwards across rounds.
    for d in 0..4u32 {
        let clocks: Vec<SimTime> = sink
            .records
            .iter()
            .filter(|r| r.device == d)
            .map(|r| r.clock_end)
            .collect();
        assert!(clocks.windows(2).all(|w| w[0] <= w[1]), "device {d}");
    }

    // The report's round summaries come from the same records.
    assert_eq!(out.report.rounds_detail.len(), 17);
    assert_eq!(
        out.report
            .rounds_detail
            .iter()
            .map(|s| s.bytes)
            .sum::<u64>(),
        out.report.comm_bytes
    );
    assert!(out.report.rounds_detail.iter().all(|s| s.devices == 4));
}

#[test]
fn basp_trace_has_one_record_per_local_round() {
    let g = path(17);
    let (out, sink) = run_traced(&g, RunConfig::new(Policy::Oec, Variant::var4()), 4);
    assert!(sink.records.iter().all(|r| r.engine == EngineKind::Basp));

    // Per device: record ordinals are its contiguous local rounds 0..n,
    // and the per-device counts reproduce the report's min/max.
    let mut per_device = [0u32; 4];
    for d in 0..4u32 {
        let ordinals: Vec<u32> = sink
            .records
            .iter()
            .filter(|r| r.device == d)
            .map(|r| r.round)
            .collect();
        for (i, r) in ordinals.iter().enumerate() {
            assert_eq!(*r as usize, i, "device {d}");
        }
        per_device[d as usize] = ordinals.len() as u32;
    }
    assert_eq!(
        per_device.iter().copied().min().unwrap(),
        out.report.min_rounds
    );
    assert_eq!(
        per_device.iter().copied().max().unwrap(),
        out.report.max_rounds
    );

    // Traffic totals agree with the outcome on both ends.
    let sent: u64 = sink.records.iter().map(|r| r.bytes_sent).sum();
    assert_eq!(sent, out.report.comm_bytes);
    let msgs: u64 = sink.records.iter().map(|r| r.messages_sent).sum();
    assert_eq!(msgs, out.report.messages);

    // Devices holding later path segments idle before their first round:
    // wait is attributed to the device that blocked.
    assert!(sink
        .records
        .iter()
        .any(|r| r.device > 0 && r.wait > SimTime::ZERO));

    // Tracing must not perturb the simulation itself.
    let plain = run(&g, RunConfig::new(Policy::Oec, Variant::var4()), 4);
    assert_eq!(plain.values, out.values);
    assert_eq!(plain.report.total_time, out.report.total_time);
}

#[test]
fn basp_reports_true_min_and_max_local_rounds_under_skew() {
    // Device 0 gets the whole path (degree-weighted contiguous blocks);
    // device 1 gets only isolated vertices, never activates, and runs 0
    // local rounds — the per-device spread BASP is about.
    let n = 8u32;
    let isolated = 150u32;
    let mut b = CsrBuilder::new(n + isolated);
    for i in 0..n - 1 {
        b.add(i, i + 1);
    }
    let g = b.build();
    let out = run(&g, RunConfig::new(Policy::Oec, Variant::var4()), 2);
    assert_eq!(
        out.values[..n as usize],
        (0..n).map(f64::from).collect::<Vec<_>>()[..]
    );
    assert!(
        out.report.max_rounds > out.report.min_rounds,
        "skewed BASP run must show a local-round spread: min {} max {}",
        out.report.min_rounds,
        out.report.max_rounds
    );
    assert_eq!(out.report.min_rounds, 0);
    assert!(out.report.max_rounds >= n - 1);
}

#[test]
fn gpudirect_reduces_device_comm_share() {
    let g = dirgl_graph::RmatConfig::new(11, 8).seed(9).generate();
    let mut cfg = RunConfig::new(Policy::Cvc, Variant::var3()).scale(1024);
    let staged = run(&g, cfg.clone(), 8);
    cfg.gpudirect = true;
    let direct = run(&g, cfg, 8);
    assert!(direct.report.total_time < staged.report.total_time);
    assert_eq!(direct.values, staged.values);
}
