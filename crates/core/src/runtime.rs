//! The runtime: partition → load (with OOM check) → execute → report.
//!
//! All execution goes through one builder-style entry point,
//! [`Runtime::runner`]:
//!
//! ```text
//! rt.runner(&graph, &program)      // partition built from the config
//!     .partition(&part)            // ...or reuse an existing partition
//!     .aux(&aux)                   // optional per-vertex init data
//!     .trace(&mut sink)            // optional per-round trace emission
//!     .execute()                   // -> RunOutput
//! ```
//!
//! ([`Runner::execute_with_states`] additionally gathers the final master
//! *states* per global vertex, for multi-phase drivers like betweenness
//! centrality.) The former six `run*` entry points have been removed;
//! the builder is the only way in.

use dirgl_comm::{NetModel, SimTime, SyncPlan};
use dirgl_gpusim::{OomError, Platform};
use dirgl_graph::csr::Csr;
use dirgl_partition::Partition;

use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::engine::run_engine;
use crate::program::{InitCtx, VertexProgram};
use crate::report::{ExecutionReport, RoundSummary};
use crate::trace::{ForkSink, NoopSink, TraceSink};

/// A run failure.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// A device could not hold its partition — the paper's missing points.
    Oom {
        /// Device that failed to load.
        device: u32,
        /// Allocation detail.
        err: OomError,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Oom { device, err } => write!(f, "device {device}: {err}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A completed run: the report plus per-global-vertex outputs for
/// verification.
pub struct RunOutput {
    /// Timing, volume, balance and memory measurements.
    pub report: ExecutionReport,
    /// Final output of every global vertex (from its master proxy).
    pub values: Vec<f64>,
}

/// Executes vertex programs on a simulated multi-GPU platform with a fixed
/// configuration — the D-IrGL equivalent.
pub struct Runtime {
    /// Devices and interconnect.
    pub platform: Platform,
    /// Policy, variant and scaling.
    pub config: RunConfig,
}

/// How a [`Runner`] receives its partition: borrowed (harnesses reusing a
/// cached partition across variants pay one per-run copy of the local
/// graphs, never of the exchange links) or owned (local graphs are moved
/// straight into the devices).
pub enum PartitionArg<'a> {
    /// Reuse a caller-held partition.
    Borrowed(&'a Partition),
    /// Consume a partition built for this run.
    Owned(Partition),
}

impl<'a> From<&'a Partition> for PartitionArg<'a> {
    fn from(p: &'a Partition) -> PartitionArg<'a> {
        PartitionArg::Borrowed(p)
    }
}

impl From<Partition> for PartitionArg<'_> {
    fn from(p: Partition) -> PartitionArg<'static> {
        PartitionArg::Owned(p)
    }
}

/// One configured execution, built by [`Runtime::runner`].
///
/// Defaults: partition freshly built per the runtime's policy (after
/// symmetrizing the input when the program needs the undirected view), no
/// auxiliary init data, no tracing.
pub struct Runner<'a, P: VertexProgram> {
    rt: &'a Runtime,
    graph: &'a Csr,
    program: &'a P,
    part: Option<PartitionArg<'a>>,
    aux: Option<&'a [u64]>,
    sink: Option<&'a mut dyn TraceSink>,
}

impl<'a, P: VertexProgram> Runner<'a, P> {
    /// Runs on an existing partition instead of building one. The graph is
    /// used as given (no symmetrization): a caller-supplied partition is
    /// taken to already match the intended graph view, as the former
    /// `run_partitioned` contract did.
    pub fn partition(mut self, part: impl Into<PartitionArg<'a>>) -> Self {
        self.part = Some(part.into());
        self
    }

    /// Supplies per-vertex auxiliary data to the program's initialization
    /// (e.g. betweenness centrality's forward-pass counts).
    pub fn aux(mut self, aux: &'a [u64]) -> Self {
        self.aux = Some(aux);
        self
    }

    /// Emits one [`crate::trace::RoundRecord`] per (round, device) into
    /// `sink`; an enabled sink also populates
    /// [`ExecutionReport::rounds_detail`].
    pub fn trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Executes to convergence. Reported time excludes partitioning and
    /// loading, matching §IV-A.
    pub fn execute(self) -> Result<RunOutput, RunError> {
        self.execute_with_states().map(|(out, _)| out)
    }

    /// [`Runner::execute`], additionally gathering the final master state
    /// of every global vertex — the building block of multi-phase drivers
    /// (betweenness centrality).
    pub fn execute_with_states(self) -> Result<(RunOutput, Vec<P::State>), RunError> {
        let Runner {
            rt,
            graph,
            program,
            part,
            aux,
            sink,
        } = self;
        let config = &rt.config;
        let divisor = config.scale_divisor;

        // --- Resolve the graph view and partition.
        let sym;
        let (g, mut owned_part, borrowed_part): (&Csr, Option<Partition>, Option<&Partition>) =
            match part {
                None => {
                    let g = if program.needs_symmetric() {
                        sym = graph.symmetrize();
                        &sym
                    } else {
                        graph
                    };
                    let p =
                        Partition::build(g, config.policy, rt.platform.num_devices(), config.seed);
                    (g, Some(p), None)
                }
                Some(PartitionArg::Owned(p)) => (graph, Some(p), None),
                Some(PartitionArg::Borrowed(p)) => (graph, None, Some(p)),
            };

        // --- Plan + load check (needs the partition's local graphs intact).
        let plan;
        let memory;
        {
            let pr: &Partition = borrowed_part
                .or(owned_part.as_ref())
                .expect("partition set");
            plan = SyncPlan::build(pr, true, true);
            let state_bytes = std::mem::size_of::<P::State>() as u64;
            let mut mem = Vec::with_capacity(pr.locals.len());
            for lg in &pr.locals {
                let need = DeviceRun::<P>::required_bytes(lg, &plan, program, state_bytes, divisor);
                let capacity = rt.platform.gpus[lg.device as usize].memory_bytes;
                if need > capacity {
                    return Err(RunError::Oom {
                        device: lg.device,
                        err: OomError {
                            requested: need,
                            in_use: 0,
                            capacity,
                        },
                    });
                }
                mem.push(need);
            }
            memory = mem;
        }
        // An owned partition donates its local graphs to the devices; a
        // borrowed one is copied (links — the quadratically-sized half —
        // are only ever borrowed).
        let locals = match owned_part.as_mut() {
            Some(p) => std::mem::take(&mut p.locals),
            None => borrowed_part.expect("borrowed partition").locals.clone(),
        };
        let part: &Partition = borrowed_part
            .or(owned_part.as_ref())
            .expect("partition set");

        // --- Initialize device state.
        let out_degrees: Vec<u32> = (0..g.num_vertices()).map(|v| g.out_degree(v)).collect();
        let ctx = InitCtx {
            num_vertices: g.num_vertices(),
            out_degrees: &out_degrees,
            aux,
        };
        let mut devices: Vec<DeviceRun<P>> = locals
            .into_iter()
            .map(|lg| {
                let spec = rt.platform.gpus[lg.device as usize];
                let mut d = DeviceRun::new(lg, spec, program, &ctx);
                d.peak_memory = memory[d.dev as usize];
                d
            })
            .collect();

        // --- Execute.
        let mut net = NetModel::new(rt.platform.clone());
        net.direct_device = config.gpudirect;
        // Programs that cannot run asynchronously fall back to BSP, as
        // D-IrGL does for benchmarks that "can[not] be run asynchronously"
        // (SIII-B).
        let model = if program.supports_async() {
            config.variant.model
        } else {
            crate::config::ExecModel::Sync
        };
        // Enabled sinks are forked so the same records both reach the
        // caller and feed the report's round summaries; the disabled
        // (no-op) path keeps zero per-round assembly cost.
        let mut noop = NoopSink;
        let sink: &mut dyn TraceSink = match sink {
            Some(s) => s,
            None => &mut noop,
        };
        let (outcome, rounds_detail) = if sink.enabled() {
            let mut fork = ForkSink {
                outer: sink,
                collected: Default::default(),
            };
            let o = run_engine(
                model,
                program,
                &mut devices,
                part,
                &plan,
                &net,
                config,
                &mut fork,
            );
            (o, RoundSummary::from_records(&fork.collected.records))
        } else {
            (
                run_engine(
                    model,
                    program,
                    &mut devices,
                    part,
                    &plan,
                    &net,
                    config,
                    sink,
                ),
                Vec::new(),
            )
        };

        // --- Gather outputs and states from masters.
        let mut values = vec![0.0f64; g.num_vertices() as usize];
        let mut states: Vec<P::State> = Vec::with_capacity(g.num_vertices() as usize);
        // Seed with any master's copy; overwritten per global vertex below.
        let template = devices
            .iter()
            .find_map(|d| d.state.first().copied())
            .unwrap_or_else(|| program.init_state(0, &ctx));
        states.resize(g.num_vertices() as usize, template);
        for d in &devices {
            for lv in 0..d.lg.num_masters {
                let gv = d.lg.l2g[lv as usize] as usize;
                values[gv] = program.output(&d.state[lv as usize]);
                states[gv] = d.state[lv as usize];
            }
        }

        let report = ExecutionReport {
            total_time: outcome
                .clocks
                .iter()
                .copied()
                .max()
                .unwrap_or(SimTime::ZERO),
            compute_per_device: devices.iter().map(|d| d.compute_time).collect(),
            wait_per_host: outcome.host_wait,
            comm_bytes: outcome.comm_bytes,
            messages: outcome.messages,
            rounds: outcome.rounds,
            min_rounds: outcome.min_rounds,
            max_rounds: outcome.max_rounds,
            work_items: devices.iter().map(|d| d.work_items).sum(),
            memory_per_device: devices.iter().map(|d| d.peak_memory).collect(),
            rounds_detail,
            resilience: outcome.resilience,
        };
        Ok((RunOutput { report, values }, states))
    }
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(platform: Platform, config: RunConfig) -> Runtime {
        Runtime { platform, config }
    }

    /// Starts building a run of `program` on `graph`; see [`Runner`].
    pub fn runner<'a, P: VertexProgram>(&'a self, graph: &'a Csr, program: &'a P) -> Runner<'a, P> {
        Runner {
            rt: self,
            graph,
            program,
            part: None,
            aux: None,
            sink: None,
        }
    }

    /// True when the benchmark is expected to traverse from a source (bfs,
    /// sssp) — convenience for harnesses picking sources.
    pub fn max_out_degree_source(g: &Csr) -> u32 {
        g.max_out_degree_vertex()
    }
}
