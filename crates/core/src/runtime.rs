//! The runtime: partition → load (with OOM check) → execute → report.
//!
//! All execution goes through one builder-style entry point,
//! [`Runtime::runner`]:
//!
//! ```text
//! rt.runner(&graph, &program)      // partition built from the config
//!     .partition(&part)            // ...or reuse an existing partition
//!     .aux(&aux)                   // optional per-vertex init data
//!     .trace(&mut sink)            // optional per-round trace emission
//!     .execute()                   // -> RunOutput
//! ```
//!
//! ([`Runner::execute_with_states`] additionally gathers the final master
//! *states* per global vertex, for multi-phase drivers like betweenness
//! centrality.) The former six `run*` entry points have been removed;
//! the builder is the only way in.
//!
//! ## Prepared partitions: build once, execute many
//!
//! A one-shot run pays partition construction, [`SyncPlan`] assembly (with
//! its per-link `ExtractIndex` inverse indexes) and out-degree gathering on
//! every call — fine for a figure harness, wasteful for a service answering
//! many queries against one graph. [`PreparedPartition`] hoists all of that
//! into a build-once handle that is immutable afterwards, so it can sit
//! behind an `Arc` and be shared by any number of concurrent jobs:
//!
//! ```text
//! let prep = rt.prepare(&graph, /*symmetrize=*/ false);   // once
//! let out  = rt.job(&prep, &Bfs::new(src)).execute()?;    // per query
//! ```
//!
//! A job gets its own per-device state (including the round scratch), so
//! `(shared PreparedPartition, program, source)` is the unit of concurrent
//! execution; results are byte-identical to the equivalent one-shot
//! `runner(...).execute()` (pinned by `crates/serve` tests).

use dirgl_comm::{LaneFrontier, NetModel, SimTime, SyncPlan};
use dirgl_gpusim::{GraphRepr, OomError, Platform, ReprCost};
use dirgl_graph::csr::{Csr, VertexId};
use dirgl_partition::{LocalGraph, Partition};

use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::engine::run_engine;
use crate::layout::{LayoutChoice, LayoutPlan};
use crate::multi::{BatchedProgram, MultiSourceProgram, LANE_WIDTH};
use crate::program::{InitCtx, VertexProgram};
use crate::report::{ExecutionReport, RoundSummary};
use crate::trace::{ForkSink, NoopSink, TraceSink};

/// A run failure.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// A device could not hold its partition — the paper's missing points.
    Oom {
        /// Device that failed to load.
        device: u32,
        /// Allocation detail.
        err: OomError,
    },
    /// The platform has no devices to execute on.
    NoDevices,
    /// The input graph has no vertices — nothing to partition or run. A
    /// resident server must refuse the job instead of crashing, so this is
    /// an error value, not a panic.
    EmptyGraph,
}

impl RunError {
    /// True when retrying the same job with a *smaller working set* could
    /// succeed. OOM is the only such failure: a K-lane batch that does not
    /// fit can be split into narrower launches (or run scalar). A platform
    /// with no devices or an empty graph stays broken no matter how the
    /// job is shaped, so those are terminal.
    pub fn is_retriable(&self) -> bool {
        matches!(self, RunError::Oom { .. })
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Oom { device, err } => write!(f, "device {device}: {err}"),
            RunError::NoDevices => write!(f, "platform has no devices"),
            RunError::EmptyGraph => write!(f, "graph has no vertices"),
        }
    }
}

impl std::error::Error for RunError {}

/// A completed run: the report plus per-global-vertex outputs for
/// verification.
pub struct RunOutput {
    /// Timing, volume, balance and memory measurements.
    pub report: ExecutionReport,
    /// Final output of every global vertex (from its master proxy).
    pub values: Vec<f64>,
}

/// How a multi-source batch executes (see [`Runner::batch`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// One scalar engine run per source — the baseline every lane of the
    /// batched backend must reproduce byte for byte.
    #[default]
    Scalar,
    /// K-lane bit-matrix batching: one engine run advances up to
    /// [`LANE_WIDTH`] sources through [`Lanes`].
    Lanes,
}

impl Backend {
    /// CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Lanes => "lanes",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "scalar" => Ok(Backend::Scalar),
            "lanes" => Ok(Backend::Lanes),
            other => Err(format!(
                "unknown backend `{other}` (expected `scalar` or `lanes`)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic digest of one lane's output vector — computed by the
/// same fold in both backends, so lane agreement implies summary
/// agreement bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaneSummary {
    /// Output vector length (|V|).
    pub vertices: u32,
    /// Sum of all outputs in ascending vertex order.
    pub sum: f64,
    /// Smallest output.
    pub min: f64,
    /// Largest output.
    pub max: f64,
}

impl LaneSummary {
    fn of(values: &[f64]) -> LaneSummary {
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        LaneSummary {
            vertices: values.len() as u32,
            sum,
            min,
            max,
        }
    }
}

/// One source's result within a multi-source run.
#[derive(Clone, Debug)]
pub struct LaneOutput {
    /// The source vertex this lane traversed from.
    pub source: VertexId,
    /// Final output of every global vertex, exactly as the equivalent
    /// single-source [`Runner::execute`] would report it.
    pub values: Vec<f64>,
    /// Digest of `values`.
    pub summary: LaneSummary,
}

/// A completed multi-source run: per-source outputs plus the engine
/// reports that produced them (one per source under
/// [`Backend::Scalar`], one per ≤64-lane chunk under
/// [`Backend::Lanes`]).
#[derive(Clone, Debug)]
pub struct MultiRunOutput {
    /// Engine-level reports in execution order.
    pub engine_reports: Vec<ExecutionReport>,
    /// Per-source outputs, in the order the sources were given.
    pub lanes: Vec<LaneOutput>,
}

impl MultiRunOutput {
    /// Packs the vertices whose output satisfies `pred` into a
    /// [`LaneFrontier`] bit matrix, one lane per source (e.g. the
    /// reached sets of a traversal batch). Only the first
    /// [`LANE_WIDTH`] sources fit one frontier word; larger batches
    /// truncate.
    pub fn frontier_where(&self, pred: impl Fn(f64) -> bool) -> LaneFrontier {
        let n = self.lanes.first().map_or(0, |l| l.values.len());
        let k = self.lanes.len().min(LANE_WIDTH) as u32;
        let mut f = LaneFrontier::new(n as u32, k.max(1));
        for (l, lane) in self.lanes.iter().take(LANE_WIDTH).enumerate() {
            for (v, &val) in lane.values.iter().enumerate() {
                if pred(val) {
                    f.set(v as u32, l as u32);
                }
            }
        }
        f
    }
}

/// Executes vertex programs on a simulated multi-GPU platform with a fixed
/// configuration — the D-IrGL equivalent.
pub struct Runtime {
    /// Devices and interconnect.
    pub platform: Platform,
    /// Policy, variant and scaling.
    pub config: RunConfig,
}

/// Everything about a partitioned graph that is independent of the program
/// being run: the resolved graph view, its partition, the sync plan (with
/// the per-link `ExtractIndex` inverse indexes), and the per-vertex
/// out-degrees the programs' init contexts need.
///
/// Build once with [`PreparedPartition::build`] (or [`Runtime::prepare`]),
/// then execute any number of jobs against it via [`Runtime::job`]; the
/// handle is never mutated by execution, so `Arc<PreparedPartition>` is
/// safe to share across concurrently running jobs.
#[derive(Clone, Debug)]
pub struct PreparedPartition {
    graph: Csr,
    part: Partition,
    plan: SyncPlan,
    out_degrees: Vec<u32>,
    /// Cached kernel layouts (see [`crate::layout`]): the permuted
    /// partition + plan jobs substitute when the program allows it.
    /// `None` unless [`PreparedPartition::with_layout`] selected a
    /// non-identity layout.
    layouts: Option<LayoutPlan>,
}

impl PreparedPartition {
    /// Partitions `graph` under `policy` across `devices` devices (seeded
    /// like [`Partition::build`]) and precomputes the sync plan and
    /// out-degrees. Fails on degenerate inputs a panic would otherwise hide
    /// until deep inside a run.
    pub fn build(
        graph: Csr,
        policy: dirgl_partition::Policy,
        devices: u32,
        seed: u64,
    ) -> Result<PreparedPartition, RunError> {
        if devices == 0 {
            return Err(RunError::NoDevices);
        }
        if graph.num_vertices() == 0 {
            return Err(RunError::EmptyGraph);
        }
        let part = Partition::build(&graph, policy, devices, seed);
        Ok(Self::from_partition(graph, part))
    }

    /// Wraps an existing partition of `graph` (the caller vouches they
    /// match, as the `Runner::partition` contract already requires).
    pub fn from_partition(graph: Csr, part: Partition) -> PreparedPartition {
        let plan = SyncPlan::build(&part, true, true);
        let out_degrees = (0..graph.num_vertices())
            .map(|v| graph.out_degree(v))
            .collect();
        PreparedPartition {
            graph,
            part,
            plan,
            out_degrees,
            layouts: None,
        }
    }

    /// Selects per-device kernel layouts under `choice` and caches the
    /// permuted partition + sync plan on the handle (builder style; see
    /// [`crate::layout`] for the selection heuristic and the determinism
    /// contract). [`LayoutChoice::Insertion`] — and an `Auto` selection
    /// where no device crosses the skew thresholds — leaves the handle
    /// layout-free.
    pub fn with_layout(mut self, choice: LayoutChoice) -> PreparedPartition {
        self.layouts = LayoutPlan::build(&self.part, choice);
        self
    }

    /// The cached layout plan, if a non-identity one was selected.
    pub fn layout_plan(&self) -> Option<&LayoutPlan> {
        self.layouts.as_ref()
    }

    /// The resolved graph view jobs run on.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The resident partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The resident sync plan (with its extract indexes).
    pub fn plan(&self) -> &SyncPlan {
        &self.plan
    }

    /// Number of global vertices in this view.
    pub fn num_vertices(&self) -> u32 {
        self.graph.num_vertices()
    }

    /// The paper's bfs/sssp source convention (highest out-degree vertex),
    /// without rescanning the graph; `None` on an empty view.
    pub fn max_out_degree_source(&self) -> Option<u32> {
        self.out_degrees
            .iter()
            .enumerate()
            .max_by(|(ia, da), (ib, db)| da.cmp(db).then(ib.cmp(ia)))
            .map(|(v, _)| v as u32)
    }
}

/// How a [`Runner`] receives its partition: borrowed (harnesses reusing a
/// cached partition across variants pay one per-run copy of the local
/// graphs, never of the exchange links), owned (local graphs are moved
/// straight into the devices), or prepared (a resident
/// [`PreparedPartition`] whose plan and degrees are reused as well — the
/// handle's graph view overrides the runner's graph argument).
pub enum PartitionArg<'a> {
    /// Reuse a caller-held partition.
    Borrowed(&'a Partition),
    /// Consume a partition built for this run.
    Owned(Partition),
    /// Run against a resident prepared handle (see [`Runtime::job`]).
    Prepared(&'a PreparedPartition),
}

impl<'a> From<&'a Partition> for PartitionArg<'a> {
    fn from(p: &'a Partition) -> PartitionArg<'a> {
        PartitionArg::Borrowed(p)
    }
}

impl From<Partition> for PartitionArg<'_> {
    fn from(p: Partition) -> PartitionArg<'static> {
        PartitionArg::Owned(p)
    }
}

impl<'a> From<&'a PreparedPartition> for PartitionArg<'a> {
    fn from(p: &'a PreparedPartition) -> PartitionArg<'a> {
        PartitionArg::Prepared(p)
    }
}

/// One configured execution, built by [`Runtime::runner`].
///
/// Defaults: partition freshly built per the runtime's policy (after
/// symmetrizing the input when the program needs the undirected view), no
/// auxiliary init data, no tracing.
pub struct Runner<'a, P: VertexProgram> {
    rt: &'a Runtime,
    graph: &'a Csr,
    program: &'a P,
    part: Option<PartitionArg<'a>>,
    aux: Option<&'a [u64]>,
    sink: Option<&'a mut dyn TraceSink>,
    backend: Backend,
}

impl<'a, P: VertexProgram> Runner<'a, P> {
    /// Runs on an existing partition instead of building one. The graph is
    /// used as given (no symmetrization): a caller-supplied partition is
    /// taken to already match the intended graph view, as the former
    /// `run_partitioned` contract did. Passing a [`PreparedPartition`]
    /// additionally substitutes the handle's own graph view.
    pub fn partition(mut self, part: impl Into<PartitionArg<'a>>) -> Self {
        self.part = Some(part.into());
        self
    }

    /// Supplies per-vertex auxiliary data to the program's initialization
    /// (e.g. betweenness centrality's forward-pass counts).
    pub fn aux(mut self, aux: &'a [u64]) -> Self {
        self.aux = Some(aux);
        self
    }

    /// Emits one [`crate::trace::RoundRecord`] per (round, device) into
    /// `sink`; an enabled sink also populates
    /// [`ExecutionReport::rounds_detail`].
    pub fn trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Selects the multi-source execution backend (default
    /// [`Backend::Scalar`]); only consulted by [`Runner::batch`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Turns this run into a multi-source batch over `sources` (in the
    /// given order; the serve layer canonicalizes, the core does not).
    /// Tracing does not carry over — a batched engine run has no single
    /// per-source round stream to emit.
    pub fn batch(self, sources: &[VertexId]) -> MultiRunner<'a, P>
    where
        P: MultiSourceProgram,
    {
        MultiRunner {
            rt: self.rt,
            graph: self.graph,
            program: self.program,
            part: self.part,
            aux: self.aux,
            backend: self.backend,
            sources: sources.to_vec(),
            lane_width: LANE_WIDTH,
        }
    }

    /// Executes to convergence. Reported time excludes partitioning and
    /// loading, matching §IV-A.
    pub fn execute(self) -> Result<RunOutput, RunError> {
        self.execute_with_states().map(|(out, _)| out)
    }

    /// [`Runner::execute`], additionally gathering the final master state
    /// of every global vertex — the building block of multi-phase drivers
    /// (betweenness centrality).
    pub fn execute_with_states(self) -> Result<(RunOutput, Vec<P::State>), RunError> {
        let Runner {
            rt,
            graph,
            program,
            part,
            aux,
            sink,
            backend: _,
        } = self;
        if rt.platform.num_devices() == 0 {
            return Err(RunError::NoDevices);
        }

        // --- Resolve the graph view, partition, plan and degrees. The
        // prepared path reuses everything; the other paths build what they
        // are missing. Storage for the owned variants lives here so the
        // borrows handed to `execute_job` all have one lifetime.
        let sym;
        let mut owned_part;
        let built_plan;
        let built_degrees;

        let (g, part_ref, plan, out_degrees, locals): (
            &Csr,
            &Partition,
            &SyncPlan,
            &[u32],
            Vec<LocalGraph>,
        ) = match part {
            Some(PartitionArg::Prepared(prep)) => {
                // Jobs run on the permuted view when the handle carries a
                // layout the program may use (see LayoutPlan::applies_to);
                // gathered values are keyed by global id through l2g, so
                // the permutation is invisible in the output.
                match prep.layouts.as_ref().filter(|lp| lp.applies_to(program)) {
                    Some(lp) => (
                        &prep.graph,
                        &lp.part,
                        &lp.plan,
                        &prep.out_degrees[..],
                        lp.part.locals.clone(),
                    ),
                    None => (
                        &prep.graph,
                        &prep.part,
                        &prep.plan,
                        &prep.out_degrees[..],
                        prep.part.locals.clone(),
                    ),
                }
            }
            Some(PartitionArg::Borrowed(p)) => {
                if graph.num_vertices() == 0 {
                    return Err(RunError::EmptyGraph);
                }
                built_plan = SyncPlan::build(p, true, true);
                built_degrees = compute_out_degrees(graph);
                (graph, p, &built_plan, &built_degrees, p.locals.clone())
            }
            Some(PartitionArg::Owned(p)) => {
                if graph.num_vertices() == 0 {
                    return Err(RunError::EmptyGraph);
                }
                owned_part = p;
                built_plan = SyncPlan::build(&owned_part, true, true);
                built_degrees = compute_out_degrees(graph);
                // An owned partition donates its local graphs to the
                // devices instead of copying them.
                let locals = std::mem::take(&mut owned_part.locals);
                (graph, &owned_part, &built_plan, &built_degrees, locals)
            }
            None => {
                if graph.num_vertices() == 0 {
                    return Err(RunError::EmptyGraph);
                }
                let g = if program.needs_symmetric() {
                    sym = graph.symmetrize();
                    &sym
                } else {
                    graph
                };
                owned_part = Partition::build(
                    g,
                    rt.config.policy,
                    rt.platform.num_devices(),
                    rt.config.seed,
                );
                built_plan = SyncPlan::build(&owned_part, true, true);
                built_degrees = compute_out_degrees(g);
                let locals = std::mem::take(&mut owned_part.locals);
                (g, &owned_part, &built_plan, &built_degrees, locals)
            }
        };

        execute_job(
            rt,
            g,
            part_ref,
            plan,
            out_degrees,
            locals,
            program,
            aux,
            sink,
        )
    }
}

/// A configured multi-source batch, built by [`Runner::batch`].
///
/// The partition, sync plan and out-degrees are resolved **once** and
/// shared by every run the batch performs — one engine run per source
/// under [`Backend::Scalar`], one per ≤64-lane chunk under
/// [`Backend::Lanes`] — so both backends traverse the identical
/// partitioned view and their per-lane values can be compared bit for
/// bit.
pub struct MultiRunner<'a, P: VertexProgram> {
    rt: &'a Runtime,
    graph: &'a Csr,
    program: &'a P,
    part: Option<PartitionArg<'a>>,
    aux: Option<&'a [u64]>,
    backend: Backend,
    sources: Vec<VertexId>,
    lane_width: usize,
}

impl<'a, P> MultiRunner<'a, P>
where
    P: MultiSourceProgram,
{
    /// Selects the execution backend (default [`Backend::Scalar`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Caps the lanes per engine launch under [`Backend::Lanes`]
    /// (clamped to `1..=`[`LANE_WIDTH`], default [`LANE_WIDTH`]).
    /// Narrower launches trade scan amortization for a smaller per-device
    /// working set — the serve layer's degradation ladder splits a K=64
    /// batch into 2×32 / 4×16 / … launches until the footprint fits.
    /// Per-lane values are unaffected: every chunking of the same source
    /// list produces bit-identical lane outputs.
    pub fn lane_width(mut self, width: usize) -> Self {
        self.lane_width = width.clamp(1, LANE_WIDTH);
        self
    }

    /// Executes every source to convergence. Panics on an empty source
    /// list (the serve layer refuses those at admission; a direct caller
    /// passing none is a bug, not a runtime condition).
    pub fn execute(self) -> Result<MultiRunOutput, RunError> {
        assert!(
            !self.sources.is_empty(),
            "multi-source batch needs at least one source"
        );
        let MultiRunner {
            rt,
            graph,
            program,
            part,
            aux,
            backend,
            sources,
            lane_width,
        } = self;
        if rt.platform.num_devices() == 0 {
            return Err(RunError::NoDevices);
        }

        // Resolve the partitioned view once, for every run in the batch.
        // Non-prepared arguments are promoted to a PreparedPartition so
        // the whole batch shares one plan and one degree vector.
        let prep_storage;
        let prep: &PreparedPartition = match part {
            Some(PartitionArg::Prepared(p)) => p,
            Some(PartitionArg::Borrowed(p)) => {
                if graph.num_vertices() == 0 {
                    return Err(RunError::EmptyGraph);
                }
                prep_storage = PreparedPartition::from_partition(graph.clone(), p.clone());
                &prep_storage
            }
            Some(PartitionArg::Owned(p)) => {
                if graph.num_vertices() == 0 {
                    return Err(RunError::EmptyGraph);
                }
                prep_storage = PreparedPartition::from_partition(graph.clone(), p);
                &prep_storage
            }
            None => {
                prep_storage = rt.prepare(graph, program.needs_symmetric())?;
                &prep_storage
            }
        };

        let mut engine_reports = Vec::new();
        let mut lanes: Vec<LaneOutput> = Vec::with_capacity(sources.len());
        match backend {
            Backend::Scalar => {
                for &s in &sources {
                    let prog = program.for_source(s);
                    let (out, _) = execute_job(
                        rt,
                        &prep.graph,
                        &prep.part,
                        &prep.plan,
                        &prep.out_degrees,
                        prep.part.locals.clone(),
                        &prog,
                        aux,
                        None,
                    )?;
                    lanes.push(LaneOutput {
                        source: s,
                        summary: LaneSummary::of(&out.values),
                        values: out.values,
                    });
                    engine_reports.push(out.report);
                }
            }
            Backend::Lanes => {
                for chunk in sources.chunks(lane_width) {
                    let batched = program.batched(chunk);
                    let (out, states) = execute_job(
                        rt,
                        &prep.graph,
                        &prep.part,
                        &prep.plan,
                        &prep.out_degrees,
                        prep.part.locals.clone(),
                        &batched,
                        aux,
                        None,
                    )?;
                    for (l, &s) in chunk.iter().enumerate() {
                        let values: Vec<f64> =
                            states.iter().map(|st| batched.lane_output(l, st)).collect();
                        lanes.push(LaneOutput {
                            source: s,
                            summary: LaneSummary::of(&values),
                            values,
                        });
                    }
                    engine_reports.push(out.report);
                }
            }
        }
        Ok(MultiRunOutput {
            engine_reports,
            lanes,
        })
    }
}

/// Per-vertex out-degrees of `g`, as the programs' init contexts expect.
fn compute_out_degrees(g: &Csr) -> Vec<u32> {
    (0..g.num_vertices()).map(|v| g.out_degree(v)).collect()
}

/// The per-job execution path: OOM admission, device-state initialization
/// (each job gets its own `DeviceRun`s — and thus its own round scratch),
/// engine dispatch, and master gather. Everything passed in is shared
/// immutable state a resident service keeps loaded; nothing here mutates
/// it.
#[allow(clippy::too_many_arguments)]
fn execute_job<P: VertexProgram>(
    rt: &Runtime,
    g: &Csr,
    part: &Partition,
    plan: &SyncPlan,
    out_degrees: &[u32],
    locals: Vec<LocalGraph>,
    program: &P,
    aux: Option<&[u64]>,
    sink: Option<&mut dyn TraceSink>,
) -> Result<(RunOutput, Vec<P::State>), RunError> {
    let config = &rt.config;
    let divisor = config.scale_divisor;

    // --- Load check: every device must hold its partition. With
    // `config.spill`, a device whose raw footprint exceeds capacity is
    // re-costed at the compressed-adjacency footprint and, when that fits,
    // runs spilled ([`crate::device::SpillState`]). Raw admission is
    // unchanged: spill only widens the feasible region.
    assert!(
        !(config.spill && config.legacy_hotpath),
        "spill requires the vectorized kernel bodies; legacy_hotpath is incompatible"
    );
    let state_bytes = program.state_bytes();
    let mut memory = Vec::with_capacity(locals.len());
    let mut spilled = Vec::with_capacity(locals.len());
    for lg in &locals {
        let raw =
            DeviceRun::<P>::required_bytes_with(lg, plan, program, state_bytes, divisor, false);
        let compressed = if config.spill {
            DeviceRun::<P>::required_bytes_with(lg, plan, program, state_bytes, divisor, true)
        } else {
            raw // spill disabled: the fallback candidate is the raw cost itself
        };
        let cost = ReprCost { raw, compressed };
        let capacity = rt.platform.gpus[lg.device as usize].memory_bytes;
        match cost.choose(capacity) {
            Some(repr) => {
                spilled.push(repr == GraphRepr::Compressed);
                memory.push(cost.bytes(repr));
            }
            None => {
                return Err(RunError::Oom {
                    device: lg.device,
                    err: OomError {
                        // The smallest footprint that was refused: raw
                        // without spill, compressed with it.
                        requested: raw.min(compressed),
                        in_use: 0,
                        capacity,
                    },
                });
            }
        }
    }

    // --- Initialize device state.
    let ctx = InitCtx {
        num_vertices: g.num_vertices(),
        out_degrees,
        aux,
    };
    let mut devices: Vec<DeviceRun<P>> = locals
        .into_iter()
        .map(|lg| {
            let spec = rt.platform.gpus[lg.device as usize];
            let mut d = DeviceRun::new(lg, spec, program, &ctx);
            d.peak_memory = memory[d.dev as usize];
            if spilled[d.dev as usize] {
                d.enable_spill();
            }
            d
        })
        .collect();

    // --- Execute.
    let mut net = NetModel::new(rt.platform.clone());
    net.direct_device = config.gpudirect;
    // Programs that cannot run asynchronously fall back to BSP, as
    // D-IrGL does for benchmarks that "can[not] be run asynchronously"
    // (SIII-B).
    let model = if program.supports_async() {
        config.variant.model
    } else {
        crate::config::ExecModel::Sync
    };
    // Enabled sinks are forked so the same records both reach the
    // caller and feed the report's round summaries; the disabled
    // (no-op) path keeps zero per-round assembly cost.
    let mut noop = NoopSink;
    let sink: &mut dyn TraceSink = match sink {
        Some(s) => s,
        None => &mut noop,
    };
    let (outcome, rounds_detail) = if sink.enabled() {
        let mut fork = ForkSink {
            outer: sink,
            collected: Default::default(),
        };
        let o = run_engine(
            model,
            program,
            &mut devices,
            part,
            plan,
            &net,
            config,
            &mut fork,
        );
        (o, RoundSummary::from_records(&fork.collected.records))
    } else {
        (
            run_engine(model, program, &mut devices, part, plan, &net, config, sink),
            Vec::new(),
        )
    };

    // --- Gather outputs and states from masters.
    let mut values = vec![0.0f64; g.num_vertices() as usize];
    let mut states: Vec<P::State> = Vec::with_capacity(g.num_vertices() as usize);
    // Seed with any master's copy; overwritten per global vertex below.
    let template = devices
        .iter()
        .find_map(|d| d.state.first().copied())
        .unwrap_or_else(|| program.init_state(0, &ctx));
    states.resize(g.num_vertices() as usize, template);
    for d in &devices {
        for lv in 0..d.lg.num_masters {
            let gv = d.lg.l2g[lv as usize] as usize;
            values[gv] = program.output(&d.state[lv as usize]);
            states[gv] = d.state[lv as usize];
        }
    }

    let report = ExecutionReport {
        total_time: outcome
            .clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO),
        compute_per_device: devices.iter().map(|d| d.compute_time).collect(),
        wait_per_host: outcome.host_wait,
        comm_bytes: outcome.comm_bytes,
        messages: outcome.messages,
        rounds: outcome.rounds,
        min_rounds: outcome.min_rounds,
        max_rounds: outcome.max_rounds,
        work_items: devices.iter().map(|d| d.work_items).sum(),
        memory_per_device: devices.iter().map(|d| d.peak_memory).collect(),
        rounds_detail,
        resilience: outcome.resilience,
    };
    Ok((RunOutput { report, values }, states))
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(platform: Platform, config: RunConfig) -> Runtime {
        Runtime { platform, config }
    }

    /// Starts building a run of `program` on `graph`; see [`Runner`].
    pub fn runner<'a, P: VertexProgram>(&'a self, graph: &'a Csr, program: &'a P) -> Runner<'a, P> {
        Runner {
            rt: self,
            graph,
            program,
            part: None,
            aux: None,
            sink: None,
            backend: Backend::Scalar,
        }
    }

    /// Builds a resident [`PreparedPartition`] of `graph` under this
    /// runtime's policy, device count and seed — exactly the partition a
    /// bare `runner(...).execute()` would build, so jobs against the
    /// handle reproduce one-shot results byte for byte. Pass
    /// `symmetrize = true` for programs that run on the undirected view
    /// (cc, kcore).
    pub fn prepare(&self, graph: &Csr, symmetrize: bool) -> Result<PreparedPartition, RunError> {
        let g = if symmetrize {
            graph.symmetrize()
        } else {
            graph.clone()
        };
        PreparedPartition::build(
            g,
            self.config.policy,
            self.platform.num_devices(),
            self.config.seed,
        )
        .map(|prep| prep.with_layout(self.config.layout))
    }

    /// Predicts the per-device memory footprint of running `program`
    /// against `prep`, **by the same formula the load check charges**
    /// ([`crate::device::DeviceRun::required_bytes`], including the
    /// K-scaled `state_bytes` of batched programs): `footprint(...)[d]`
    /// equals what a run would record in
    /// [`ExecutionReport::memory_per_device`] for device `d`, and the run
    /// OOMs iff some `footprint(...)[d]` exceeds device `d`'s capacity.
    /// This is the admission governor's oracle: prediction and engine
    /// admission cannot disagree because they are one computation.
    pub fn footprint<P: VertexProgram>(&self, prep: &PreparedPartition, program: &P) -> Vec<u64> {
        self.footprint_with(prep, program, false)
    }

    /// [`Runtime::footprint`] with the adjacency held compressed — the
    /// spill ladder's oracle: what a device admitted under
    /// [`RunConfig::spill`] would record when its raw footprint does not
    /// fit. Same one-computation guarantee: this is the exact compressed
    /// candidate the load check costs.
    pub fn footprint_spilled<P: VertexProgram>(
        &self,
        prep: &PreparedPartition,
        program: &P,
    ) -> Vec<u64> {
        self.footprint_with(prep, program, true)
    }

    fn footprint_with<P: VertexProgram>(
        &self,
        prep: &PreparedPartition,
        program: &P,
        spilled: bool,
    ) -> Vec<u64> {
        let state_bytes = program.state_bytes();
        let mut out = vec![0u64; self.platform.num_devices() as usize];
        for lg in &prep.part.locals {
            let need = DeviceRun::<P>::required_bytes_with(
                lg,
                &prep.plan,
                program,
                state_bytes,
                self.config.scale_divisor,
                spilled,
            );
            if let Some(slot) = out.get_mut(lg.device as usize) {
                *slot = need;
            }
        }
        out
    }

    /// Starts building one job of `program` against a resident prepared
    /// handle: the service-shaped execution unit `(shared partition,
    /// program, source)`. Sugar for
    /// `runner(prep.graph(), program).partition(prep)`.
    pub fn job<'a, P: VertexProgram>(
        &'a self,
        prep: &'a PreparedPartition,
        program: &'a P,
    ) -> Runner<'a, P> {
        Runner {
            rt: self,
            graph: &prep.graph,
            program,
            part: Some(PartitionArg::Prepared(prep)),
            aux: None,
            sink: None,
            backend: Backend::Scalar,
        }
    }

    /// The benchmark source convention (bfs, sssp traverse from the vertex
    /// with the highest out-degree). `None` when the graph has no vertices
    /// — callers must treat a degenerate input as an error, not a panic.
    pub fn max_out_degree_source(g: &Csr) -> Option<u32> {
        (g.num_vertices() > 0).then(|| g.max_out_degree_vertex())
    }
}
