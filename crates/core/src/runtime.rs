//! The runtime: partition → load (with OOM check) → execute → report.

use dirgl_comm::{NetModel, SimTime, SyncPlan};
use dirgl_gpusim::{OomError, Platform};
use dirgl_graph::csr::Csr;
use dirgl_partition::Partition;

use crate::basp::run_basp_traced;
use crate::bsp::{run_bsp_traced, EngineOutcome};
use crate::config::{ExecModel, RunConfig};
use crate::device::DeviceRun;
use crate::program::{InitCtx, VertexProgram};
use crate::report::{ExecutionReport, RoundSummary};
use crate::trace::{ForkSink, NoopSink, TraceSink};

/// A run failure.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// A device could not hold its partition — the paper's missing points.
    Oom {
        /// Device that failed to load.
        device: u32,
        /// Allocation detail.
        err: OomError,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Oom { device, err } => write!(f, "device {device}: {err}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A completed run: the report plus per-global-vertex outputs for
/// verification.
pub struct RunOutput {
    /// Timing, volume, balance and memory measurements.
    pub report: ExecutionReport,
    /// Final output of every global vertex (from its master proxy).
    pub values: Vec<f64>,
}

/// Executes vertex programs on a simulated multi-GPU platform with a fixed
/// configuration — the D-IrGL equivalent.
pub struct Runtime {
    /// Devices and interconnect.
    pub platform: Platform,
    /// Policy, variant and scaling.
    pub config: RunConfig,
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(platform: Platform, config: RunConfig) -> Runtime {
        Runtime { platform, config }
    }

    /// Runs `program` on `graph` to convergence.
    ///
    /// Symmetrizes the input first when the benchmark requires the
    /// undirected view (cc, kcore). Reported time excludes partitioning and
    /// loading, matching §IV-A.
    pub fn run<P: VertexProgram>(&self, graph: &Csr, program: &P) -> Result<RunOutput, RunError> {
        self.run_traced(graph, program, &mut NoopSink)
    }

    /// [`Runtime::run`] with per-round trace emission into `sink`. An
    /// enabled sink also populates [`ExecutionReport::rounds_detail`].
    pub fn run_traced<P: VertexProgram>(
        &self,
        graph: &Csr,
        program: &P,
        sink: &mut dyn TraceSink,
    ) -> Result<RunOutput, RunError> {
        let sym;
        let g = if program.needs_symmetric() {
            sym = graph.symmetrize();
            &sym
        } else {
            graph
        };
        let part = Partition::build(
            g,
            self.config.policy,
            self.platform.num_devices(),
            self.config.seed,
        );
        self.run_partitioned_traced(g, part, program, sink)
    }

    /// Runs on an existing partition (harnesses reuse partitions across
    /// variants, as the paper does when comparing optimizations).
    pub fn run_partitioned<P: VertexProgram>(
        &self,
        g: &Csr,
        part: Partition,
        program: &P,
    ) -> Result<RunOutput, RunError> {
        self.run_partitioned_aux(g, part, program, None)
            .map(|(out, _)| out)
    }

    /// [`Runtime::run_partitioned`] with per-round trace emission.
    pub fn run_partitioned_traced<P: VertexProgram>(
        &self,
        g: &Csr,
        part: Partition,
        program: &P,
        sink: &mut dyn TraceSink,
    ) -> Result<RunOutput, RunError> {
        self.run_partitioned_aux_traced(g, part, program, None, sink)
            .map(|(out, _)| out)
    }

    /// [`Runtime::run_partitioned`] with optional per-vertex auxiliary data
    /// for the program's initialization and the final master *states*
    /// gathered per global vertex — the building blocks of multi-phase
    /// drivers (betweenness centrality).
    pub fn run_partitioned_aux<P: VertexProgram>(
        &self,
        g: &Csr,
        part: Partition,
        program: &P,
        aux: Option<&[u64]>,
    ) -> Result<(RunOutput, Vec<P::State>), RunError> {
        self.run_partitioned_aux_traced(g, part, program, aux, &mut NoopSink)
    }

    /// [`Runtime::run_partitioned_aux`] with per-round trace emission: the
    /// engine delivers one [`crate::trace::RoundRecord`] per (round,
    /// device) to `sink`, and when the sink is enabled the report's
    /// [`ExecutionReport::rounds_detail`] is populated from the same
    /// records.
    pub fn run_partitioned_aux_traced<P: VertexProgram>(
        &self,
        g: &Csr,
        mut part: Partition,
        program: &P,
        aux: Option<&[u64]>,
        sink: &mut dyn TraceSink,
    ) -> Result<(RunOutput, Vec<P::State>), RunError> {
        let divisor = self.config.scale_divisor;
        let plan = SyncPlan::build(&part, true, true);

        // --- Load: charge every device's working set, failing on OOM.
        let state_bytes = std::mem::size_of::<P::State>() as u64;
        let mut memory = Vec::with_capacity(part.locals.len());
        for lg in &part.locals {
            let need = DeviceRun::<P>::required_bytes(lg, &plan, program, state_bytes, divisor);
            let capacity = self.platform.gpus[lg.device as usize].memory_bytes;
            if need > capacity {
                return Err(RunError::Oom {
                    device: lg.device,
                    err: OomError {
                        requested: need,
                        in_use: 0,
                        capacity,
                    },
                });
            }
            memory.push(need);
        }

        // --- Initialize device state.
        let out_degrees: Vec<u32> = (0..g.num_vertices()).map(|v| g.out_degree(v)).collect();
        let ctx = InitCtx {
            num_vertices: g.num_vertices(),
            out_degrees: &out_degrees,
            aux,
        };
        let locals = std::mem::take(&mut part.locals);
        let mut devices: Vec<DeviceRun<P>> = locals
            .into_iter()
            .map(|lg| {
                let spec = self.platform.gpus[lg.device as usize];
                let mut d = DeviceRun::new(lg, spec, program, &ctx);
                d.peak_memory = memory[d.dev as usize];
                d
            })
            .collect();

        // --- Execute.
        let mut net = NetModel::new(self.platform.clone());
        net.direct_device = self.config.gpudirect;
        // Programs that cannot run asynchronously fall back to BSP, as
        // D-IrGL does for benchmarks that "can[not] be run asynchronously"
        // (SIII-B).
        let model = if program.supports_async() {
            self.config.variant.model
        } else {
            ExecModel::Sync
        };
        // Enabled sinks are forked so the same records both reach the
        // caller and feed the report's round summaries; the disabled
        // (no-op) path keeps zero per-round assembly cost.
        let mut exec = |engine_sink: &mut dyn TraceSink| -> EngineOutcome {
            match model {
                ExecModel::Sync => run_bsp_traced(
                    program,
                    &mut devices,
                    &part,
                    &plan,
                    &net,
                    &self.config,
                    engine_sink,
                ),
                ExecModel::Async => run_basp_traced(
                    program,
                    &mut devices,
                    &part,
                    &plan,
                    &net,
                    &self.config,
                    engine_sink,
                ),
            }
        };
        let (outcome, rounds_detail) = if sink.enabled() {
            let mut fork = ForkSink {
                outer: sink,
                collected: Default::default(),
            };
            let o = exec(&mut fork);
            (o, RoundSummary::from_records(&fork.collected.records))
        } else {
            (exec(sink), Vec::new())
        };

        // --- Gather outputs and states from masters.
        let mut values = vec![0.0f64; g.num_vertices() as usize];
        let mut states: Vec<P::State> = Vec::with_capacity(g.num_vertices() as usize);
        // Seed with any master's copy; overwritten per global vertex below.
        let template = devices
            .iter()
            .find_map(|d| d.state.first().copied())
            .unwrap_or_else(|| program.init_state(0, &ctx));
        states.resize(g.num_vertices() as usize, template);
        for d in &devices {
            for lv in 0..d.lg.num_masters {
                let gv = d.lg.l2g[lv as usize] as usize;
                values[gv] = program.output(&d.state[lv as usize]);
                states[gv] = d.state[lv as usize];
            }
        }

        let report = ExecutionReport {
            total_time: outcome
                .clocks
                .iter()
                .copied()
                .max()
                .unwrap_or(SimTime::ZERO),
            compute_per_device: devices.iter().map(|d| d.compute_time).collect(),
            wait_per_host: outcome.host_wait,
            comm_bytes: outcome.comm_bytes,
            messages: outcome.messages,
            rounds: outcome.rounds,
            min_rounds: outcome.min_rounds,
            max_rounds: outcome.max_rounds,
            work_items: devices.iter().map(|d| d.work_items).sum(),
            memory_per_device: devices.iter().map(|d| d.peak_memory).collect(),
            rounds_detail,
        };
        Ok((RunOutput { report, values }, states))
    }

    /// True when the benchmark is expected to traverse from a source (bfs,
    /// sssp) — convenience for harnesses picking sources.
    pub fn max_out_degree_source(g: &Csr) -> u32 {
        g.max_out_degree_vertex()
    }
}
