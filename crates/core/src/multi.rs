//! K-lane multi-source batching: one edge scan advances up to 64 sources.
//!
//! Traversal problems from different sources share the *structure* of
//! every round — the same CSR walk, the same sync plan, the same
//! reduce/broadcast links — and differ only in per-vertex label values.
//! [`Lanes`] exploits that: it lifts any lane-independent
//! [`VertexProgram`] (one whose semantics depend only on its source
//! vertex) to a batched program whose per-vertex state is a *lane array*
//! of `K ≤ 64` scalar states plus packed `u64` lane masks, the in-core
//! view of the [`dirgl_comm::LaneFrontier`] bit matrix. Every engine
//! mechanism — frontier worklists, UO extraction, BASP event timing,
//! checkpoint/rollback — operates on the batched program unchanged,
//! because [`Lanes`] is just another `VertexProgram`.
//!
//! This is the semiring framing of GraphBLAST-style batched traversal:
//! a single-source round is a masked sparse matrix–vector product over
//! the (min, +) semiring; K sources make the vector a K-column bit
//! matrix and the round a masked SpMM. Here the "matrix" is the CSR scan
//! the engines already perform, and the K columns ride along as packed
//! words.
//!
//! ## Per-lane identity
//!
//! The contract (pinned by the lane-agreement proptests) is that lane
//! `l` of a batched run is **byte-identical** to the corresponding
//! scalar single-source run:
//!
//! * every per-lane hook iterates active lanes in ascending order, so
//!   lane `l`'s sequence of `accumulate`/`absorb`/`set_canonical` calls
//!   is exactly the subsequence of the batched call stream that a scalar
//!   run would produce — even non-idempotent float accumulation
//!   (bc-forward's sigma sums) stays bit-identical;
//! * lane masks (`pending`, `cur`, `updated`, `dirty`) mirror, per lane,
//!   exactly the engine's own per-vertex worklist/updated/dirty bits, so
//!   a lane fires precisely when its scalar run would;
//! * bottom-up rounds scan exhaustively ([`VertexProgram::pull_exhaustive`])
//!   and emit from *settled* state ([`VertexProgram::pull_msg`]) rather
//!   than the per-round push mask: in a synchronous round every settled
//!   in-neighbor of a still-unsettled lane carries that lane's current
//!   level, so the exhaustive min equals the scalar first-hit value.
//!
//! ## Message accounting
//!
//! A batched wire entry is a lane mask word plus one value per lane:
//! all-shared entries always carry every live lane
//! ([`VertexProgram::wire_bytes`]), updated-only entries carry only
//! their active lanes ([`VertexProgram::wire_payload_bytes`]), so
//! simulated bytes scale with lane activity exactly as the per-column
//! payloads of a real batched implementation would.

use dirgl_comm::{live_mask, VAL_BYTES};
use dirgl_graph::csr::VertexId;

use crate::program::{InitCtx, Style, VertexProgram};

/// Hard lane ceiling: one `u64` mask word per vertex.
pub const LANE_WIDTH: usize = 64;

/// A vertex program whose instances differ only in their source vertex —
/// the precondition for lane-independent batching.
///
/// Each implementor also names its **batched form**: the program that
/// advances one lane per source in a single engine run. Most programs
/// use the generic value-lane adapter (`type Batched = Lanes<Self>`),
/// which ships one wire value per active lane. Programs whose per-lane
/// value is derivable from the round clock opt into a denser encoding —
/// bfs batches as [`MsBfs`], whose wire is a single lane-mask word.
pub trait MultiSourceProgram: VertexProgram + Sized {
    /// The batched program advancing one lane per source.
    type Batched: BatchedProgram;

    /// The same program rooted at `source`.
    fn for_source(&self, source: VertexId) -> Self;

    /// Batches this program's family across `sources`, one lane per
    /// source in the given order. Panics unless `1 ..= 64` sources.
    fn batched(&self, sources: &[VertexId]) -> Self::Batched;
}

/// A program produced by [`MultiSourceProgram::batched`]: a
/// [`VertexProgram`] whose per-vertex state carries one lane per source,
/// and which can report each lane's scalar output.
pub trait BatchedProgram: VertexProgram {
    /// Number of lanes (K).
    fn width(&self) -> usize;

    /// Lane `l`'s scalar output for `state` — what the corresponding
    /// single-source run's [`VertexProgram::output`] would report.
    fn lane_output(&self, l: usize, state: &Self::State) -> f64;
}

/// Per-vertex state of a batched run: `K ≤ 64` scalar lane states plus
/// packed lane masks tracking, per lane, what the engine tracks per
/// vertex.
#[derive(Clone, Copy, Debug)]
pub struct LaneState<S: Copy> {
    /// Scalar state of each lane (slots ≥ K hold the lane-0 template and
    /// are never read).
    pub lane: [S; LANE_WIDTH],
    /// Lanes awaiting a push (the per-lane worklist bit).
    pub pending: u64,
    /// Lanes pushing in the current compute call (set by `begin_push`,
    /// read by `edge_msg`).
    pub cur: u64,
    /// Lanes whose accumulator changed since the last `take_delta` (the
    /// per-lane UO bit).
    pub updated: u64,
    /// Master lanes whose canonical value changed since the last sync
    /// clear (the per-lane broadcast-dirty bit).
    pub dirty: u64,
}

/// Equality compares lane *values* only: the mask words are engine
/// bookkeeping, and `begin_push` consuming `pending` must not read as a
/// state change (the device flags masters whose state changed during
/// compute for broadcast).
impl<S: Copy + PartialEq> PartialEq for LaneState<S> {
    fn eq(&self, other: &Self) -> bool {
        self.lane[..] == other.lane[..]
    }
}

/// A batched wire value: the active-lane mask plus one scalar wire value
/// per active lane (inactive slots hold `W::default()` and are never
/// read).
#[derive(Clone, Copy)]
pub struct LaneWire<W: Copy> {
    /// Which lanes carry a value.
    pub mask: u64,
    /// Per-lane values, positionally.
    pub vals: [W; LANE_WIDTH],
}

impl<W: Copy + PartialEq> PartialEq for LaneWire<W> {
    fn eq(&self, other: &Self) -> bool {
        self.mask == other.mask && lanes_of(self.mask).all(|l| self.vals[l] == other.vals[l])
    }
}

impl<W: Copy + std::fmt::Debug> std::fmt::Debug for LaneWire<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for l in lanes_of(self.mask) {
            d.entry(&l, &self.vals[l]);
        }
        d.finish()
    }
}

/// Iterates the set bit positions of `mask` in ascending order — the
/// order that keeps every lane's call subsequence identical to its
/// scalar run.
#[inline]
pub fn lanes_of(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(l)
        }
    })
}

/// The K-lane batching adapter: a [`VertexProgram`] over [`LaneState`]
/// arrays that advances one scalar program per lane.
pub struct Lanes<P: VertexProgram> {
    progs: Vec<P>,
    /// Per-lane auxiliary init words overriding the runner-level aux
    /// (multi-phase drivers: bc's backward sweep seeds each lane with its
    /// own forward results).
    lane_aux: Vec<Option<Vec<u64>>>,
    live: u64,
    style: Style,
    topo: bool,
}

impl<P: VertexProgram> Lanes<P> {
    /// Batches `base` across `sources`, one lane per source in the given
    /// order. Panics unless `1 ..= 64` sources.
    pub fn new(base: &P, sources: &[VertexId]) -> Lanes<P>
    where
        P: MultiSourceProgram,
    {
        Self::from_programs(sources.iter().map(|&s| base.for_source(s)).collect())
    }

    /// Batches explicit per-lane program instances (they must agree on
    /// style and graph requirements). Panics unless `1 ..= 64` lanes.
    pub fn from_programs(progs: Vec<P>) -> Lanes<P> {
        assert!(
            (1..=LANE_WIDTH).contains(&progs.len()),
            "lane batch must hold 1..=64 programs, got {}",
            progs.len()
        );
        let style = progs[0].style();
        assert!(
            progs.iter().all(|p| p.style() == style),
            "all lanes must share a traversal style"
        );
        let live = live_mask(progs.len() as u32);
        let topo = matches!(style, Style::PullTopologyDriven | Style::PushTopologyDriven);
        Lanes {
            lane_aux: progs.iter().map(|_| None).collect(),
            progs,
            live,
            style,
            topo,
        }
    }

    /// Number of lanes (K).
    pub fn width(&self) -> usize {
        self.progs.len()
    }

    /// Mask of live lanes: `live_mask(K)`.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// The scalar program driving lane `l`.
    pub fn lane_program(&self, l: usize) -> &P {
        &self.progs[l]
    }

    /// Seeds lane `l`'s initialization with its own auxiliary words
    /// (overrides any runner-level aux for that lane).
    pub fn set_lane_aux(&mut self, l: usize, aux: Vec<u64>) {
        self.lane_aux[l] = Some(aux);
    }

    /// Lane `l`'s scalar output for `state` — what the corresponding
    /// single-source run's [`VertexProgram::output`] would report.
    pub fn lane_output(&self, l: usize, state: &LaneState<P::State>) -> f64 {
        self.progs[l].output(&state.lane[l])
    }

    /// The init context lane `l` sees: the global one with its aux words
    /// swapped in when set.
    fn lane_ctx<'a>(&'a self, l: usize, ctx: &InitCtx<'a>) -> InitCtx<'a> {
        InitCtx {
            num_vertices: ctx.num_vertices,
            out_degrees: ctx.out_degrees,
            aux: self.lane_aux[l].as_deref().or(ctx.aux),
        }
    }
}

impl<P> BatchedProgram for Lanes<P>
where
    P: VertexProgram,
    P::Wire: Default,
{
    fn width(&self) -> usize {
        Lanes::width(self)
    }

    fn lane_output(&self, l: usize, state: &LaneState<P::State>) -> f64 {
        Lanes::lane_output(self, l, state)
    }
}

impl<P> VertexProgram for Lanes<P>
where
    P: VertexProgram,
    P::Wire: Default,
{
    type State = LaneState<P::State>;
    type Wire = LaneWire<P::Wire>;

    fn name(&self) -> &'static str {
        self.progs[0].name()
    }

    fn style(&self) -> Style {
        self.style
    }

    fn needs_symmetric(&self) -> bool {
        self.progs[0].needs_symmetric()
    }

    fn uses_weights(&self) -> bool {
        self.progs[0].uses_weights()
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> Self::State {
        let first = self.progs[0].init_state(gv, &self.lane_ctx(0, ctx));
        let mut lane = [first; LANE_WIDTH];
        for (l, p) in self.progs.iter().enumerate().skip(1) {
            lane[l] = p.init_state(gv, &self.lane_ctx(l, ctx));
        }
        let mut pending = 0u64;
        if !self.topo {
            for (l, p) in self.progs.iter().enumerate() {
                if p.initially_active(gv, &self.lane_ctx(l, ctx)) {
                    pending |= 1 << l;
                }
            }
        }
        LaneState {
            lane,
            pending,
            cur: 0,
            updated: 0,
            dirty: 0,
        }
    }

    fn initially_active(&self, gv: VertexId, ctx: &InitCtx<'_>) -> bool {
        self.progs
            .iter()
            .enumerate()
            .any(|(l, p)| p.initially_active(gv, &self.lane_ctx(l, ctx)))
    }

    fn begin_push(&self, state: &mut Self::State) -> bool {
        let cur = if self.topo {
            self.live
        } else {
            state.pending & self.live
        };
        state.pending &= !cur;
        let mut mask = 0u64;
        for l in lanes_of(cur) {
            if self.progs[l].begin_push(&mut state.lane[l]) {
                mask |= 1 << l;
            }
        }
        state.cur = mask;
        mask != 0
    }

    fn edge_msg(&self, state: &Self::State, weight: u32) -> Option<Self::Wire> {
        let mut mask = 0u64;
        let mut vals = [P::Wire::default(); LANE_WIDTH];
        for l in lanes_of(state.cur & self.live) {
            if let Some(w) = self.progs[l].edge_msg(&state.lane[l], weight) {
                mask |= 1 << l;
                vals[l] = w;
            }
        }
        (mask != 0).then_some(LaneWire { mask, vals })
    }

    fn pull_contribution(&self, neighbor: &Self::State, weight: u32) -> Option<Self::Wire> {
        let mut mask = 0u64;
        let mut vals = [P::Wire::default(); LANE_WIDTH];
        for l in lanes_of(self.live) {
            if let Some(w) = self.progs[l].pull_contribution(&neighbor.lane[l], weight) {
                mask |= 1 << l;
                vals[l] = w;
            }
        }
        (mask != 0).then_some(LaneWire { mask, vals })
    }

    fn accumulate(&self, state: &mut Self::State, msg: Self::Wire) -> bool {
        let mut changed = 0u64;
        for l in lanes_of(msg.mask & self.live) {
            if self.progs[l].accumulate(&mut state.lane[l], msg.vals[l]) {
                changed |= 1 << l;
            }
        }
        state.updated |= changed;
        changed != 0
    }

    fn absorb(&self, state: &mut Self::State) -> bool {
        let mut changed = 0u64;
        for l in lanes_of(self.live) {
            if self.progs[l].absorb(&mut state.lane[l]) {
                changed |= 1 << l;
            }
        }
        state.dirty |= changed;
        state.pending |= changed;
        changed != 0
    }

    fn take_delta(&self, state: &mut Self::State) -> Self::Wire {
        let mask = state.updated & self.live;
        state.updated = 0;
        let mut vals = [P::Wire::default(); LANE_WIDTH];
        for l in lanes_of(mask) {
            vals[l] = self.progs[l].take_delta(&mut state.lane[l]);
        }
        LaneWire { mask, vals }
    }

    fn canonical(&self, state: &Self::State) -> Self::Wire {
        let mask = state.dirty & self.live;
        let mut vals = [P::Wire::default(); LANE_WIDTH];
        for l in lanes_of(mask) {
            vals[l] = self.progs[l].canonical(&state.lane[l]);
        }
        LaneWire { mask, vals }
    }

    fn canonical_async(&self, state: &Self::State) -> Self::Wire {
        let mask = state.dirty & self.live;
        let mut vals = [P::Wire::default(); LANE_WIDTH];
        for l in lanes_of(mask) {
            vals[l] = self.progs[l].canonical_async(&state.lane[l]);
        }
        LaneWire { mask, vals }
    }

    fn after_broadcast(&self, state: &mut Self::State) {
        for l in lanes_of(self.live) {
            self.progs[l].after_broadcast(&mut state.lane[l]);
        }
    }

    fn set_canonical(&self, state: &mut Self::State, v: Self::Wire) -> bool {
        let mut changed = 0u64;
        for l in lanes_of(v.mask & self.live) {
            if self.progs[l].set_canonical(&mut state.lane[l], v.vals[l]) {
                changed |= 1 << l;
            }
        }
        state.pending |= changed;
        changed != 0
    }

    fn merge_canonical_async(&self, state: &mut Self::State, v: Self::Wire) -> bool {
        let mut changed = 0u64;
        for l in lanes_of(v.mask & self.live) {
            if self.progs[l].merge_canonical_async(&mut state.lane[l], v.vals[l]) {
                changed |= 1 << l;
            }
        }
        state.pending |= changed;
        changed != 0
    }

    fn consume_after_pull(&self, state: &mut Self::State) {
        for l in lanes_of(self.live) {
            self.progs[l].consume_after_pull(&mut state.lane[l]);
        }
    }

    fn pull_when(&self, active: u64, total: u64) -> bool {
        // One global density test over the aggregated bit-matrix frontier:
        // `active` is the sum of per-vertex pending-lane popcounts,
        // `total` the lane-scaled vertex count (`|V| × K`).
        self.progs[0].pull_when(active, total)
    }

    fn pull_ready(&self, state: &Self::State) -> bool {
        lanes_of(self.live).any(|l| self.progs[l].pull_ready(&state.lane[l]))
    }

    fn pull_msg(&self, state: &Self::State, weight: u32) -> Option<Self::Wire> {
        // Bottom-up reads *settled* neighbor state, lane by lane — the
        // neighbor's per-round push mask is stale by the time a pull
        // round runs, so every live lane is consulted.
        let mut mask = 0u64;
        let mut vals = [P::Wire::default(); LANE_WIDTH];
        for l in lanes_of(self.live) {
            if let Some(w) = self.progs[l].pull_msg(&state.lane[l], weight) {
                mask |= 1 << l;
                vals[l] = w;
            }
        }
        (mask != 0).then_some(LaneWire { mask, vals })
    }

    fn pull_exhaustive(&self) -> bool {
        // A first-hit exit would serve only the lowest live lane; every
        // lane needs to see its candidates.
        true
    }

    fn frontier_weight(&self, state: &Self::State) -> u64 {
        (state.pending & self.live).count_ones() as u64
    }

    fn lanes(&self) -> u64 {
        self.progs.len() as u64
    }

    fn state_bytes(&self) -> u64 {
        // A device kernel allocates K lane slots plus the four mask
        // words, not the host struct's fixed 64-slot array.
        self.progs.len() as u64 * std::mem::size_of::<P::State>() as u64 + 32
    }

    fn wire_bytes(&self) -> u64 {
        // All-shared entries always carry the mask word plus every live
        // lane's value.
        8 + self.progs.len() as u64 * VAL_BYTES
    }

    fn wire_payload_bytes(&self, w: &Self::Wire) -> u64 {
        // Updated-only entries carry the mask word plus only the active
        // lanes — bytes scale with lane activity.
        8 + (w.mask & self.live).count_ones() as u64 * VAL_BYTES
    }

    fn wants_sync_clear(&self) -> bool {
        true
    }

    fn on_sync_cleared(&self, state: &mut Self::State) {
        state.dirty = 0;
    }

    fn supports_async(&self) -> bool {
        self.progs.iter().all(|p| p.supports_async())
    }

    fn on_round_start(&self, round: u32) {
        for p in &self.progs {
            p.on_round_start(round);
        }
    }

    fn max_rounds(&self) -> u32 {
        self.progs.iter().map(|p| p.max_rounds()).max().unwrap_or(1)
    }

    fn output(&self, state: &Self::State) -> f64 {
        // Aggregate view for the generic `execute()` path; per-lane
        // outputs come from [`Lanes::lane_output`] via the multi-source
        // runner.
        lanes_of(self.live)
            .map(|l| self.progs[l].output(&state.lane[l]))
            .sum()
    }
}

/// Per-vertex state of a multi-source bfs batch: one level per lane plus
/// packed lane masks. Unlike [`LaneState`], there is no per-lane wire
/// value anywhere — discovery masks are the only thing exchanged.
#[derive(Clone, Copy, Debug)]
pub struct MsBfsState {
    /// Discovery level of each lane ([`MS_UNREACHED`] until seen). `u16`
    /// on purpose: BFS levels are bounded by graph diameter, which never
    /// approaches 65 534 on these inputs, and halving the lane array
    /// halves the dominant state traffic of a batched pass (`settle`
    /// guards the bound).
    pub level: [u16; LANE_WIDTH],
    /// Lanes whose level is settled.
    pub seen: u64,
    /// Lanes awaiting a push.
    pub pending: u64,
    /// Lanes pushing in the current compute call.
    pub cur: u64,
    /// Lanes discovered via `accumulate` since the last `take_delta`
    /// (the reduce-extraction mask).
    pub fresh: u64,
    /// Lanes accumulated but not yet settled — the mask analogue of the
    /// scalar accumulator. Settling happens in `absorb` (masters) or
    /// `set_canonical` (mirrors), never in `accumulate` itself: a mirror
    /// that locally accumulates a lane must still activate when the
    /// master's broadcast arrives, exactly as the scalar acc/dist split
    /// guarantees.
    pub acc: u64,
}

/// Equality compares settled levels only — the mask words are engine
/// bookkeeping (see [`LaneState`]'s `PartialEq` for the argument).
impl PartialEq for MsBfsState {
    fn eq(&self, other: &Self) -> bool {
        self.level[..] == other.level[..]
    }
}

/// The stored level of an unreached lane. [`MsBfs::lane_output`] maps it
/// to `u32::MAX as f64`, matching the scalar bfs convention so lane
/// outputs are bit-identical.
pub const MS_UNREACHED: u16 = u16::MAX;

/// Multi-source BFS with mask-only wires — the bit-matrix frontier of
/// MS-BFS-style batched traversal.
///
/// The generic [`Lanes`] adapter ships one wire value per active lane
/// (`8 + K × 4` bytes per entry). BFS does not need any of those values:
/// in a level-synchronous run, a lane discovered in global round `r` has
/// level `r + 1`, full stop. So the wire collapses to the discovery mask
/// itself — one `u64` per entry regardless of K — and per-edge work
/// collapses to word operations (a pushing vertex sends its current lane
/// mask; a receiver keeps `mask & !seen` and stamps those lanes with the
/// round clock). This is what makes 64-wide batching pay: message
/// buffers shrink ~33× against the value-lane adapter (fitting devices
/// the value form cannot), and a vertex on many lanes' frontiers costs
/// one edge scan, not one per lane.
///
/// The round-clock level derivation requires globally aligned rounds, so
/// the program is synchronous-only ([`VertexProgram::supports_async`] is
/// false); under an async variant the runtime falls back to BSP, exactly
/// as D-IrGL does for benchmarks that cannot run asynchronously. Lane
/// outputs remain byte-identical to scalar runs under either variant —
/// bfs levels are the unique fixed point.
pub struct MsBfs {
    sources: Vec<VertexId>,
    live: u64,
    round: std::sync::atomic::AtomicU32,
}

impl MsBfs {
    /// Batched bfs across `sources`, one lane per source in the given
    /// order. Panics unless `1 ..= 64` sources.
    pub fn new(sources: &[VertexId]) -> MsBfs {
        assert!(
            (1..=LANE_WIDTH).contains(&sources.len()),
            "lane batch must hold 1..=64 sources, got {}",
            sources.len()
        );
        MsBfs {
            live: live_mask(sources.len() as u32),
            sources: sources.to_vec(),
            round: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// The level a lane discovered in the current round gets: in a
    /// level-synchronous run, messages pushed in round `r` settle their
    /// receivers at level `r + 1`.
    fn discovery_level(&self) -> u32 {
        self.round.load(std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// Stamps `news` lanes of `state` with the current discovery level.
    fn settle(&self, state: &mut MsBfsState, news: u64) {
        let level = self.discovery_level();
        assert!(
            level < MS_UNREACHED as u32,
            "bfs level {level} exceeds the u16 lane-level range"
        );
        for l in lanes_of(news) {
            state.level[l] = level as u16;
        }
        state.seen |= news;
    }

    /// Lane `l`'s scalar output: the stored level, with the unreached
    /// sentinel widened to the scalar program's `u32::MAX` convention.
    fn level_out(level: u16) -> f64 {
        if level == MS_UNREACHED {
            u32::MAX as f64
        } else {
            level as f64
        }
    }
}

impl VertexProgram for MsBfs {
    type State = MsBfsState;
    type Wire = u64;

    fn name(&self) -> &'static str {
        "ms-bfs"
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> MsBfsState {
        let mut level = [MS_UNREACHED; LANE_WIDTH];
        let mut seen = 0u64;
        for (l, &s) in self.sources.iter().enumerate() {
            if s == gv {
                level[l] = 0;
                seen |= 1 << l;
            }
        }
        MsBfsState {
            level,
            seen,
            pending: seen,
            cur: 0,
            fresh: 0,
            acc: 0,
        }
    }

    fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        self.sources.contains(&gv)
    }

    fn begin_push(&self, state: &mut MsBfsState) -> bool {
        state.cur = state.pending & self.live;
        state.pending &= !state.cur;
        state.cur != 0
    }

    fn edge_msg(&self, state: &MsBfsState, _weight: u32) -> Option<u64> {
        (state.cur != 0).then_some(state.cur)
    }

    fn accumulate(&self, state: &mut MsBfsState, mask: u64) -> bool {
        // Accumulate only — never settle here. On a mirror the canonical
        // mask (`seen`) must stay untouched so the master's broadcast
        // still reads as news and activates the mirror's own push; on a
        // master, `absorb` settles in the same round, so the level stamp
        // is identical either way.
        let news = mask & self.live & !state.seen & !state.acc;
        if news == 0 {
            return false;
        }
        state.fresh |= news;
        state.acc |= news;
        true
    }

    fn absorb(&self, state: &mut MsBfsState) -> bool {
        let news = state.acc & !state.seen;
        state.acc = 0;
        if news == 0 {
            return false;
        }
        self.settle(state, news);
        state.pending |= news;
        true
    }

    fn take_delta(&self, state: &mut MsBfsState) -> u64 {
        let fresh = state.fresh;
        state.fresh = 0;
        fresh
    }

    fn canonical(&self, state: &MsBfsState) -> u64 {
        // The full settled mask: receivers filter against their own
        // `seen`, so re-sending settled lanes is a no-op (the mask
        // analogue of re-broadcasting an unchanged canonical value).
        state.seen
    }

    fn set_canonical(&self, state: &mut MsBfsState, mask: u64) -> bool {
        let news = mask & self.live & !state.seen;
        if news == 0 {
            return false;
        }
        self.settle(state, news);
        state.pending |= news;
        // Lanes the broadcast settled no longer need a local accumulator
        // guard (the master already knows them).
        state.acc &= !news;
        true
    }

    fn frontier_weight(&self, state: &MsBfsState) -> u64 {
        (state.pending & self.live).count_ones() as u64
    }

    fn lanes(&self) -> u64 {
        self.sources.len() as u64
    }

    fn state_bytes(&self) -> u64 {
        // K level slots plus the five mask words — what a device kernel
        // would allocate, not the host struct's fixed 64-slot array.
        self.sources.len() as u64 * 2 + 40
    }

    fn wire_bytes(&self) -> u64 {
        // One lane-mask word per entry — K-independent.
        8
    }

    fn supports_async(&self) -> bool {
        false
    }

    fn on_round_start(&self, round: u32) {
        self.round
            .store(round, std::sync::atomic::Ordering::Relaxed);
    }

    fn output(&self, state: &MsBfsState) -> f64 {
        lanes_of(self.live)
            .map(|l| MsBfs::level_out(state.level[l]))
            .sum()
    }
}

impl BatchedProgram for MsBfs {
    fn width(&self) -> usize {
        self.sources.len()
    }

    fn lane_output(&self, l: usize, state: &MsBfsState) -> f64 {
        MsBfs::level_out(state.level[l])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal min-propagation program, one instance per source.
    #[derive(Clone)]
    struct MinFrom {
        source: u32,
    }

    impl VertexProgram for MinFrom {
        type State = u32;
        type Wire = u32;
        fn name(&self) -> &'static str {
            "minfrom"
        }
        fn style(&self) -> Style {
            Style::PushDataDriven
        }
        fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> u32 {
            if gv == self.source {
                0
            } else {
                u32::MAX
            }
        }
        fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
            gv == self.source
        }
        fn edge_msg(&self, state: &u32, _w: u32) -> Option<u32> {
            (*state != u32::MAX).then(|| *state + 1)
        }
        fn accumulate(&self, state: &mut u32, msg: u32) -> bool {
            if msg < *state {
                *state = msg;
                true
            } else {
                false
            }
        }
        fn absorb(&self, _state: &mut u32) -> bool {
            false
        }
        fn take_delta(&self, state: &mut u32) -> u32 {
            *state
        }
        fn canonical(&self, state: &u32) -> u32 {
            *state
        }
        fn set_canonical(&self, state: &mut u32, v: u32) -> bool {
            self.accumulate(state, v)
        }
        fn output(&self, state: &u32) -> f64 {
            *state as f64
        }
    }

    impl MultiSourceProgram for MinFrom {
        type Batched = Lanes<MinFrom>;

        fn for_source(&self, source: VertexId) -> MinFrom {
            MinFrom { source }
        }

        fn batched(&self, sources: &[VertexId]) -> Lanes<MinFrom> {
            Lanes::new(self, sources)
        }
    }

    fn batch(sources: &[u32]) -> Lanes<MinFrom> {
        Lanes::new(&MinFrom { source: 0 }, sources)
    }

    #[test]
    fn init_packs_sources_into_pending_lanes() {
        let b = batch(&[2, 5, 7]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        let s5 = b.init_state(5, &ctx);
        assert_eq!(s5.pending, 0b010, "vertex 5 is lane 1's source");
        assert_eq!(s5.lane[1], 0);
        assert_eq!(s5.lane[0], u32::MAX);
        assert!(b.initially_active(5, &ctx));
        assert!(!b.initially_active(3, &ctx));
    }

    #[test]
    fn begin_push_consumes_pending_and_masks_edges() {
        let b = batch(&[2, 5, 7]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        let mut s = b.init_state(5, &ctx);
        assert!(b.begin_push(&mut s));
        assert_eq!(s.cur, 0b010);
        assert_eq!(s.pending, 0);
        let w = b.edge_msg(&s, 0).expect("lane 1 pushes");
        assert_eq!(w.mask, 0b010);
        assert_eq!(w.vals[1], 1);
        // Nothing pending: the vertex does not push again.
        assert!(!b.begin_push(&mut s));
        assert_eq!(b.edge_msg(&s, 0).map(|w| w.mask), None);
    }

    #[test]
    fn accumulate_tracks_updated_and_take_delta_clears() {
        let b = batch(&[2, 5, 7]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        let mut s = b.init_state(3, &ctx);
        let mut vals = [0u32; LANE_WIDTH];
        vals[0] = 4;
        vals[2] = 9;
        assert!(b.accumulate(&mut s, LaneWire { mask: 0b101, vals }));
        assert_eq!(s.updated, 0b101);
        assert_eq!(s.lane[0], 4);
        assert_eq!(s.lane[2], 9);
        // Worse values change nothing.
        assert!(!b.accumulate(&mut s, LaneWire { mask: 0b101, vals }));
        let d = b.take_delta(&mut s);
        assert_eq!(d.mask, 0b101);
        assert_eq!((d.vals[0], d.vals[2]), (4, 9));
        assert_eq!(s.updated, 0);
    }

    #[test]
    fn state_equality_ignores_mask_bookkeeping() {
        let b = batch(&[2, 5]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        let before = b.init_state(5, &ctx);
        let mut after = before;
        assert!(b.begin_push(&mut after));
        // `begin_push` consumed `pending`, but lane values are untouched:
        // the device must not flag this master broadcast-dirty.
        assert_eq!(before, after);
    }

    #[test]
    fn wire_bytes_scale_with_lanes() {
        let b = batch(&[2, 5, 7]);
        assert_eq!(b.wire_bytes(), 8 + 3 * VAL_BYTES);
        let mut vals = [0u32; LANE_WIDTH];
        vals[1] = 1;
        let w = LaneWire { mask: 0b010, vals };
        assert_eq!(b.wire_payload_bytes(&w), 8 + VAL_BYTES);
        assert_eq!(b.lanes(), 3);
    }

    #[test]
    fn sync_clear_resets_dirty_lanes() {
        let b = batch(&[2, 5]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        let mut s = b.init_state(2, &ctx);
        s.dirty = 0b11;
        assert!(b.wants_sync_clear());
        b.on_sync_cleared(&mut s);
        assert_eq!(s.dirty, 0);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_sources_refused() {
        let _ = batch(&[]);
    }

    #[test]
    fn ms_bfs_accumulate_does_not_settle() {
        let b = MsBfs::new(&[2, 5]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        b.on_round_start(3);
        let mut s = b.init_state(7, &ctx);
        assert!(b.accumulate(&mut s, 0b01));
        // Accumulated but not canonical: level unstamped, nothing seen,
        // nothing pending — a mirror in this state must still accept the
        // master's broadcast.
        assert_eq!(s.seen, 0);
        assert_eq!(s.pending, 0);
        assert_eq!(s.level[0], MS_UNREACHED);
        assert_eq!(s.acc, 0b01);
        assert_eq!(s.fresh, 0b01);
        // A second copy of the same lane is guarded out by `acc`.
        assert!(!b.accumulate(&mut s, 0b01));
        // The broadcast settles the lane at the round-clock level and
        // clears the accumulator guard.
        assert!(b.set_canonical(&mut s, 0b01));
        assert_eq!(s.level[0], 4);
        assert_eq!(s.seen, 0b01);
        assert_eq!(s.pending, 0b01);
        assert_eq!(s.acc, 0);
    }

    #[test]
    fn ms_bfs_absorb_settles_masters() {
        let b = MsBfs::new(&[2, 5]);
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        b.on_round_start(1);
        let mut s = b.init_state(7, &ctx);
        assert!(b.accumulate(&mut s, 0b11));
        assert!(b.absorb(&mut s));
        assert_eq!(s.seen, 0b11);
        assert_eq!(s.pending, 0b11);
        assert_eq!((s.level[0], s.level[1]), (2, 2));
        assert_eq!(s.acc, 0);
        // Nothing accumulated since: absorb is a no-op.
        assert!(!b.absorb(&mut s));
        // Settled lanes never re-accumulate.
        assert!(!b.accumulate(&mut s, 0b11));
    }

    #[test]
    fn ms_bfs_wire_is_one_word_regardless_of_width() {
        let b = MsBfs::new(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.wire_bytes(), 8);
        assert_eq!(b.lanes(), 8);
        assert!(!b.supports_async());
        let degs = vec![0u32; 10];
        let ctx = InitCtx::new(10, &degs);
        let s = b.init_state(3, &ctx);
        assert_eq!(b.lane_output(2, &s), 0.0, "lane 2's source is vertex 3");
        // The u16 sentinel widens to the scalar u32::MAX convention.
        assert_eq!(b.lane_output(0, &s), u32::MAX as f64);
    }
}
