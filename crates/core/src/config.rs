//! Run configuration: the optimization variants of §IV-C.

use serde::{Deserialize, Serialize};

use dirgl_comm::{CommMode, FaultPlan, RetryConfig};
use dirgl_gpusim::Balancer;
use dirgl_partition::Policy;

use crate::layout::LayoutChoice;

/// Execution model (§III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecModel {
    /// Bulk-synchronous parallel: global rounds.
    Sync,
    /// Bulk-asynchronous parallel (BASP): local rounds, stale reads allowed.
    Async,
}

impl ExecModel {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ExecModel::Sync => "Sync",
            ExecModel::Async => "Async",
        }
    }
}

/// One of the paper's four D-IrGL optimization variants (§IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Variant {
    /// Computation load balancer (TWC vs ALB).
    pub balancer: Balancer,
    /// Communication mode (AS vs UO).
    pub comm: CommMode,
    /// Execution model (Sync vs Async).
    pub model: ExecModel,
}

impl Variant {
    /// Var1 (baseline): TWC + AS + Sync.
    pub fn var1() -> Variant {
        Variant {
            balancer: Balancer::Twc,
            comm: CommMode::AllShared,
            model: ExecModel::Sync,
        }
    }

    /// Var2: ALB + AS + Sync.
    pub fn var2() -> Variant {
        Variant {
            balancer: Balancer::Alb,
            comm: CommMode::AllShared,
            model: ExecModel::Sync,
        }
    }

    /// Var3: ALB + UO + Sync.
    pub fn var3() -> Variant {
        Variant {
            balancer: Balancer::Alb,
            comm: CommMode::UpdatedOnly,
            model: ExecModel::Sync,
        }
    }

    /// Var4 (D-IrGL default): ALB + UO + Async.
    pub fn var4() -> Variant {
        Variant {
            balancer: Balancer::Alb,
            comm: CommMode::UpdatedOnly,
            model: ExecModel::Async,
        }
    }

    /// All four, in paper order.
    pub fn all() -> [Variant; 4] {
        [Self::var1(), Self::var2(), Self::var3(), Self::var4()]
    }

    /// `Var1`..`Var4` if this is one of the presets, else a composed name.
    pub fn label(&self) -> String {
        for (i, v) in Self::all().iter().enumerate() {
            if v == self {
                return format!("Var{}", i + 1);
            }
        }
        format!("{}+{}+{}", self.balancer, self.comm, self.model.name())
    }
}

/// Everything a [`crate::Runtime`] needs besides the platform.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Partitioning policy.
    pub policy: Policy,
    /// Optimization variant.
    pub variant: Variant,
    /// Paper-equivalence divisor of the dataset (1 = unscaled). Scales
    /// kernel work, message bytes, and device memory capacity; see
    /// `DESIGN.md` §6.
    pub scale_divisor: u64,
    /// Seed for the partitioner's randomized policies.
    pub seed: u64,
    /// Model GPUDirect device↔device transfers (paper §VII recommendation;
    /// off everywhere in the paper's measured systems).
    pub gpudirect: bool,
    /// Extra per-round runtime cost in seconds (0 for D-IrGL; the Lux
    /// baseline charges its Legion task-mapping overhead here).
    pub runtime_round_overhead_secs: f64,
    /// BASP throttle: minimum gap between consecutive local rounds on a
    /// device, in seconds. 0 = unthrottled (the paper's Var4). A positive
    /// gap batches arrivals per round, trading latency for less redundant
    /// recomputation — the control mechanism the paper's conclusion calls
    /// for ("dynamically throttle the degree of asynchronous execution").
    pub basp_round_gap_secs: f64,
    /// Fault schedule. `None` (the default) runs the raw transport exactly
    /// as before this layer existed. `Some(plan)` routes every message
    /// through the reliable retry/ack transport — with
    /// [`FaultPlan::none()`] the result is byte-identical to `None`
    /// (pinned by tests), so enabling the layer costs nothing until faults
    /// are actually scheduled.
    pub faults: Option<FaultPlan>,
    /// Retry policy of the reliable transport (used only when `faults` is
    /// set).
    pub retry: RetryConfig,
    /// Checkpoint every `k` rounds (0 = only the mandatory round-0
    /// checkpoint taken when the plan schedules a crash). Rollback-based
    /// recovery replays from the most recent checkpoint.
    pub checkpoint_every_rounds: u32,
    /// Disable the host-side hot-path optimizations (sparsity-proportional
    /// UO extraction via [`dirgl_comm::ExtractIndex`] and per-device
    /// scratch-buffer reuse), reverting to the dense walk and per-round
    /// allocation. Both paths produce byte-identical reports, values, and
    /// traces (pinned by tests); the flag exists so `bench_hotpath` can
    /// measure before/after in one binary.
    pub legacy_hotpath: bool,
    /// Allow devices whose raw working set exceeds capacity to run
    /// *spilled*: the adjacency is held in delta-gap varint form
    /// ([`dirgl_graph::CompressedCsr`]) and decoded row-by-row into scratch
    /// each round, charging [`dirgl_gpusim::KernelModel::decode_time`] per
    /// compute phase. Admission stays raw whenever raw fits — spill only
    /// widens the feasible region, it never changes an admitted raw run.
    /// Values, reports, and traces are byte-identical either way (the
    /// decode reproduces the exact CSR windows; pinned by tests). Mutually
    /// exclusive with `legacy_hotpath`, whose scalar bodies index the raw
    /// arrays directly.
    pub spill: bool,
    /// Per-device kernel layout selection applied at
    /// [`crate::Runtime::prepare`] time (see [`crate::layout`]). The
    /// default [`LayoutChoice::Insertion`] builds no layout state at all;
    /// non-prepared execution paths ignore this knob entirely.
    pub layout: LayoutChoice,
}

impl RunConfig {
    /// Default-variant (Var4) config for `policy`.
    pub fn var4(policy: Policy) -> RunConfig {
        Self::new(policy, Variant::var4())
    }

    /// Any variant with the given policy.
    pub fn new(policy: Policy, variant: Variant) -> RunConfig {
        RunConfig {
            policy,
            variant,
            scale_divisor: 1,
            seed: 0,
            gpudirect: false,
            runtime_round_overhead_secs: 0.0,
            basp_round_gap_secs: 0.0,
            faults: None,
            retry: RetryConfig::default(),
            checkpoint_every_rounds: 0,
            legacy_hotpath: false,
            spill: false,
            layout: LayoutChoice::Insertion,
        }
    }

    /// Sets the paper-equivalence divisor (builder style).
    pub fn scale(mut self, divisor: u64) -> RunConfig {
        self.scale_divisor = divisor.max(1);
        self
    }

    /// Enables the reliable transport under `plan` (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> RunConfig {
        self.faults = Some(plan);
        self
    }

    /// Sets the checkpoint interval in rounds (builder style).
    pub fn with_checkpoints(mut self, every_rounds: u32) -> RunConfig {
        self.checkpoint_every_rounds = every_rounds;
        self
    }

    /// Sets the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryConfig) -> RunConfig {
        self.retry = retry;
        self
    }

    /// Reverts to the pre-optimization host hot path (builder style).
    pub fn with_legacy_hotpath(mut self, legacy: bool) -> RunConfig {
        self.legacy_hotpath = legacy;
        self
    }

    /// Sets the kernel-layout selection (builder style).
    pub fn with_layout(mut self, layout: LayoutChoice) -> RunConfig {
        self.layout = layout;
        self
    }

    /// Enables compressed-adjacency spill for over-capacity devices
    /// (builder style).
    pub fn with_spill(mut self, spill: bool) -> RunConfig {
        self.spill = spill;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_presets_match_the_paper() {
        let v1 = Variant::var1();
        assert_eq!(
            (v1.balancer, v1.comm, v1.model),
            (Balancer::Twc, CommMode::AllShared, ExecModel::Sync)
        );
        let v4 = Variant::var4();
        assert_eq!(
            (v4.balancer, v4.comm, v4.model),
            (Balancer::Alb, CommMode::UpdatedOnly, ExecModel::Async)
        );
        assert_eq!(Variant::var2().label(), "Var2");
        let custom = Variant {
            balancer: Balancer::Twc,
            comm: CommMode::UpdatedOnly,
            model: ExecModel::Sync,
        };
        assert_eq!(custom.label(), "TWC+UO+Sync");
    }

    #[test]
    fn config_builder() {
        let c = RunConfig::var4(Policy::Cvc).scale(1024);
        assert_eq!(c.scale_divisor, 1024);
        assert_eq!(c.policy, Policy::Cvc);
        assert!(!c.gpudirect);
        assert!(c.faults.is_none(), "raw transport by default");
        assert_eq!(c.checkpoint_every_rounds, 0);

        let c = c
            .with_faults(FaultPlan::seeded(7).with_drop(0.05))
            .with_checkpoints(4);
        assert_eq!(c.faults.as_ref().unwrap().seed, 7);
        assert_eq!(c.checkpoint_every_rounds, 4);
    }
}
