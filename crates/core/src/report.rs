//! Execution reports — the decomposition plotted in Figs. 4–6 and 8–9 and
//! the balance columns of Table IV.

use serde::{Deserialize, Serialize};

use dirgl_comm::SimTime;
use dirgl_partition::metrics::max_over_mean_f64;

/// Everything measured about one application run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end simulated execution time (excludes partitioning and
    /// loading, like the paper's reported times).
    pub total_time: SimTime,
    /// Per-device accumulated kernel time.
    pub compute_per_device: Vec<SimTime>,
    /// Per-host accumulated blocking-receive time.
    pub wait_per_host: Vec<SimTime>,
    /// Paper-equivalent communication volume in bytes.
    pub comm_bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Global rounds (BSP) or the *minimum* local rounds across devices
    /// (BASP — the statistic the paper quotes for bfs/uk14).
    pub rounds: u32,
    /// Maximum local rounds across devices (== `rounds` under BSP).
    pub max_rounds: u32,
    /// Paper-equivalent work items (edges processed, including redundant
    /// re-processing under BASP).
    pub work_items: u64,
    /// Peak device-memory bytes per device (paper-equivalent).
    pub memory_per_device: Vec<u64>,
}

impl ExecutionReport {
    /// "Max Compute": the maximum per-device computation time (the paper
    /// "measure\[s\] the computation time on each device and report\[s\] the
    /// maximum among them").
    pub fn max_compute(&self) -> SimTime {
        self.compute_per_device.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// "Min Wait": the minimum per-host blocking time.
    pub fn min_wait(&self) -> SimTime {
        self.wait_per_host.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// "Device Comm.": the non-overlapping device↔host communication time —
    /// the paper reports "the rest of the execution time" after compute and
    /// wait.
    pub fn device_comm(&self) -> SimTime {
        self.total_time
            .saturating_sub(self.max_compute())
            .saturating_sub(self.min_wait())
    }

    /// Dynamic load balance: max/mean of per-device compute time (Table IV
    /// "Dynamic").
    pub fn dynamic_balance(&self) -> f64 {
        let times: Vec<f64> =
            self.compute_per_device.iter().map(|t| t.as_secs_f64()).collect();
        max_over_mean_f64(&times)
    }

    /// Memory balance: max/mean of per-device peak memory (Table IV
    /// "Memory").
    pub fn memory_balance(&self) -> f64 {
        let max = self.memory_per_device.iter().copied().max().unwrap_or(0) as f64;
        let mean = if self.memory_per_device.is_empty() {
            0.0
        } else {
            self.memory_per_device.iter().sum::<u64>() as f64
                / self.memory_per_device.len() as f64
        };
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Maximum per-device peak memory (Table III's statistic).
    pub fn max_memory(&self) -> u64 {
        self.memory_per_device.iter().copied().max().unwrap_or(0)
    }

    /// Communication volume in GB, as annotated on the paper's bars.
    pub fn comm_gb(&self) -> f64 {
        self.comm_bytes as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            total_time: SimTime::from_secs_f64(10.0),
            compute_per_device: vec![
                SimTime::from_secs_f64(4.0),
                SimTime::from_secs_f64(2.0),
            ],
            wait_per_host: vec![SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(1.0)],
            comm_bytes: 2_000_000_000,
            messages: 10,
            rounds: 7,
            max_rounds: 7,
            work_items: 1000,
            memory_per_device: vec![300, 100],
        }
    }

    #[test]
    fn decomposition_sums_to_total() {
        let r = report();
        assert_eq!(r.max_compute(), SimTime::from_secs_f64(4.0));
        assert_eq!(r.min_wait(), SimTime::from_secs_f64(1.0));
        assert_eq!(r.device_comm(), SimTime::from_secs_f64(5.0));
        let sum = r.max_compute() + r.min_wait() + r.device_comm();
        assert_eq!(sum, r.total_time);
    }

    #[test]
    fn balances() {
        let r = report();
        assert!((r.dynamic_balance() - 4.0 / 3.0).abs() < 1e-12);
        assert!((r.memory_balance() - 1.5).abs() < 1e-12);
        assert_eq!(r.max_memory(), 300);
        assert!((r.comm_gb() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn device_comm_saturates() {
        let mut r = report();
        r.total_time = SimTime::from_secs_f64(2.0);
        assert_eq!(r.device_comm(), SimTime::ZERO);
    }
}
