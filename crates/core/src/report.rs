//! Execution reports — the decomposition plotted in Figs. 4–6 and 8–9 and
//! the balance columns of Table IV.

use serde::{Deserialize, Serialize};

use dirgl_comm::SimTime;
use dirgl_partition::metrics::max_over_mean_f64;

use crate::resilience::ResilienceStats;
use crate::trace::RoundRecord;

/// One round's cross-device summary, distilled from the trace records of
/// that round (global round under BSP; same local ordinal under BASP).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundSummary {
    /// Round number the summary covers.
    pub round: u32,
    /// Devices that executed this round.
    pub devices: u32,
    /// Largest per-device compute time in the round.
    pub max_compute: SimTime,
    /// Largest per-device inbound-blocking time in the round.
    pub max_wait: SimTime,
    /// Wire bytes sent in the round (all devices).
    pub bytes: u64,
    /// Messages sent in the round (all devices).
    pub messages: u64,
    /// Total active vertices at round start (all devices).
    pub frontier: u64,
    /// Masters whose canonical value changed (all devices).
    pub absorb_changed: u64,
}

impl RoundSummary {
    /// Groups per-device records into one summary per round number,
    /// ordered by round.
    pub fn from_records(records: &[RoundRecord]) -> Vec<RoundSummary> {
        let mut rounds: Vec<RoundSummary> = Vec::new();
        for r in records {
            let idx = r.round as usize;
            if rounds.len() <= idx {
                rounds.resize(
                    idx + 1,
                    RoundSummary {
                        round: 0,
                        devices: 0,
                        max_compute: SimTime::ZERO,
                        max_wait: SimTime::ZERO,
                        bytes: 0,
                        messages: 0,
                        frontier: 0,
                        absorb_changed: 0,
                    },
                );
            }
            let s = &mut rounds[idx];
            s.round = r.round;
            s.devices += 1;
            s.max_compute = s.max_compute.max(r.compute);
            s.max_wait = s.max_wait.max(r.wait);
            s.bytes += r.bytes_sent;
            s.messages += r.messages_sent;
            s.frontier += r.frontier;
            s.absorb_changed += r.absorb_changed as u64;
        }
        rounds.retain(|s| s.devices > 0);
        rounds
    }
}

/// Everything measured about one application run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end simulated execution time (excludes partitioning and
    /// loading, like the paper's reported times).
    pub total_time: SimTime,
    /// Per-device accumulated kernel time.
    pub compute_per_device: Vec<SimTime>,
    /// Per-host accumulated blocking-receive time.
    pub wait_per_host: Vec<SimTime>,
    /// Paper-equivalent communication volume in bytes.
    pub comm_bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Headline round count, copied verbatim from
    /// [`crate::bsp::EngineOutcome::rounds`] (the single place that
    /// convention is defined): global rounds under BSP, minimum local
    /// rounds under BASP.
    pub rounds: u32,
    /// Minimum local rounds across devices. Under BSP a device whose
    /// partition never activates skips its kernel, so this can be below
    /// `rounds`.
    pub min_rounds: u32,
    /// Maximum local rounds across devices (== `rounds` under BSP for at
    /// least one device).
    pub max_rounds: u32,
    /// Paper-equivalent work items (edges processed, including redundant
    /// re-processing under BASP).
    pub work_items: u64,
    /// Peak device-memory bytes per device (paper-equivalent).
    pub memory_per_device: Vec<u64>,
    /// Per-round summaries, populated only when the run was traced (empty
    /// otherwise — assembling them costs per-round work).
    pub rounds_detail: Vec<RoundSummary>,
    /// Fault, retry and recovery counters (all zero on a healthy run).
    pub resilience: ResilienceStats,
}

impl ExecutionReport {
    /// "Max Compute": the maximum per-device computation time (the paper
    /// "measure\[s\] the computation time on each device and report\[s\] the
    /// maximum among them").
    pub fn max_compute(&self) -> SimTime {
        self.compute_per_device
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// "Min Wait": the minimum per-host blocking time.
    pub fn min_wait(&self) -> SimTime {
        self.wait_per_host
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// "Device Comm.": the non-overlapping device↔host communication time —
    /// the paper reports "the rest of the execution time" after compute and
    /// wait.
    pub fn device_comm(&self) -> SimTime {
        self.total_time
            .saturating_sub(self.max_compute())
            .saturating_sub(self.min_wait())
    }

    /// Dynamic load balance: max/mean of per-device compute time (Table IV
    /// "Dynamic").
    pub fn dynamic_balance(&self) -> f64 {
        let times: Vec<f64> = self
            .compute_per_device
            .iter()
            .map(|t| t.as_secs_f64())
            .collect();
        max_over_mean_f64(&times)
    }

    /// Memory balance: max/mean of per-device peak memory (Table IV
    /// "Memory").
    pub fn memory_balance(&self) -> f64 {
        let max = self.memory_per_device.iter().copied().max().unwrap_or(0) as f64;
        let mean = if self.memory_per_device.is_empty() {
            0.0
        } else {
            self.memory_per_device.iter().sum::<u64>() as f64 / self.memory_per_device.len() as f64
        };
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Maximum per-device peak memory (Table III's statistic).
    pub fn max_memory(&self) -> u64 {
        self.memory_per_device.iter().copied().max().unwrap_or(0)
    }

    /// Communication volume in GB, as annotated on the paper's bars.
    pub fn comm_gb(&self) -> f64 {
        self.comm_bytes as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            total_time: SimTime::from_secs_f64(10.0),
            compute_per_device: vec![SimTime::from_secs_f64(4.0), SimTime::from_secs_f64(2.0)],
            wait_per_host: vec![SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(1.0)],
            comm_bytes: 2_000_000_000,
            messages: 10,
            rounds: 7,
            min_rounds: 7,
            max_rounds: 7,
            work_items: 1000,
            memory_per_device: vec![300, 100],
            rounds_detail: Vec::new(),
            resilience: ResilienceStats::default(),
        }
    }

    #[test]
    fn decomposition_sums_to_total() {
        let r = report();
        assert_eq!(r.max_compute(), SimTime::from_secs_f64(4.0));
        assert_eq!(r.min_wait(), SimTime::from_secs_f64(1.0));
        assert_eq!(r.device_comm(), SimTime::from_secs_f64(5.0));
        let sum = r.max_compute() + r.min_wait() + r.device_comm();
        assert_eq!(sum, r.total_time);
    }

    #[test]
    fn balances() {
        let r = report();
        assert!((r.dynamic_balance() - 4.0 / 3.0).abs() < 1e-12);
        assert!((r.memory_balance() - 1.5).abs() < 1e-12);
        assert_eq!(r.max_memory(), 300);
        assert!((r.comm_gb() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn device_comm_saturates() {
        let mut r = report();
        r.total_time = SimTime::from_secs_f64(2.0);
        assert_eq!(r.device_comm(), SimTime::ZERO);
    }

    #[test]
    fn round_summaries_group_per_round() {
        use crate::trace::{EngineKind, TraceDirection};
        let rec = |round: u32, device: u32, compute: f64, bytes: u64| RoundRecord {
            engine: EngineKind::Bsp,
            round,
            device,
            direction: TraceDirection::Push,
            frontier: 10,
            compute: SimTime::from_secs_f64(compute),
            pack: SimTime::ZERO,
            wait: SimTime::from_secs_f64(0.1),
            bytes_sent: bytes,
            bytes_received: 0,
            messages_sent: 1,
            messages_received: 0,
            absorb_changed: 2,
            clock_end: SimTime::ZERO,
        };
        let records = vec![rec(0, 0, 1.0, 100), rec(0, 1, 3.0, 50), rec(1, 0, 2.0, 10)];
        let sums = RoundSummary::from_records(&records);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].round, 0);
        assert_eq!(sums[0].devices, 2);
        assert_eq!(sums[0].max_compute, SimTime::from_secs_f64(3.0));
        assert_eq!(sums[0].bytes, 150);
        assert_eq!(sums[0].frontier, 20);
        assert_eq!(sums[0].absorb_changed, 4);
        assert_eq!(sums[1].devices, 1);
        assert_eq!(sums[1].bytes, 10);
    }
}
