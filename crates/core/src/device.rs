//! Per-device execution state shared by the BSP and BASP drivers.
//!
//! A [`DeviceRun`] owns one partition's proxies and labels and performs the
//! *real* computation (label updates) while charging *simulated* time
//! through [`dirgl_gpusim::KernelModel`]. Each device's round is executed
//! sequentially (devices run in parallel via rayon), which keeps the whole
//! simulation bit-for-bit deterministic.

use dirgl_comm::{message, CommMode, DenseBitset, SimTime, SyncPlan};
use dirgl_gpusim::{Balancer, GpuSpec, KernelModel};
use dirgl_partition::{LocalGraph, PairLink};

use crate::program::{InitCtx, Style, VertexProgram};

/// One device's live state during a run.
pub struct DeviceRun<P: VertexProgram> {
    /// Device index.
    pub dev: u32,
    /// The partition this device owns.
    pub lg: LocalGraph,
    /// Per-proxy program state.
    pub state: Vec<P::State>,
    /// Data-driven worklist (which local proxies are active).
    pub active: DenseBitset,
    /// Proxies whose *accumulator* was written since the last
    /// synchronization — the reduce set (mirror side) and absorb
    /// candidates (master side).
    pub updated: DenseBitset,
    /// Masters whose *canonical* value changed since the last
    /// synchronization — the broadcast set. Kept separate from `updated`
    /// so that receiving a delta that does not change the canonical value
    /// never triggers a broadcast (which would cause endless wake chatter
    /// under BASP).
    pub bcast_dirty: DenseBitset,
    /// Timing model for this device.
    pub kernel: KernelModel,
    /// Accumulated kernel time.
    pub compute_time: SimTime,
    /// Accumulated idle/blocked time (BASP).
    pub idle_time: SimTime,
    /// Local rounds executed.
    pub rounds: u32,
    /// Paper-equivalent work items processed.
    pub work_items: u64,
    /// Paper-equivalent peak device memory.
    pub peak_memory: u64,
}

impl<P: VertexProgram> DeviceRun<P> {
    /// Initializes device state from a partition and the program.
    pub fn new(lg: LocalGraph, spec: GpuSpec, program: &P, ctx: &InitCtx<'_>) -> DeviceRun<P> {
        let n = lg.num_vertices();
        let mut state = Vec::with_capacity(n as usize);
        let mut active = DenseBitset::new(n);
        for lv in 0..n {
            let gv = lg.l2g[lv as usize];
            state.push(program.init_state(gv, ctx));
            if !matches!(
                program.style(),
                Style::PullTopologyDriven | Style::PushTopologyDriven
            ) && program.initially_active(gv, ctx)
            {
                active.set(lv);
            }
        }
        DeviceRun {
            dev: lg.device,
            lg,
            state,
            active,
            updated: DenseBitset::new(n),
            bcast_dirty: DenseBitset::new(n),
            kernel: KernelModel::new(spec),
            compute_time: SimTime::ZERO,
            idle_time: SimTime::ZERO,
            rounds: 0,
            work_items: 0,
            peak_memory: 0,
        }
    }

    /// Paper-equivalent bytes this device must allocate to run `program`
    /// with `plan` (CSR + labels + bitsets + worklist + comm buffers).
    pub fn required_bytes(
        lg: &LocalGraph,
        plan: &SyncPlan,
        program: &P,
        state_bytes: u64,
        divisor: u64,
    ) -> u64 {
        let style = program.style();
        let n = lg.num_vertices() as u64;
        // Only the arrays the program traverses are loaded: push programs
        // hold the out-CSR, pull programs the in-CSR, hybrid both; weights
        // ship only for weight-reading programs (sssp).
        let mut raw = lg.device_bytes_for(
            state_bytes,
            style != Style::PullTopologyDriven,
            matches!(style, Style::PullTopologyDriven | Style::HybridPushPull),
            program.uses_weights(),
        );
        raw += 2 * n.div_ceil(8); // active + updated bitsets
        if style != Style::PullTopologyDriven {
            raw += 4 * n; // worklist
        }
        raw += plan.buffer_entries_for_device(lg.device) * message::VAL_BYTES * 2;
        raw * divisor
    }

    /// True when this device has local work pending.
    pub fn has_work(&self) -> bool {
        !self.active.is_empty()
    }

    /// Runs one compute phase: applies the operator over the active set
    /// (push) or all vertices (pull), accumulating into local proxies only.
    /// Returns the simulated kernel time.
    pub fn compute(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> SimTime {
        let t = match program.style() {
            Style::PushDataDriven | Style::HybridPushPull => {
                self.compute_push(program, balancer, work_scale)
            }
            Style::PushTopologyDriven => {
                // Every vertex is processed every round.
                for lv in 0..self.lg.num_vertices() {
                    self.active.set(lv);
                }
                self.compute_push(program, balancer, work_scale)
            }
            Style::PullTopologyDriven => self.compute_pull(program, balancer, work_scale),
        };
        let t = SimTime::from_secs_f64(t);
        self.compute_time += t;
        self.rounds += 1;
        t
    }

    fn compute_push(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> f64 {
        let actives: Vec<u32> = self.active.iter_set().collect();
        self.active.clear_all();
        let kr = self.kernel.launch(
            balancer,
            actives.iter().map(|&lv| self.lg.csr.out_degree(lv)),
            work_scale,
        );
        self.work_items += kr.work.total_work;
        for &lv in &actives {
            let before = self.state[lv as usize];
            let mut src = before;
            let push = program.begin_push(&mut src);
            self.state[lv as usize] = src;
            // begin_push may flip canonical state (kcore's death): masters
            // must rebroadcast it.
            if src != before && self.lg.is_master(lv) {
                self.bcast_dirty.set(lv);
            }
            if !push {
                continue;
            }
            // Iterate this proxy's local out-edges, accumulating into the
            // local destination proxies.
            let lo = self.lg.csr.offsets()[lv as usize] as usize;
            let hi = self.lg.csr.offsets()[lv as usize + 1] as usize;
            for i in lo..hi {
                let n = self.lg.csr.targets()[i];
                let w = self.lg.csr.weights().map_or(0, |ws| ws[i]);
                if let Some(m) = program.edge_msg(&src, w) {
                    if program.accumulate(&mut self.state[n as usize], m) {
                        self.updated.set(n);
                    }
                }
            }
        }
        kr.time
    }

    fn compute_pull(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> f64 {
        let n = self.lg.num_vertices();
        let kr = self.kernel.launch(
            balancer,
            (0..n).map(|lv| self.lg.in_csr.out_degree(lv)),
            work_scale,
        );
        self.work_items += kr.work.total_work;
        for lv in 0..n {
            let lo = self.lg.in_csr.offsets()[lv as usize] as usize;
            let hi = self.lg.in_csr.offsets()[lv as usize + 1] as usize;
            if lo == hi {
                continue;
            }
            let mut changed = false;
            // Accumulate into a local copy so reads of other entries are
            // unaffected within the round.
            let mut st = self.state[lv as usize];
            for i in lo..hi {
                let u = self.lg.in_csr.targets()[i];
                let w = self.lg.in_csr.weights().map_or(0, |ws| ws[i]);
                if let Some(c) = program.pull_contribution(&self.state[u as usize], w) {
                    changed |= program.accumulate(&mut st, c);
                }
            }
            self.state[lv as usize] = st;
            if changed {
                self.updated.set(lv);
            }
        }
        kr.time
    }

    /// Bottom-up round for hybrid programs (direction-optimizing BFS):
    /// instead of expanding the frontier, every still-unsettled vertex
    /// ([`VertexProgram::pull_ready`]) scans its local in-edges for a
    /// settled parent. The frontier is consumed; newly settled vertices
    /// activate through the normal absorb/broadcast path.
    pub fn compute_bottom_up(
        &mut self,
        program: &P,
        balancer: Balancer,
        work_scale: u64,
    ) -> SimTime {
        self.active.clear_all();
        // Scan with early exit: each unsettled vertex probes its in-edges
        // until the first settled parent (in a synchronous round every
        // settled in-neighbor of an unsettled vertex carries the current
        // level, so the first hit is also the minimum). Only the probes
        // are charged — the whole point of bottom-up traversal.
        let mut probes: Vec<u32> = Vec::new();
        for lv in 0..self.lg.num_vertices() {
            if !program.pull_ready(&self.state[lv as usize]) {
                continue;
            }
            let lo = self.lg.in_csr.offsets()[lv as usize] as usize;
            let hi = self.lg.in_csr.offsets()[lv as usize + 1] as usize;
            let mut st = self.state[lv as usize];
            let mut probed = 0u32;
            for i in lo..hi {
                probed += 1;
                let u = self.lg.in_csr.targets()[i];
                let w = self.lg.in_csr.weights().map_or(0, |ws| ws[i]);
                if let Some(m) = program.edge_msg(&self.state[u as usize], w) {
                    if program.accumulate(&mut st, m) {
                        self.updated.set(lv);
                    }
                    break;
                }
            }
            self.state[lv as usize] = st;
            probes.push(probed);
        }
        let kr = self
            .kernel
            .launch(balancer, probes.iter().copied(), work_scale);
        self.work_items += kr.work.total_work;
        let t = SimTime::from_secs_f64(kr.time);
        self.compute_time += t;
        self.rounds += 1;
        t
    }

    /// Global frontier contribution for the hybrid direction decision.
    pub fn active_count(&self) -> u64 {
        self.active.count_ones() as u64
    }

    /// Absorb phase: folds accumulators into canonical state on masters.
    /// For data-driven programs only updated masters absorb; topology-driven
    /// programs absorb every master exactly once per round. Changed masters
    /// re-activate. Returns the number of masters whose canonical state
    /// changed.
    pub fn absorb_masters(&mut self, program: &P) -> u32 {
        let mut changed = 0;
        match program.style() {
            Style::PushDataDriven | Style::HybridPushPull | Style::PushTopologyDriven => {
                let updated: Vec<u32> = self
                    .updated
                    .iter_set()
                    .take_while(|&lv| lv < self.lg.num_masters)
                    .collect();
                for lv in updated {
                    if program.absorb(&mut self.state[lv as usize]) {
                        self.active.set(lv);
                        self.bcast_dirty.set(lv);
                        changed += 1;
                    }
                }
            }
            Style::PullTopologyDriven => {
                for lv in 0..self.lg.num_masters {
                    if program.absorb(&mut self.state[lv as usize]) {
                        self.bcast_dirty.set(lv);
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Builds the reduce payload for one link: `(entry index, delta)` pairs
    /// plus the wire size (paper-equivalent bytes). Under UO only updated
    /// mirrors are extracted; under AS every participating entry is sent.
    pub fn build_reduce(
        &mut self,
        program: &P,
        link: &PairLink,
        entries: &[u32],
        mode: CommMode,
        divisor: u64,
    ) -> (Vec<(u32, P::Wire)>, u64) {
        let mut payload = Vec::new();
        for &e in entries {
            let lv = link.mirror_side[e as usize];
            if mode == CommMode::AllShared || self.updated.get(lv) {
                payload.push((e, program.take_delta(&mut self.state[lv as usize])));
            }
        }
        let bytes = message::message_bytes(
            mode,
            entries.len() as u64,
            payload.len() as u64,
            message::VAL_BYTES,
        ) * divisor;
        (payload, bytes)
    }

    /// Applies a reduce payload on the master side, accumulating deltas and
    /// marking recipients updated. Returns true if anything changed.
    pub fn apply_reduce(
        &mut self,
        program: &P,
        link: &PairLink,
        payload: &[(u32, P::Wire)],
    ) -> bool {
        let mut any = false;
        for &(e, v) in payload {
            let lv = link.master_side[e as usize];
            if program.accumulate(&mut self.state[lv as usize], v) {
                self.updated.set(lv);
                any = true;
            }
        }
        any
    }

    /// Builds the broadcast payload for one link (master side): canonical
    /// values of updated (UO) or all (AS) participating masters.
    pub fn build_broadcast(
        &mut self,
        program: &P,
        link: &PairLink,
        entries: &[u32],
        mode: CommMode,
        divisor: u64,
        async_take: bool,
    ) -> (Vec<(u32, P::Wire)>, u64) {
        let mut payload = Vec::new();
        for &e in entries {
            let lv = link.master_side[e as usize];
            if mode == CommMode::AllShared || self.bcast_dirty.get(lv) {
                let v = if async_take {
                    program.canonical_async(&self.state[lv as usize])
                } else {
                    program.canonical(&self.state[lv as usize])
                };
                payload.push((e, v));
            }
        }
        let bytes = message::message_bytes(
            mode,
            entries.len() as u64,
            payload.len() as u64,
            message::VAL_BYTES,
        ) * divisor;
        (payload, bytes)
    }

    /// Applies a broadcast payload on the mirror side; changed mirrors
    /// activate (data-driven). Asynchronous engines pass `async_merge` so
    /// mass-conserving programs can merge additively instead of
    /// overwriting.
    pub fn apply_broadcast(
        &mut self,
        program: &P,
        link: &PairLink,
        payload: &[(u32, P::Wire)],
        async_merge: bool,
    ) -> bool {
        let data_driven = program.style() != Style::PullTopologyDriven;
        let mut any = false;
        for &(e, v) in payload {
            let lv = link.mirror_side[e as usize];
            let st = &mut self.state[lv as usize];
            let changed = if async_merge {
                program.merge_canonical_async(st, v)
            } else {
                program.set_canonical(st, v)
            };
            if changed {
                any = true;
                if data_driven {
                    self.active.set(lv);
                }
            }
        }
        any
    }

    /// Asynchronous pull engines: consume every mirror's read-side value
    /// after a local pull round (see
    /// [`VertexProgram::consume_after_pull`]).
    pub fn consume_mirrors_after_pull(&mut self, program: &P) {
        for lv in self.lg.num_masters..self.lg.num_vertices() {
            program.consume_after_pull(&mut self.state[lv as usize]);
        }
    }

    /// Clears both synchronization tracking bitsets (end of a round's
    /// sync).
    pub fn clear_sync_marks(&mut self) {
        self.updated.clear_all();
        self.bcast_dirty.clear_all();
    }

    /// Asynchronous engines: after every broadcast payload of a round has
    /// been built, settle the per-master broadcast ledgers (consumable
    /// generations reset their "unsent" portion exactly once per round,
    /// after all mirror holders received it).
    pub fn after_broadcast_round(&mut self, program: &P) {
        let dirty: Vec<u32> = self
            .bcast_dirty
            .iter_set()
            .take_while(|&lv| lv < self.lg.num_masters)
            .collect();
        for lv in dirty {
            program.after_broadcast(&mut self.state[lv as usize]);
        }
    }

    /// UO extraction cost for one sync direction on this device (prefix
    /// scan over all local proxies, in paper-equivalent items).
    pub fn pack_time(&self, mode: CommMode, divisor: u64) -> SimTime {
        match mode {
            CommMode::AllShared => SimTime::ZERO,
            CommMode::UpdatedOnly => SimTime::from_secs_f64(
                self.kernel
                    .scan_time(self.lg.num_vertices() as u64 * divisor),
            ),
        }
    }
}

/// Mutably borrows two distinct devices.
pub fn get2_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get2_mut_borrows_disjoint() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = get2_mut(&mut v, 3, 1);
        *a += 10;
        *b += 20;
        assert_eq!(v, vec![1, 22, 3, 14]);
    }

    #[test]
    #[should_panic]
    fn get2_mut_rejects_same_index() {
        let mut v = vec![1, 2];
        let _ = get2_mut(&mut v, 1, 1);
    }
}
