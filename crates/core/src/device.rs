//! Per-device execution state shared by the BSP and BASP drivers.
//!
//! A [`DeviceRun`] owns one partition's proxies and labels and performs the
//! *real* computation (label updates) while charging *simulated* time
//! through [`dirgl_gpusim::KernelModel`]. Each device's round is executed
//! sequentially (devices run in parallel via rayon), which keeps the whole
//! simulation bit-for-bit deterministic.

use dirgl_comm::{message, CommMode, DenseBitset, ExtractIndex, SimTime, SyncPlan};
use dirgl_gpusim::{Balancer, GpuSpec, KernelModel};
use dirgl_graph::CompressedCsr;
use dirgl_partition::{LocalGraph, PairLink};

use crate::program::{InitCtx, Style, VertexProgram};

/// A built sync message awaiting stamping: `(partner, payload, bytes)`.
pub type BuiltMsg<W> = (u32, Vec<(u32, W)>, u64);

/// Per-device reusable buffers for the round hot path. Everything here is
/// *host-side* scratch with no simulated-model meaning: the engines clear
/// and refill these instead of reallocating every round. Never
/// checkpointed — a rollback restores logical state only, and every field
/// is (re)filled from scratch at the start of the phase that uses it.
pub struct RoundScratch<W> {
    /// Recycled payload vectors for `build_reduce`/`build_broadcast`.
    pool: Vec<Vec<(u32, W)>>,
    /// When false, `take_buf` always allocates and `recycle` drops — the
    /// pre-optimization allocation behavior, kept reachable for
    /// before/after benchmarking ([`crate::RunConfig::legacy_hotpath`]).
    pub pooling: bool,
    /// When false, the compute phases run the legacy scalar bodies
    /// (per-edge weight probing, worklist materialized into a `Vec`)
    /// instead of the monomorphized word-at-a-time loops. Both produce
    /// byte-identical results; the flag exists so
    /// [`crate::RunConfig::legacy_hotpath`] benchmarks the before/after.
    pub vector_kernels: bool,
    /// Frontier snapshot for the vectorized push phase (swapped with the
    /// live active set, walked word-at-a-time, cleared after use).
    frontier: DenseBitset,
    /// Local rows with at least one in-edge, in ascending order: the pull
    /// phase iterates only these. Derived once per run from the immutable
    /// local CSR (mirror rows are empty — mirrors are pulled *from*), so
    /// a checkpoint rollback never needs to reset it.
    pull_rows: Vec<u32>,
    /// Whether [`RoundScratch::pull_rows`] has been derived yet (an empty
    /// list is legitimate on a device with no in-edges).
    pull_rows_built: bool,
    /// Cached `(time, total_work)` of the topology-driven pull launch:
    /// the balancer sees the same static degree sequence every round, and
    /// [`dirgl_gpusim::KernelModel::launch`] is pure, so one evaluation
    /// serves the whole run. Only the optimized path uses it — the
    /// per-round model evaluation is part of the legacy baseline cost.
    pull_launch: Option<(f64, u64)>,
    /// Active-list staging for the push compute phase.
    pub actives: Vec<u32>,
    /// Probe-count staging for the bottom-up compute phase.
    pub probes: Vec<u32>,
    /// Built sync messages of the current build phase, in ascending
    /// partner order.
    pub built: Vec<BuiltMsg<W>>,
    /// Grouped-apply inbox: `(builder, payload)` per delivered message, in
    /// ascending-builder order.
    pub inbox: Vec<(u32, Vec<(u32, W)>)>,
    /// Kernel time of this round's compute phase (BSP staging).
    pub compute_t: SimTime,
    /// Pack time of this round's build phase (BSP staging).
    pub pack_t: SimTime,
    /// Masters changed by this round's absorb (BSP staging).
    pub absorbed: u32,
}

impl<W> RoundScratch<W> {
    fn new() -> RoundScratch<W> {
        RoundScratch {
            pool: Vec::new(),
            pooling: true,
            vector_kernels: true,
            frontier: DenseBitset::new(0),
            pull_rows: Vec::new(),
            pull_rows_built: false,
            pull_launch: None,
            actives: Vec::new(),
            probes: Vec::new(),
            built: Vec::new(),
            inbox: Vec::new(),
            compute_t: SimTime::ZERO,
            pack_t: SimTime::ZERO,
            absorbed: 0,
        }
    }

    /// An empty payload buffer: recycled when available, fresh otherwise.
    pub fn take_buf(&mut self) -> Vec<(u32, W)> {
        if self.pooling {
            self.pool.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Returns a payload buffer to the pool (dropped when pooling is off).
    pub fn recycle(&mut self, mut buf: Vec<(u32, W)>) {
        if self.pooling {
            buf.clear();
            self.pool.push(buf);
        }
    }
}

/// Compressed-adjacency residency for a *spilled* device: the edge arrays
/// live on-device in delta-gap varint form ([`CompressedCsr`]) and each row
/// is decoded into the scratch vectors right before a kernel body consumes
/// it. Decoding reproduces the raw window bit-for-bit, so spilled and raw
/// runs produce byte-identical values and traces — only the memory charge
/// (compressed size) and the per-round decode time differ.
pub struct SpillState {
    /// Compressed out-adjacency (encodes exactly `lg.csr`).
    out: CompressedCsr,
    /// Compressed in-adjacency (encodes exactly `lg.in_csr`).
    inc: CompressedCsr,
    /// Row-decode target scratch, reused across rows and rounds.
    targets: Vec<u32>,
    /// Row-decode weight scratch (left empty for unweighted graphs).
    weights: Vec<u32>,
    /// Edges decoded since the last per-phase charge.
    decoded: u64,
}

impl SpillState {
    fn new(lg: &LocalGraph) -> SpillState {
        SpillState {
            out: CompressedCsr::from_csr(&lg.csr),
            inc: CompressedCsr::from_csr(&lg.in_csr),
            targets: Vec::new(),
            weights: Vec::new(),
            decoded: 0,
        }
    }

    /// Decodes local vertex `lv`'s out-window into scratch.
    fn out_window(&mut self, lv: u32) -> (&[u32], &[u32]) {
        self.decoded += self.out.out_degree(lv) as u64;
        self.out
            .decode_row_into(lv, &mut self.targets, &mut self.weights);
        (&self.targets, &self.weights)
    }

    /// Decodes local vertex `lv`'s in-window into scratch.
    fn in_window(&mut self, lv: u32) -> (&[u32], &[u32]) {
        self.decoded += self.inc.out_degree(lv) as u64;
        self.inc
            .decode_row_into(lv, &mut self.targets, &mut self.weights);
        (&self.targets, &self.weights)
    }

    /// Drains the decode counter for one compute phase's time charge.
    fn take_decoded(&mut self) -> u64 {
        std::mem::take(&mut self.decoded)
    }
}

/// One device's live state during a run.
pub struct DeviceRun<P: VertexProgram> {
    /// Device index.
    pub dev: u32,
    /// The partition this device owns.
    pub lg: LocalGraph,
    /// Per-proxy program state.
    pub state: Vec<P::State>,
    /// Data-driven worklist (which local proxies are active).
    pub active: DenseBitset,
    /// Proxies whose *accumulator* was written since the last
    /// synchronization — the reduce set (mirror side) and absorb
    /// candidates (master side).
    pub updated: DenseBitset,
    /// Masters whose *canonical* value changed since the last
    /// synchronization — the broadcast set. Kept separate from `updated`
    /// so that receiving a delta that does not change the canonical value
    /// never triggers a broadcast (which would cause endless wake chatter
    /// under BASP).
    pub bcast_dirty: DenseBitset,
    /// Timing model for this device.
    pub kernel: KernelModel,
    /// Accumulated kernel time.
    pub compute_time: SimTime,
    /// Accumulated idle/blocked time (BASP).
    pub idle_time: SimTime,
    /// Local rounds executed.
    pub rounds: u32,
    /// Paper-equivalent work items processed.
    pub work_items: u64,
    /// Paper-equivalent peak device memory.
    pub peak_memory: u64,
    /// Reusable host-side round buffers (never checkpointed).
    pub scratch: RoundScratch<P::Wire>,
    /// `Some` when this device runs with compressed adjacency
    /// (over-capacity spill); the vectorized bodies then decode each row
    /// into scratch instead of slicing the raw CSR. Never checkpointed —
    /// the compressed arrays are immutable and the scratch is transient.
    pub spill: Option<SpillState>,
}

impl<P: VertexProgram> DeviceRun<P> {
    /// Initializes device state from a partition and the program.
    pub fn new(lg: LocalGraph, spec: GpuSpec, program: &P, ctx: &InitCtx<'_>) -> DeviceRun<P> {
        let n = lg.num_vertices();
        let mut state = Vec::with_capacity(n as usize);
        let mut active = DenseBitset::new(n);
        for lv in 0..n {
            let gv = lg.l2g[lv as usize];
            state.push(program.init_state(gv, ctx));
            if !matches!(
                program.style(),
                Style::PullTopologyDriven | Style::PushTopologyDriven
            ) && program.initially_active(gv, ctx)
            {
                active.set(lv);
            }
        }
        DeviceRun {
            dev: lg.device,
            lg,
            state,
            active,
            updated: DenseBitset::new(n),
            bcast_dirty: DenseBitset::new(n),
            kernel: KernelModel::new(spec),
            compute_time: SimTime::ZERO,
            idle_time: SimTime::ZERO,
            rounds: 0,
            work_items: 0,
            peak_memory: 0,
            scratch: RoundScratch::new(),
            spill: None,
        }
    }

    /// Switches this device to compressed-adjacency residency (see
    /// [`SpillState`]). Requires the vectorized bodies: the legacy scalar
    /// bodies index the raw arrays directly, so `legacy_hotpath` and spill
    /// are mutually exclusive (enforced at admission).
    pub fn enable_spill(&mut self) {
        assert!(
            self.scratch.vector_kernels,
            "spill requires the vectorized kernel bodies (legacy_hotpath is incompatible)"
        );
        self.spill = Some(SpillState::new(&self.lg));
    }

    /// Paper-equivalent bytes this device must allocate to run `program`
    /// with `plan` (CSR + labels + bitsets + worklist + comm buffers).
    pub fn required_bytes(
        lg: &LocalGraph,
        plan: &SyncPlan,
        program: &P,
        state_bytes: u64,
        divisor: u64,
    ) -> u64 {
        Self::required_bytes_with(lg, plan, program, state_bytes, divisor, false)
    }

    /// [`DeviceRun::required_bytes`] under either adjacency representation:
    /// `spilled` charges the CSR terms at their exact compressed size (the
    /// footprint a [`SpillState`] device holds) while every other array —
    /// labels, l2g, bitsets, worklist, comm buffers — stays raw.
    pub fn required_bytes_with(
        lg: &LocalGraph,
        plan: &SyncPlan,
        program: &P,
        state_bytes: u64,
        divisor: u64,
        spilled: bool,
    ) -> u64 {
        let style = program.style();
        let n = lg.num_vertices() as u64;
        // Only the arrays the program traverses are loaded: push programs
        // hold the out-CSR, pull programs the in-CSR, hybrid both; weights
        // ship only for weight-reading programs (sssp).
        let needs_out = style != Style::PullTopologyDriven;
        let needs_in = matches!(style, Style::PullTopologyDriven | Style::HybridPushPull);
        let weights = program.uses_weights();
        let mut raw = if spilled {
            lg.device_bytes_spilled_for(state_bytes, needs_out, needs_in, weights)
        } else {
            lg.device_bytes_for(state_bytes, needs_out, needs_in, weights)
        };
        raw += 2 * n.div_ceil(8); // active + updated bitsets
        if style != Style::PullTopologyDriven {
            raw += 4 * n; // worklist
        }
        raw += plan.buffer_entries_for_device(lg.device) * program.wire_bytes() * 2;
        raw * divisor
    }

    /// True when this device has local work pending.
    pub fn has_work(&self) -> bool {
        !self.active.is_empty()
    }

    /// Runs one compute phase: applies the operator over the active set
    /// (push) or all vertices (pull), accumulating into local proxies only.
    /// Returns the simulated kernel time.
    pub fn compute(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> SimTime {
        let t = match program.style() {
            Style::PushDataDriven | Style::HybridPushPull => {
                self.compute_push(program, balancer, work_scale)
            }
            Style::PushTopologyDriven => {
                // Every vertex is processed every round.
                self.active.set_all();
                self.compute_push(program, balancer, work_scale)
            }
            Style::PullTopologyDriven => self.compute_pull(program, balancer, work_scale),
        };
        let t = SimTime::from_secs_f64(t);
        self.compute_time += t;
        self.rounds += 1;
        t
    }

    fn compute_push(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> f64 {
        if !self.scratch.vector_kernels {
            return self.compute_push_legacy(program, balancer, work_scale);
        }
        let n = self.lg.num_vertices();
        if self.scratch.frontier.len() != n {
            self.scratch.frontier = DenseBitset::new(n);
        }
        // Snapshot-and-clear the worklist without materializing a Vec:
        // `active` swaps with the (empty) scratch frontier, which the body
        // then walks word-at-a-time. The degree sequence fed to the launch
        // model is ascending-id, exactly as the legacy Vec's.
        std::mem::swap(&mut self.active, &mut self.scratch.frontier);
        let kr = self.kernel.launch(
            balancer,
            self.scratch
                .frontier
                .iter_set()
                .map(|lv| self.lg.csr.out_degree(lv)),
            work_scale,
        );
        self.work_items += kr.work.total_work;
        // Monomorphize on the weighted-ness of the traversal so the
        // unweighted loop (every program but sssp) never touches the
        // weight array. Unweighted programs ignore the weight argument,
        // so passing 0 is value-identical to the legacy per-edge probe.
        if program.uses_weights() && self.lg.csr.is_weighted() {
            self.push_body::<true>(program);
        } else {
            self.push_body::<false>(program);
        }
        self.scratch.frontier.clear_all();
        kr.time + self.drain_decode_charge()
    }

    /// Per-phase decode charge of a spilled device (0 when raw or idle).
    fn drain_decode_charge(&mut self) -> f64 {
        match &mut self.spill {
            Some(sp) => self.kernel.decode_time(sp.take_decoded()),
            None => 0.0,
        }
    }

    fn push_body<const WEIGHTED: bool>(&mut self, program: &P) {
        let DeviceRun {
            lg,
            state,
            updated,
            bcast_dirty,
            scratch,
            spill,
            ..
        } = self;
        let frontier = &scratch.frontier;
        for (wi, &word) in frontier.words().iter().enumerate() {
            let mut w = word;
            let base = wi as u32 * 64;
            while w != 0 {
                let lv = base + w.trailing_zeros();
                w &= w - 1;
                let before = state[lv as usize];
                let mut src = before;
                let push = program.begin_push(&mut src);
                state[lv as usize] = src;
                // begin_push may flip canonical state (kcore's death):
                // masters must rebroadcast it.
                if src != before && lg.is_master(lv) {
                    bcast_dirty.set(lv);
                }
                if !push {
                    continue;
                }
                let (targets, weights) = match spill {
                    Some(sp) => sp.out_window(lv),
                    None => lg.csr.edge_window(lv),
                };
                if WEIGHTED {
                    for (&t, &ew) in targets.iter().zip(weights) {
                        if let Some(m) = program.edge_msg(&src, ew) {
                            if program.accumulate(&mut state[t as usize], m) {
                                updated.set(t);
                            }
                        }
                    }
                } else if let Some(m) = program.edge_msg(&src, 0) {
                    // The message is loop-invariant for an unweighted
                    // traversal (edge_msg is deterministic in (src, weight)
                    // within a compute phase), so hoist it out of the edge
                    // loop.
                    for &t in targets {
                        if program.accumulate(&mut state[t as usize], m) {
                            updated.set(t);
                        }
                    }
                }
            }
        }
    }

    fn compute_push_legacy(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> f64 {
        let mut actives = std::mem::take(&mut self.scratch.actives);
        actives.clear();
        actives.extend(self.active.iter_set());
        self.active.clear_all();
        let kr = self.kernel.launch(
            balancer,
            actives.iter().map(|&lv| self.lg.csr.out_degree(lv)),
            work_scale,
        );
        self.work_items += kr.work.total_work;
        // Weighted edges are a per-graph property, not per-edge: bind the
        // slice once instead of probing the Option on every edge.
        let ws = self.lg.csr.weights().unwrap_or(&[]);
        for &lv in &actives {
            let before = self.state[lv as usize];
            let mut src = before;
            let push = program.begin_push(&mut src);
            self.state[lv as usize] = src;
            // begin_push may flip canonical state (kcore's death): masters
            // must rebroadcast it.
            if src != before && self.lg.is_master(lv) {
                self.bcast_dirty.set(lv);
            }
            if !push {
                continue;
            }
            // Iterate this proxy's local out-edges, accumulating into the
            // local destination proxies.
            let lo = self.lg.csr.offsets()[lv as usize] as usize;
            let hi = self.lg.csr.offsets()[lv as usize + 1] as usize;
            for i in lo..hi {
                let n = self.lg.csr.targets()[i];
                let w = if ws.is_empty() { 0 } else { ws[i] };
                if let Some(m) = program.edge_msg(&src, w) {
                    if program.accumulate(&mut self.state[n as usize], m) {
                        self.updated.set(n);
                    }
                }
            }
        }
        self.scratch.actives = actives;
        kr.time
    }

    fn compute_pull(&mut self, program: &P, balancer: Balancer, work_scale: u64) -> f64 {
        let n = self.lg.num_vertices();
        let (time, total_work) = match self.scratch.pull_launch {
            Some(cached) if self.scratch.vector_kernels => cached,
            _ => {
                let kr = self.kernel.launch(
                    balancer,
                    (0..n).map(|lv| self.lg.in_csr.out_degree(lv)),
                    work_scale,
                );
                let fresh = (kr.time, kr.work.total_work);
                self.scratch.pull_launch = Some(fresh);
                fresh
            }
        };
        self.work_items += total_work;
        if !self.scratch.vector_kernels {
            self.pull_body_legacy(program);
        } else if program.uses_weights() && self.lg.in_csr.is_weighted() {
            self.pull_body_weighted(program);
        } else {
            self.pull_body_unweighted(program);
        }
        time + self.drain_decode_charge()
    }

    /// Unweighted pull over the precomputed nonempty rows. Three
    /// value-identical savings over the legacy dense walk: only rows with
    /// in-edges are visited (mirrors are pulled *from*, so most local
    /// in-windows are empty), the per-edge weight probe is gone (weight 0
    /// for an unweighted program), and the write-back is skipped when no
    /// contribution accumulated (`accumulate` returning false means the
    /// local copy still equals the stored state).
    fn pull_body_unweighted(&mut self, program: &P) {
        let DeviceRun {
            lg,
            state,
            updated,
            scratch,
            spill,
            ..
        } = self;
        if !scratch.pull_rows_built {
            scratch.pull_rows_built = true;
            scratch.pull_rows = (0..lg.num_vertices())
                .filter(|&lv| lg.in_csr.out_degree(lv) > 0)
                .collect();
        }
        let inert = program.inert_contribution();
        for &lv in &scratch.pull_rows {
            let (targets, _) = match spill {
                Some(sp) => sp.in_window(lv),
                None => lg.in_csr.edge_window(lv),
            };
            let mut changed = false;
            // Accumulate into a local copy so reads of other entries are
            // unaffected within the round.
            let mut st = state[lv as usize];
            match inert {
                // Branch-free fold: accumulating the identity is a
                // bitwise no-op (see `inert_contribution`), so every
                // in-edge contributes unconditionally and the per-edge
                // `Option` test disappears from the loop body.
                Some(z) => {
                    for &u in targets {
                        let c = program
                            .pull_contribution(&state[u as usize], 0)
                            .unwrap_or(z);
                        changed |= program.accumulate(&mut st, c);
                    }
                }
                None => {
                    for &u in targets {
                        if let Some(c) = program.pull_contribution(&state[u as usize], 0) {
                            changed |= program.accumulate(&mut st, c);
                        }
                    }
                }
            }
            if changed {
                state[lv as usize] = st;
                updated.set(lv);
            }
        }
    }

    fn pull_body_weighted(&mut self, program: &P) {
        let DeviceRun {
            lg,
            state,
            updated,
            spill,
            ..
        } = self;
        for lv in 0..lg.num_vertices() {
            let (targets, weights) = match spill {
                Some(sp) => sp.in_window(lv),
                None => lg.in_csr.edge_window(lv),
            };
            if targets.is_empty() {
                continue;
            }
            let mut changed = false;
            // Accumulate into a local copy so reads of other entries are
            // unaffected within the round.
            let mut st = state[lv as usize];
            for (&u, &ew) in targets.iter().zip(weights) {
                if let Some(c) = program.pull_contribution(&state[u as usize], ew) {
                    changed |= program.accumulate(&mut st, c);
                }
            }
            state[lv as usize] = st;
            if changed {
                updated.set(lv);
            }
        }
    }

    fn pull_body_legacy(&mut self, program: &P) {
        let ws = self.lg.in_csr.weights().unwrap_or(&[]);
        for lv in 0..self.lg.num_vertices() {
            let lo = self.lg.in_csr.offsets()[lv as usize] as usize;
            let hi = self.lg.in_csr.offsets()[lv as usize + 1] as usize;
            if lo == hi {
                continue;
            }
            let mut changed = false;
            // Accumulate into a local copy so reads of other entries are
            // unaffected within the round.
            let mut st = self.state[lv as usize];
            for i in lo..hi {
                let u = self.lg.in_csr.targets()[i];
                let w = if ws.is_empty() { 0 } else { ws[i] };
                if let Some(c) = program.pull_contribution(&self.state[u as usize], w) {
                    changed |= program.accumulate(&mut st, c);
                }
            }
            self.state[lv as usize] = st;
            if changed {
                self.updated.set(lv);
            }
        }
    }

    /// Bottom-up round for hybrid programs (direction-optimizing BFS):
    /// instead of expanding the frontier, every still-unsettled vertex
    /// ([`VertexProgram::pull_ready`]) scans its local in-edges for a
    /// settled parent. The frontier is consumed; newly settled vertices
    /// activate through the normal absorb/broadcast path.
    pub fn compute_bottom_up(
        &mut self,
        program: &P,
        balancer: Balancer,
        work_scale: u64,
    ) -> SimTime {
        self.active.clear_all();
        // Scan with early exit: each unsettled vertex probes its in-edges
        // until the first settled parent (in a synchronous round every
        // settled in-neighbor of an unsettled vertex carries the current
        // level, so the first hit is also the minimum). Only the probes
        // are charged — the whole point of bottom-up traversal. K-lane
        // programs opt into the exhaustive scan instead: one lane's first
        // hit says nothing about the others, so every in-edge is probed and
        // `accumulate` keeps the per-lane minimum.
        let mut probes = std::mem::take(&mut self.scratch.probes);
        probes.clear();
        if !self.scratch.vector_kernels {
            self.bottom_up_body_legacy(program, &mut probes);
        } else if program.uses_weights() && self.lg.in_csr.is_weighted() {
            self.bottom_up_body::<true>(program, &mut probes);
        } else {
            self.bottom_up_body::<false>(program, &mut probes);
        }
        let kr = self
            .kernel
            .launch(balancer, probes.iter().copied(), work_scale);
        self.scratch.probes = probes;
        self.work_items += kr.work.total_work;
        let t = SimTime::from_secs_f64(kr.time + self.drain_decode_charge());
        self.compute_time += t;
        self.rounds += 1;
        t
    }

    fn bottom_up_body<const WEIGHTED: bool>(&mut self, program: &P, probes: &mut Vec<u32>) {
        let exhaustive = program.pull_exhaustive();
        let DeviceRun {
            lg,
            state,
            updated,
            spill,
            ..
        } = self;
        for lv in 0..lg.num_vertices() {
            if !program.pull_ready(&state[lv as usize]) {
                continue;
            }
            let (targets, weights) = match spill {
                Some(sp) => sp.in_window(lv),
                None => lg.in_csr.edge_window(lv),
            };
            let mut st = state[lv as usize];
            let mut probed = 0u32;
            if WEIGHTED {
                for (&u, &ew) in targets.iter().zip(weights) {
                    probed += 1;
                    if let Some(m) = program.pull_msg(&state[u as usize], ew) {
                        if program.accumulate(&mut st, m) {
                            updated.set(lv);
                        }
                        if !exhaustive {
                            break;
                        }
                    }
                }
            } else {
                for &u in targets {
                    probed += 1;
                    if let Some(m) = program.pull_msg(&state[u as usize], 0) {
                        if program.accumulate(&mut st, m) {
                            updated.set(lv);
                        }
                        if !exhaustive {
                            break;
                        }
                    }
                }
            }
            state[lv as usize] = st;
            probes.push(probed);
        }
    }

    fn bottom_up_body_legacy(&mut self, program: &P, probes: &mut Vec<u32>) {
        let exhaustive = program.pull_exhaustive();
        let ws = self.lg.in_csr.weights().unwrap_or(&[]);
        for lv in 0..self.lg.num_vertices() {
            if !program.pull_ready(&self.state[lv as usize]) {
                continue;
            }
            let lo = self.lg.in_csr.offsets()[lv as usize] as usize;
            let hi = self.lg.in_csr.offsets()[lv as usize + 1] as usize;
            let mut st = self.state[lv as usize];
            let mut probed = 0u32;
            for i in lo..hi {
                probed += 1;
                let u = self.lg.in_csr.targets()[i];
                let w = if ws.is_empty() { 0 } else { ws[i] };
                if let Some(m) = program.pull_msg(&self.state[u as usize], w) {
                    if program.accumulate(&mut st, m) {
                        self.updated.set(lv);
                    }
                    if !exhaustive {
                        break;
                    }
                }
            }
            self.state[lv as usize] = st;
            probes.push(probed);
        }
    }

    /// Global frontier contribution for the hybrid direction decision.
    pub fn active_count(&self) -> u64 {
        self.active.count_ones() as u64
    }

    /// Lane-weighted frontier contribution: identical to
    /// [`DeviceRun::active_count`] for scalar programs, the aggregated
    /// bit-matrix frontier weight (sum of pending-lane popcounts over
    /// active vertices) for K-lane programs.
    pub fn frontier_weight(&self, program: &P) -> u64 {
        if program.lanes() == 1 {
            self.active_count()
        } else {
            self.active
                .iter_set()
                .map(|lv| program.frontier_weight(&self.state[lv as usize]))
                .sum()
        }
    }

    /// Absorb phase: folds accumulators into canonical state on masters.
    /// For data-driven programs only updated masters absorb; topology-driven
    /// programs absorb every master exactly once per round. Changed masters
    /// re-activate. Returns the number of masters whose canonical state
    /// changed.
    pub fn absorb_masters(&mut self, program: &P) -> u32 {
        let mut changed = 0;
        match program.style() {
            Style::PushDataDriven | Style::HybridPushPull | Style::PushTopologyDriven => {
                // Direct masters-range iteration: no per-round temporary,
                // and the word-level guard exits before touching any state
                // when no master was updated. `absorb` never writes
                // `updated`, so iterating it while mutating the other
                // fields is sound.
                if self.updated.any_in_range(0..self.lg.num_masters) {
                    for lv in self.updated.iter_set_in_range(0..self.lg.num_masters) {
                        if program.absorb(&mut self.state[lv as usize]) {
                            self.active.set(lv);
                            self.bcast_dirty.set(lv);
                            changed += 1;
                        }
                    }
                }
            }
            Style::PullTopologyDriven => {
                for lv in 0..self.lg.num_masters {
                    if program.absorb(&mut self.state[lv as usize]) {
                        self.bcast_dirty.set(lv);
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Builds the reduce payload for one link: `(entry index, delta)` pairs
    /// plus the wire size (paper-equivalent bytes). Under UO only updated
    /// mirrors are extracted; under AS every participating entry is sent.
    ///
    /// With an [`ExtractIndex`], UO extraction iterates
    /// `updated ∧ members` word-by-word and touches only updated entries —
    /// cost proportional to the update density, not the link size. The
    /// link's sides are strictly ascending in local ids (an index exists
    /// only then), so ascending local-id order *is* ascending entry order
    /// and the payload is byte-identical to the dense walk's. Simulated
    /// pack time is unchanged: the GPU-side prefix scan the model charges
    /// still runs over all local proxies.
    pub fn build_reduce(
        &mut self,
        program: &P,
        link: &PairLink,
        entries: &[u32],
        index: Option<&ExtractIndex>,
        mode: CommMode,
        divisor: u64,
    ) -> (Vec<(u32, P::Wire)>, u64) {
        let mut payload = self.scratch.take_buf();
        match index {
            Some(idx) if mode == CommMode::UpdatedOnly => {
                // Word-batched: the rank word and membership word load once
                // per 64 local ids instead of once per updated mirror. Same
                // ascending order, byte-identical payload.
                let state = &mut self.state;
                idx.for_each_entry(&self.updated, |lv, e| {
                    payload.push((e, program.take_delta(&mut state[lv as usize])));
                });
            }
            _ => {
                for &e in entries {
                    let lv = link.mirror_side[e as usize];
                    if mode == CommMode::AllShared || self.updated.get(lv) {
                        payload.push((e, program.take_delta(&mut self.state[lv as usize])));
                    }
                }
            }
        }
        let bytes = sized_wire_bytes(program, mode, entries.len() as u64, &payload) * divisor;
        (payload, bytes)
    }

    /// Applies a reduce payload on the master side, accumulating deltas and
    /// marking recipients updated. Returns true if anything changed.
    pub fn apply_reduce(
        &mut self,
        program: &P,
        link: &PairLink,
        payload: &[(u32, P::Wire)],
    ) -> bool {
        let mut any = false;
        for &(e, v) in payload {
            let lv = link.master_side[e as usize];
            if program.accumulate(&mut self.state[lv as usize], v) {
                self.updated.set(lv);
                any = true;
            }
        }
        any
    }

    /// Builds the broadcast payload for one link (master side): canonical
    /// values of updated (UO) or all (AS) participating masters. Same
    /// index fast path and ordering argument as [`DeviceRun::build_reduce`],
    /// over `bcast_dirty ∧ members` of the link's master side.
    #[allow(clippy::too_many_arguments)]
    pub fn build_broadcast(
        &mut self,
        program: &P,
        link: &PairLink,
        entries: &[u32],
        index: Option<&ExtractIndex>,
        mode: CommMode,
        divisor: u64,
        async_take: bool,
    ) -> (Vec<(u32, P::Wire)>, u64) {
        let mut payload = self.scratch.take_buf();
        match index {
            Some(idx) if mode == CommMode::UpdatedOnly => {
                let state = &self.state;
                idx.for_each_entry(&self.bcast_dirty, |lv, e| {
                    let v = if async_take {
                        program.canonical_async(&state[lv as usize])
                    } else {
                        program.canonical(&state[lv as usize])
                    };
                    payload.push((e, v));
                });
            }
            _ => {
                // Fully-dirty fast path: residual-style rounds mark every
                // master, making the per-entry dirty test pure overhead
                // (`bcast_dirty` only ever holds masters, so a full count
                // means every link entry passes). Same payload bytes; the
                // legacy baseline keeps the per-entry walk.
                let all_dirty = mode == CommMode::UpdatedOnly
                    && self.scratch.vector_kernels
                    && self.bcast_dirty.count_ones() == self.lg.num_masters;
                if all_dirty {
                    // Known-length extraction: one reservation, no
                    // per-entry capacity or dirty test.
                    let state = &self.state;
                    payload.extend(entries.iter().map(|&e| {
                        let st = &state[link.master_side[e as usize] as usize];
                        let v = if async_take {
                            program.canonical_async(st)
                        } else {
                            program.canonical(st)
                        };
                        (e, v)
                    }));
                } else {
                    for &e in entries {
                        let lv = link.master_side[e as usize];
                        if mode == CommMode::AllShared || self.bcast_dirty.get(lv) {
                            let v = if async_take {
                                program.canonical_async(&self.state[lv as usize])
                            } else {
                                program.canonical(&self.state[lv as usize])
                            };
                            payload.push((e, v));
                        }
                    }
                }
            }
        }
        let bytes = sized_wire_bytes(program, mode, entries.len() as u64, &payload) * divisor;
        (payload, bytes)
    }

    /// Applies a broadcast payload on the mirror side; changed mirrors
    /// activate (data-driven). Asynchronous engines pass `async_merge` so
    /// mass-conserving programs can merge additively instead of
    /// overwriting.
    pub fn apply_broadcast(
        &mut self,
        program: &P,
        link: &PairLink,
        payload: &[(u32, P::Wire)],
        async_merge: bool,
    ) -> bool {
        let data_driven = program.style() != Style::PullTopologyDriven;
        let mut any = false;
        for &(e, v) in payload {
            let lv = link.mirror_side[e as usize];
            let st = &mut self.state[lv as usize];
            let changed = if async_merge {
                program.merge_canonical_async(st, v)
            } else {
                program.set_canonical(st, v)
            };
            if changed {
                any = true;
                if data_driven {
                    self.active.set(lv);
                }
            }
        }
        any
    }

    /// Asynchronous pull engines: consume every mirror's read-side value
    /// after a local pull round (see
    /// [`VertexProgram::consume_after_pull`]).
    pub fn consume_mirrors_after_pull(&mut self, program: &P) {
        for lv in self.lg.num_masters..self.lg.num_vertices() {
            program.consume_after_pull(&mut self.state[lv as usize]);
        }
    }

    /// Clears both synchronization tracking bitsets (end of a round's
    /// sync). Programs with per-state sync bookkeeping (the K-lane
    /// adapter's dirty-lane masks) get their [`VertexProgram::on_sync_cleared`]
    /// hook on exactly the masters whose broadcast mark is being dropped.
    pub fn clear_sync_marks(&mut self, program: &P) {
        if program.wants_sync_clear() {
            for lv in self.bcast_dirty.iter_set_in_range(0..self.lg.num_masters) {
                program.on_sync_cleared(&mut self.state[lv as usize]);
            }
        }
        self.updated.clear_all();
        self.bcast_dirty.clear_all();
    }

    /// Asynchronous engines: after every broadcast payload of a round has
    /// been built, settle the per-master broadcast ledgers (consumable
    /// generations reset their "unsent" portion exactly once per round,
    /// after all mirror holders received it).
    pub fn after_broadcast_round(&mut self, program: &P) {
        // `after_broadcast` never writes `bcast_dirty`, so the direct
        // range iteration needs no temporary.
        for lv in self.bcast_dirty.iter_set_in_range(0..self.lg.num_masters) {
            program.after_broadcast(&mut self.state[lv as usize]);
        }
    }

    /// UO extraction cost for one sync direction on this device (prefix
    /// scan over all local proxies, in paper-equivalent items).
    pub fn pack_time(&self, mode: CommMode, divisor: u64) -> SimTime {
        match mode {
            CommMode::AllShared => SimTime::ZERO,
            CommMode::UpdatedOnly => SimTime::from_secs_f64(
                self.kernel
                    .scan_time(self.lg.num_vertices() as u64 * divisor),
            ),
        }
    }
}

/// Wire size of one built sync message, sized per entry through the
/// program's [`VertexProgram::wire_bytes`] /
/// [`VertexProgram::wire_payload_bytes`] hooks. For scalar programs (fixed
/// [`message::VAL_BYTES`] entries) this reproduces [`message::message_bytes`]
/// exactly; K-lane payloads scale with per-entry active-lane popcounts.
fn sized_wire_bytes<P: VertexProgram>(
    program: &P,
    mode: CommMode,
    entries: u64,
    payload: &[(u32, P::Wire)],
) -> u64 {
    let uo_payload = match mode {
        CommMode::UpdatedOnly => payload
            .iter()
            .map(|(_, w)| program.wire_payload_bytes(w))
            .sum(),
        CommMode::AllShared => 0,
    };
    message::message_bytes_sized(mode, entries, entries * program.wire_bytes(), uo_payload)
}

/// Mutably borrows two distinct devices.
pub fn get2_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get2_mut_borrows_disjoint() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = get2_mut(&mut v, 3, 1);
        *a += 10;
        *b += 20;
        assert_eq!(v, vec![1, 22, 3, 14]);
    }

    #[test]
    #[should_panic]
    fn get2_mut_rejects_same_index() {
        let mut v = vec![1, 2];
        let _ = get2_mut(&mut v, 1, 1);
    }
}
