//! The bulk-asynchronous (BASP) driver (§III-B, Gluon-Async).
//!
//! No global rounds: each device alternates between computing on its
//! partition and draining whatever messages have *arrived* by its own
//! clock, tolerating stale reads. Implemented as a deterministic
//! discrete-event simulation over a single event heap ordered by
//! `(virtual time, sequence number)`.
//!
//! The paper's two BASP effects emerge directly:
//!
//! * faster hosts keep computing instead of blocking, shrinking wait time
//!   (bfs/clueweb12 gets faster);
//! * devices compute with stale labels and redo work — local round counts
//!   and work items rise (bfs/uk14 gets slower).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dirgl_comm::SyncPlan;
use dirgl_comm::{NetModel, SendDesc, SimTime};
use dirgl_partition::Partition;

use crate::bsp::EngineOutcome;
use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::program::{Style, VertexProgram};
use crate::trace::{EngineKind, NoopSink, RoundRecord, TraceDirection, TraceSink};

enum Payload<P: VertexProgram> {
    /// Mirror deltas travelling holder → owner.
    Reduce {
        holder: u32,
        owner: u32,
        data: Vec<(u32, P::Wire)>,
    },
    /// Canonical values travelling owner → holder.
    Bcast {
        owner: u32,
        holder: u32,
        data: Vec<(u32, P::Wire)>,
    },
}

struct Event<P: VertexProgram> {
    time: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

enum EventKind<P: VertexProgram> {
    Round(u32),
    /// Receiver, payload, wire bytes (bytes ride along for the trace's
    /// received-volume attribution).
    Arrive(u32, Payload<P>, u64),
}

impl<P: VertexProgram> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P: VertexProgram> Eq for Event<P> {}
impl<P: VertexProgram> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: VertexProgram> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Runs `program` to quiescence under BASP (untraced).
pub fn run_basp<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
) -> EngineOutcome {
    run_basp_traced(program, devices, part, plan, net, config, &mut NoopSink)
}

/// Runs `program` to quiescence under BASP, emitting one
/// [`RoundRecord`] per *local* device round into `sink`. `round` in each
/// record is the device's own 0-based round ordinal (local rounds are not
/// globally aligned); `wait` is the idle time the device accumulated
/// between its previous round and this one.
pub fn run_basp_traced<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    let p = devices.len();
    let mode = config.variant.comm;
    let divisor = config.scale_divisor;
    let balancer = config.variant.balancer;
    let pull = program.style() == Style::PullTopologyDriven;
    let tracing = sink.enabled();

    let mut heap: BinaryHeap<Event<P>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_ev = |heap: &mut BinaryHeap<Event<P>>, seq: &mut u64, time, kind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    let mut busy = vec![SimTime::ZERO; p];
    let mut idle_since: Vec<Option<SimTime>> = vec![None; p];
    let mut round_pending = vec![false; p];
    let mut converged = vec![false; p];
    let mut inbox: Vec<Vec<Payload<P>>> = (0..p).map(|_| Vec::new()).collect();
    let mut comm_bytes = 0u64;
    let mut messages = 0u64;
    let mut net_state = net.new_state();

    // Per-device trace accumulators: wait since the previous local round,
    // and (bytes, messages) received since the previous local round.
    let mut tr_wait = vec![SimTime::ZERO; p];
    let mut tr_recv = vec![(0u64, 0u64); p];

    for d in 0..p as u32 {
        if pull || devices[d as usize].has_work() {
            round_pending[d as usize] = true;
            push_ev(&mut heap, &mut seq, SimTime::ZERO, EventKind::Round(d));
        } else {
            idle_since[d as usize] = Some(SimTime::ZERO);
        }
    }

    while let Some(ev) = heap.pop() {
        match ev.kind {
            EventKind::Arrive(d, payload, bytes) => {
                let du = d as usize;
                inbox[du].push(payload);
                if tracing {
                    tr_recv[du].0 += bytes;
                    tr_recv[du].1 += 1;
                }
                if !round_pending[du] {
                    // Wake the device at whichever is later: now or when its
                    // current round ends.
                    let wake = ev.time.max(busy[du]);
                    if let Some(s) = idle_since[du].take() {
                        let blocked = wake.saturating_sub(s);
                        devices[du].idle_time += blocked;
                        tr_wait[du] += blocked;
                    }
                    round_pending[du] = true;
                    push_ev(&mut heap, &mut seq, wake, EventKind::Round(d));
                }
            }
            EventKind::Round(d) => {
                let du = d as usize;
                round_pending[du] = false;
                let t = ev.time;

                // 1. Drain arrived messages. Only payloads that actually
                // change state un-converge the device: header-only sync
                // messages must not cause compute chatter.
                let mut arrivals_changed = false;
                for payload in inbox[du].split_off(0) {
                    match payload {
                        Payload::Reduce {
                            holder,
                            owner,
                            data,
                        } => {
                            debug_assert_eq!(owner, d);
                            let link = part.link(holder, owner);
                            arrivals_changed |= devices[du].apply_reduce(program, link, &data);
                        }
                        Payload::Bcast {
                            owner,
                            holder,
                            data,
                        } => {
                            debug_assert_eq!(holder, d);
                            let link = part.link(holder, owner);
                            arrivals_changed |=
                                devices[du].apply_broadcast(program, link, &data, true);
                        }
                    }
                }
                if arrivals_changed {
                    converged[du] = false;
                }
                // 2. Pre-compute absorb (data-driven): reduced deltas may
                // activate masters. Idempotent against an empty accumulator.
                // Canonical mass produced here reaches mirrors through the
                // take-based async broadcast in step 5 (consumable
                // generations keep an "unsent" ledger, so a generation the
                // master consumes in this round's compute is still shipped).
                let mut pre_changed = 0;
                if !pull {
                    pre_changed = devices[du].absorb_masters(program);
                }

                let capped = devices[du].rounds >= program.max_rounds();
                let work = if pull {
                    !converged[du]
                } else {
                    devices[du].has_work()
                };
                if !work || capped {
                    idle_since[du] = Some(t);
                    continue;
                }

                let frontier = if tracing {
                    devices[du].active_count()
                } else {
                    0
                };

                // 3. Compute one local round. Pull programs then consume
                // the mirror values read this round: local rounds are not
                // globally aligned, so an unconsumed mirror residual would
                // be re-read by the next local round (mass duplication).
                let dt = devices[du].compute(program, balancer, divisor);
                if pull {
                    devices[du].consume_mirrors_after_pull(program);
                }

                // 4. Absorb (masters fold local accumulations).
                let changed = devices[du].absorb_masters(program);
                if pull {
                    converged[du] = changed == 0;
                }

                // 5. Build and inject outgoing messages.
                let mut sent_any = false;
                let mut depart = t + dt;
                let mut sender_free = depart;
                let mut pack = SimTime::ZERO;
                let mut sent_bytes = 0u64;
                let mut sent_msgs = 0u64;
                for other in 0..p as u32 {
                    if other == d {
                        continue;
                    }
                    // Reduce: this device's mirror deltas to their masters.
                    let entries = plan.reduce(d, other);
                    if !entries.is_empty() {
                        let link = part.link(d, other);
                        // Every computing round syncs with every partner,
                        // as Gluon(-Async) does; an empty payload still
                        // costs the presence-bitset header.
                        let (data, bytes) =
                            devices[du].build_reduce(program, link, entries, mode, divisor);
                        {
                            if !sent_any {
                                sent_any = true;
                                pack = devices[du].pack_time(mode, divisor);
                                depart += pack;
                            }
                            let delivery = net.send(
                                &mut net_state,
                                SendDesc {
                                    from: d,
                                    to: other,
                                    bytes,
                                    depart,
                                },
                            );
                            comm_bytes += bytes;
                            messages += 1;
                            sent_bytes += bytes;
                            sent_msgs += 1;
                            sender_free = sender_free.max(delivery.sender_free);
                            push_ev(
                                &mut heap,
                                &mut seq,
                                delivery.arrival,
                                EventKind::Arrive(
                                    other,
                                    Payload::Reduce {
                                        holder: d,
                                        owner: other,
                                        data,
                                    },
                                    bytes,
                                ),
                            );
                        }
                    }
                    // Broadcast: this device's updated masters to mirrors.
                    let entries = plan.bcast(other, d);
                    if !entries.is_empty() {
                        let link = part.link(other, d);
                        let (data, bytes) = devices[du]
                            .build_broadcast(program, link, entries, mode, divisor, true);
                        {
                            if !sent_any {
                                sent_any = true;
                                pack = devices[du].pack_time(mode, divisor);
                                depart += pack;
                            }
                            let delivery = net.send(
                                &mut net_state,
                                SendDesc {
                                    from: d,
                                    to: other,
                                    bytes,
                                    depart,
                                },
                            );
                            comm_bytes += bytes;
                            messages += 1;
                            sent_bytes += bytes;
                            sent_msgs += 1;
                            sender_free = sender_free.max(delivery.sender_free);
                            push_ev(
                                &mut heap,
                                &mut seq,
                                delivery.arrival,
                                EventKind::Arrive(
                                    other,
                                    Payload::Bcast {
                                        owner: d,
                                        holder: other,
                                        data,
                                    },
                                    bytes,
                                ),
                            );
                        }
                    }
                }
                devices[du].after_broadcast_round(program);
                devices[du].clear_sync_marks();
                busy[du] = depart.max(sender_free);

                if tracing {
                    sink.record(RoundRecord {
                        engine: EngineKind::Basp,
                        round: devices[du].rounds - 1,
                        device: d,
                        direction: if pull {
                            TraceDirection::Pull
                        } else {
                            TraceDirection::Push
                        },
                        frontier,
                        compute: dt,
                        pack,
                        wait: tr_wait[du],
                        bytes_sent: sent_bytes,
                        bytes_received: tr_recv[du].0,
                        messages_sent: sent_msgs,
                        messages_received: tr_recv[du].1,
                        absorb_changed: pre_changed + changed,
                        clock_end: busy[du],
                    });
                    tr_wait[du] = SimTime::ZERO;
                    tr_recv[du] = (0, 0);
                }

                // 6. Keep rounding while local work remains; otherwise idle.
                let more = if pull {
                    !converged[du]
                } else {
                    devices[du].has_work()
                };
                if more && devices[du].rounds < program.max_rounds() {
                    // Throttled BASP: insert a gap so arrivals batch into
                    // the next round instead of each triggering redundant
                    // recomputation (the paper's §VII recommendation).
                    let next = busy[du] + SimTime::from_secs_f64(config.basp_round_gap_secs);
                    round_pending[du] = true;
                    push_ev(&mut heap, &mut seq, next, EventKind::Round(d));
                } else {
                    idle_since[du] = Some(busy[du]);
                }
            }
        }
    }
    sink.finish();

    // Quiescent: no events left, every device idle.
    let hosts = net.platform().num_hosts() as usize;
    let mut host_wait = vec![SimTime(u64::MAX); hosts];
    for d in 0..p as u32 {
        let h = net.platform().host_of(d) as usize;
        host_wait[h] = host_wait[h].min(devices[d as usize].idle_time);
    }
    for w in host_wait.iter_mut() {
        if *w == SimTime(u64::MAX) {
            *w = SimTime::ZERO;
        }
    }
    let min_rounds = devices.iter().map(|d| d.rounds).min().unwrap_or(0);
    EngineOutcome {
        clocks: busy,
        host_wait,
        comm_bytes,
        messages,
        rounds: min_rounds,
        min_rounds,
        max_rounds: devices.iter().map(|d| d.rounds).max().unwrap_or(0),
    }
}
