//! The bulk-asynchronous (BASP) driver (§III-B, Gluon-Async).
//!
//! No global rounds: each device alternates between computing on its
//! partition and draining whatever messages have *arrived* by its own
//! clock, tolerating stale reads. Implemented as a deterministic
//! discrete-event simulation over a single event heap ordered by
//! `(virtual time, sequence number)`.
//!
//! The paper's two BASP effects emerge directly:
//!
//! * faster hosts keep computing instead of blocking, shrinking wait time
//!   (bfs/clueweb12 gets faster);
//! * devices compute with stale labels and redo work — local round counts
//!   and work items rise (bfs/uk14 gets slower).
//!
//! Host parallelism: round events that fall on the *same* virtual instant
//! (the common case — devices start together and the round gap keeps them
//! aligned) are popped as one batch. The device-local half of each round
//! (drain, absorb, compute, payload build) fans out across the worker
//! pool; everything that orders the simulation — network sends, sequence
//! numbers, heap pushes, trace records — then runs sequentially in the
//! original pop order. Two same-instant rounds can never observe each
//! other's output (their arrivals carry strictly larger sequence numbers),
//! so the batched schedule is bit-identical to the sequential one.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rayon::prelude::*;

use dirgl_comm::SyncPlan;
use dirgl_comm::{NetModel, SendDesc, SimTime};
use dirgl_partition::Partition;

use crate::bsp::EngineOutcome;
use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::program::{Style, VertexProgram};
use crate::trace::{EngineKind, RoundRecord, TraceDirection, TraceSink};

enum Payload<P: VertexProgram> {
    /// Mirror deltas travelling holder → owner.
    Reduce {
        holder: u32,
        owner: u32,
        data: Vec<(u32, P::Wire)>,
    },
    /// Canonical values travelling owner → holder.
    Bcast {
        owner: u32,
        holder: u32,
        data: Vec<(u32, P::Wire)>,
    },
}

struct Event<P: VertexProgram> {
    time: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

enum EventKind<P: VertexProgram> {
    Round(u32),
    /// Receiver, payload, wire bytes (bytes ride along for the trace's
    /// received-volume attribution).
    Arrive(u32, Payload<P>, u64),
}

impl<P: VertexProgram> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P: VertexProgram> Eq for Event<P> {}
impl<P: VertexProgram> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: VertexProgram> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Device-local outcome of one round, produced by the parallel phase and
/// consumed by the sequential injection phase.
struct LocalRound<P: VertexProgram> {
    /// Post-round convergence flag (pull programs).
    conv: bool,
    /// The round ended before computing (no work, or round-capped).
    idle: bool,
    /// Active vertices when compute started (tracing only).
    frontier: u64,
    /// Kernel time of the compute phase.
    dt: SimTime,
    /// Pack time; zero when nothing was sent.
    pack: SimTime,
    /// Masters changed across the pre- and post-compute absorbs.
    absorb_changed: u32,
    /// Outgoing `(destination, payload, bytes)` in partner order.
    msgs: Vec<(u32, Payload<P>, u64)>,
}

/// One unit of parallel phase-A work: batch index, device id, the device's
/// exclusive slot, its drained mail, and its going-in convergence flag.
type PhaseAWork<'a, P> = (usize, u32, &'a mut DeviceRun<P>, Vec<Payload<P>>, bool);

/// Deprecated alias of [`run_basp`] from when the sink-taking variant was
/// a separate entry point.
#[deprecated(since = "0.2.0", note = "use `run_basp`, which now takes the sink")]
pub fn run_basp_traced<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    run_basp(program, devices, part, plan, net, config, sink)
}

/// Runs `program` to quiescence under BASP, emitting one
/// [`RoundRecord`] per *local* device round into `sink`. `round` in each
/// record is the device's own 0-based round ordinal (local rounds are not
/// globally aligned); `wait` is the idle time the device accumulated
/// between its previous round and this one. With a disabled sink (e.g.
/// [`crate::trace::NoopSink`]) no records are assembled.
pub fn run_basp<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    let p = devices.len();
    let mode = config.variant.comm;
    let divisor = config.scale_divisor;
    let balancer = config.variant.balancer;
    let pull = program.style() == Style::PullTopologyDriven;
    let tracing = sink.enabled();

    let mut heap: BinaryHeap<Event<P>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_ev = |heap: &mut BinaryHeap<Event<P>>, seq: &mut u64, time, kind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    let mut busy = vec![SimTime::ZERO; p];
    let mut idle_since: Vec<Option<SimTime>> = vec![None; p];
    let mut round_pending = vec![false; p];
    let mut converged = vec![false; p];
    let mut inbox: Vec<Vec<Payload<P>>> = (0..p).map(|_| Vec::new()).collect();
    let mut comm_bytes = 0u64;
    let mut messages = 0u64;
    let mut net_state = net.new_state();

    // Per-device trace accumulators: wait since the previous local round,
    // and (bytes, messages) received since the previous local round.
    let mut tr_wait = vec![SimTime::ZERO; p];
    let mut tr_recv = vec![(0u64, 0u64); p];

    for d in 0..p as u32 {
        if pull || devices[d as usize].has_work() {
            round_pending[d as usize] = true;
            push_ev(&mut heap, &mut seq, SimTime::ZERO, EventKind::Round(d));
        } else {
            idle_since[d as usize] = Some(SimTime::ZERO);
        }
    }

    while let Some(ev) = heap.pop() {
        match ev.kind {
            EventKind::Arrive(d, payload, bytes) => {
                let du = d as usize;
                inbox[du].push(payload);
                if tracing {
                    tr_recv[du].0 += bytes;
                    tr_recv[du].1 += 1;
                }
                if !round_pending[du] {
                    // Wake the device at whichever is later: now or when its
                    // current round ends.
                    let wake = ev.time.max(busy[du]);
                    if let Some(s) = idle_since[du].take() {
                        let blocked = wake.saturating_sub(s);
                        devices[du].idle_time += blocked;
                        tr_wait[du] += blocked;
                    }
                    round_pending[du] = true;
                    push_ev(&mut heap, &mut seq, wake, EventKind::Round(d));
                }
            }
            EventKind::Round(d) => {
                let t = ev.time;
                // Batch every Round event sharing this exact instant (an
                // interleaved same-time Arrive ends the batch: its effect
                // must stay ordered between the rounds around it).
                let mut batch: Vec<u32> = vec![d];
                while let Some(top) = heap.peek() {
                    if top.time != t || !matches!(top.kind, EventKind::Round(_)) {
                        break;
                    }
                    match heap.pop() {
                        Some(Event {
                            kind: EventKind::Round(d2),
                            ..
                        }) => batch.push(d2),
                        _ => unreachable!("peeked a Round event"),
                    }
                }
                for &bd in &batch {
                    round_pending[bd as usize] = false;
                }

                // Phase A: the device-local round — drain arrivals, absorb,
                // compute, build outgoing payloads. Nothing here reads or
                // writes another device or the simulation's shared order
                // (net state, seq, heap), so batched devices fan out across
                // the pool.
                let phase_a = |dev: &mut DeviceRun<P>,
                               d: u32,
                               mail: Vec<Payload<P>>,
                               mut conv: bool|
                 -> LocalRound<P> {
                    // 1. Drain arrived messages. Only payloads that actually
                    // change state un-converge the device: header-only sync
                    // messages must not cause compute chatter.
                    let mut arrivals_changed = false;
                    for payload in mail {
                        match payload {
                            Payload::Reduce {
                                holder,
                                owner,
                                data,
                            } => {
                                debug_assert_eq!(owner, d);
                                let link = part.link(holder, owner);
                                arrivals_changed |= dev.apply_reduce(program, link, &data);
                            }
                            Payload::Bcast {
                                owner,
                                holder,
                                data,
                            } => {
                                debug_assert_eq!(holder, d);
                                let link = part.link(holder, owner);
                                arrivals_changed |= dev.apply_broadcast(program, link, &data, true);
                            }
                        }
                    }
                    if arrivals_changed {
                        conv = false;
                    }
                    // 2. Pre-compute absorb (data-driven): reduced deltas may
                    // activate masters. Idempotent against an empty accumulator.
                    // Canonical mass produced here reaches mirrors through the
                    // take-based async broadcast in step 5 (consumable
                    // generations keep an "unsent" ledger, so a generation the
                    // master consumes in this round's compute is still shipped).
                    let mut pre_changed = 0;
                    if !pull {
                        pre_changed = dev.absorb_masters(program);
                    }

                    let capped = dev.rounds >= program.max_rounds();
                    let work = if pull { !conv } else { dev.has_work() };
                    if !work || capped {
                        return LocalRound {
                            conv,
                            idle: true,
                            frontier: 0,
                            dt: SimTime::ZERO,
                            pack: SimTime::ZERO,
                            absorb_changed: 0,
                            msgs: Vec::new(),
                        };
                    }

                    let frontier = if tracing { dev.active_count() } else { 0 };

                    // 3. Compute one local round. Pull programs then consume
                    // the mirror values read this round: local rounds are not
                    // globally aligned, so an unconsumed mirror residual would
                    // be re-read by the next local round (mass duplication).
                    let dt = dev.compute(program, balancer, divisor);
                    if pull {
                        dev.consume_mirrors_after_pull(program);
                    }

                    // 4. Absorb (masters fold local accumulations).
                    let changed = dev.absorb_masters(program);
                    if pull {
                        conv = changed == 0;
                    }

                    // 5a. Build outgoing payloads (timing and injection
                    // happen in the sequential phase below). Every
                    // computing round syncs with every partner, as
                    // Gluon(-Async) does; an empty payload still costs the
                    // presence-bitset header.
                    let mut msgs: Vec<(u32, Payload<P>, u64)> = Vec::new();
                    for other in 0..p as u32 {
                        if other == d {
                            continue;
                        }
                        // Reduce: this device's mirror deltas to their masters.
                        let entries = plan.reduce(d, other);
                        if !entries.is_empty() {
                            let link = part.link(d, other);
                            let (data, bytes) =
                                dev.build_reduce(program, link, entries, mode, divisor);
                            msgs.push((
                                other,
                                Payload::Reduce {
                                    holder: d,
                                    owner: other,
                                    data,
                                },
                                bytes,
                            ));
                        }
                        // Broadcast: this device's updated masters to mirrors.
                        let entries = plan.bcast(other, d);
                        if !entries.is_empty() {
                            let link = part.link(other, d);
                            let (data, bytes) =
                                dev.build_broadcast(program, link, entries, mode, divisor, true);
                            msgs.push((
                                other,
                                Payload::Bcast {
                                    owner: d,
                                    holder: other,
                                    data,
                                },
                                bytes,
                            ));
                        }
                    }
                    dev.after_broadcast_round(program);
                    dev.clear_sync_marks();
                    let pack = if msgs.is_empty() {
                        SimTime::ZERO
                    } else {
                        dev.pack_time(mode, divisor)
                    };
                    LocalRound {
                        conv,
                        idle: false,
                        frontier,
                        dt,
                        pack,
                        absorb_changed: pre_changed + changed,
                        msgs,
                    }
                };

                let outs: Vec<(u32, LocalRound<P>)> = if batch.len() == 1 {
                    let du = d as usize;
                    let mail = std::mem::take(&mut inbox[du]);
                    vec![(d, phase_a(&mut devices[du], d, mail, converged[du]))]
                } else {
                    // Select disjoint `&mut` device slots in ascending index
                    // order, then fan out. Results return to pop order via
                    // the carried batch index.
                    let mut order: Vec<usize> = (0..batch.len()).collect();
                    order.sort_unstable_by_key(|&i| batch[i]);
                    let mut work: Vec<PhaseAWork<P>> = Vec::with_capacity(batch.len());
                    let mut rest: &mut [DeviceRun<P>] = devices;
                    let mut base = 0usize;
                    for &i in &order {
                        let du = batch[i] as usize;
                        let r = std::mem::take(&mut rest);
                        let (_, tail) = r.split_at_mut(du - base);
                        let (dev, tail2) = tail.split_first_mut().expect("device in range");
                        rest = tail2;
                        base = du + 1;
                        work.push((
                            i,
                            batch[i],
                            dev,
                            std::mem::take(&mut inbox[du]),
                            converged[du],
                        ));
                    }
                    let mut outs: Vec<(usize, u32, LocalRound<P>)> = work
                        .into_par_iter()
                        .map(|(bi, bd, dev, mail, conv)| (bi, bd, phase_a(dev, bd, mail, conv)))
                        .collect();
                    outs.sort_unstable_by_key(|o| o.0);
                    outs.into_iter().map(|(_, bd, a)| (bd, a)).collect()
                };

                // Phase B: inject sends into the shared network/heap state
                // and emit trace records, sequentially in pop order —
                // sequence numbers, link occupancy and the JSONL stream
                // come out exactly as in an unbatched run.
                for (bd, a) in outs {
                    let du = bd as usize;
                    converged[du] = a.conv;
                    if a.idle {
                        idle_since[du] = Some(t);
                        continue;
                    }
                    let mut depart = t + a.dt;
                    let mut sender_free = depart;
                    depart += a.pack;
                    let mut sent_bytes = 0u64;
                    let mut sent_msgs = 0u64;
                    for (other, payload, bytes) in a.msgs {
                        let delivery = net.send(
                            &mut net_state,
                            SendDesc {
                                from: bd,
                                to: other,
                                bytes,
                                depart,
                            },
                        );
                        comm_bytes += bytes;
                        messages += 1;
                        sent_bytes += bytes;
                        sent_msgs += 1;
                        sender_free = sender_free.max(delivery.sender_free);
                        push_ev(
                            &mut heap,
                            &mut seq,
                            delivery.arrival,
                            EventKind::Arrive(other, payload, bytes),
                        );
                    }
                    busy[du] = depart.max(sender_free);

                    if tracing {
                        sink.record(RoundRecord {
                            engine: EngineKind::Basp,
                            round: devices[du].rounds - 1,
                            device: bd,
                            direction: if pull {
                                TraceDirection::Pull
                            } else {
                                TraceDirection::Push
                            },
                            frontier: a.frontier,
                            compute: a.dt,
                            pack: a.pack,
                            wait: tr_wait[du],
                            bytes_sent: sent_bytes,
                            bytes_received: tr_recv[du].0,
                            messages_sent: sent_msgs,
                            messages_received: tr_recv[du].1,
                            absorb_changed: a.absorb_changed,
                            clock_end: busy[du],
                        });
                        tr_wait[du] = SimTime::ZERO;
                        tr_recv[du] = (0, 0);
                    }

                    // 6. Keep rounding while local work remains; otherwise idle.
                    let more = if pull {
                        !converged[du]
                    } else {
                        devices[du].has_work()
                    };
                    if more && devices[du].rounds < program.max_rounds() {
                        // Throttled BASP: insert a gap so arrivals batch into
                        // the next round instead of each triggering redundant
                        // recomputation (the paper's §VII recommendation).
                        let next = busy[du] + SimTime::from_secs_f64(config.basp_round_gap_secs);
                        round_pending[du] = true;
                        push_ev(&mut heap, &mut seq, next, EventKind::Round(bd));
                    } else {
                        idle_since[du] = Some(busy[du]);
                    }
                }
            }
        }
    }
    sink.finish();

    // Quiescent: no events left, every device idle.
    let hosts = net.platform().num_hosts() as usize;
    let mut host_wait = vec![SimTime(u64::MAX); hosts];
    for d in 0..p as u32 {
        let h = net.platform().host_of(d) as usize;
        host_wait[h] = host_wait[h].min(devices[d as usize].idle_time);
    }
    for w in host_wait.iter_mut() {
        if *w == SimTime(u64::MAX) {
            *w = SimTime::ZERO;
        }
    }
    let min_rounds = devices.iter().map(|d| d.rounds).min().unwrap_or(0);
    EngineOutcome {
        clocks: busy,
        host_wait,
        comm_bytes,
        messages,
        rounds: min_rounds,
        min_rounds,
        max_rounds: devices.iter().map(|d| d.rounds).max().unwrap_or(0),
    }
}
