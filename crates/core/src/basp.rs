//! The bulk-asynchronous (BASP) driver (§III-B, Gluon-Async).
//!
//! No global rounds: each device alternates between computing on its
//! partition and draining whatever messages have *arrived* by its own
//! clock, tolerating stale reads. Implemented as a deterministic
//! discrete-event simulation over a single event heap ordered by
//! `(virtual time, sequence number)`.
//!
//! The paper's two BASP effects emerge directly:
//!
//! * faster hosts keep computing instead of blocking, shrinking wait time
//!   (bfs/clueweb12 gets faster);
//! * devices compute with stale labels and redo work — local round counts
//!   and work items rise (bfs/uk14 gets slower).
//!
//! Host parallelism: round events that fall on the *same* virtual instant
//! (the common case — devices start together and the round gap keeps them
//! aligned) are popped as one batch. The device-local half of each round
//! (drain, absorb, compute, payload build) fans out across the worker
//! pool; everything that orders the simulation — network sends, sequence
//! numbers, heap pushes, trace records — then runs sequentially in the
//! original pop order. Two same-instant rounds can never observe each
//! other's output (their arrivals carry strictly larger sequence numbers),
//! so the batched schedule is bit-identical to the sequential one.
//!
//! Resilience: with [`RunConfig::faults`] set, sends go through the
//! reliable transport; a device crash (scheduled by *local* round ordinal)
//! silences its partition, is detected when a sender exhausts its retry
//! budget — or, if no message was in flight, when the drained heap leaves
//! an unrecovered corpse — and recovery restores a full-simulation
//! checkpoint (devices, inboxes, event heap, link occupancy) shifted
//! forward to the detection instant. Without rejoin the dead device's
//! partition is re-homed onto a survivor and the simulation continues
//! degraded.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rayon::prelude::*;

use dirgl_comm::SyncPlan;
use dirgl_comm::{CrashSpec, NetModel, NetState, SendDesc, SimTime};
use dirgl_partition::Partition;

use crate::bsp::{EngineOutcome, FaultCtx};
use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::program::{Style, VertexProgram};
use crate::resilience::{checkpoint_bytes, pcie_transfer_time, DeviceSnapshot, ResilienceStats};
use crate::trace::{EngineKind, FaultEvent, RoundRecord, TraceDirection, TraceSink};

enum Payload<P: VertexProgram> {
    /// Mirror deltas travelling holder → owner.
    Reduce {
        holder: u32,
        owner: u32,
        data: Vec<(u32, P::Wire)>,
    },
    /// Canonical values travelling owner → holder.
    Bcast {
        owner: u32,
        holder: u32,
        data: Vec<(u32, P::Wire)>,
    },
}

// Manual impls: `P` itself is not `Clone`, only the payload data is, so
// the derives would put the wrong bound on. Cloning exists for the BASP
// checkpoint, which snapshots in-flight messages.
impl<P: VertexProgram> Clone for Payload<P> {
    fn clone(&self) -> Self {
        match self {
            Payload::Reduce {
                holder,
                owner,
                data,
            } => Payload::Reduce {
                holder: *holder,
                owner: *owner,
                data: data.clone(),
            },
            Payload::Bcast {
                owner,
                holder,
                data,
            } => Payload::Bcast {
                owner: *owner,
                holder: *holder,
                data: data.clone(),
            },
        }
    }
}

struct Event<P: VertexProgram> {
    time: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

enum EventKind<P: VertexProgram> {
    Round(u32),
    /// Receiver, payload, wire bytes (bytes ride along for the trace's
    /// received-volume attribution).
    Arrive(u32, Payload<P>, u64),
}

impl<P: VertexProgram> Clone for EventKind<P> {
    fn clone(&self) -> Self {
        match self {
            EventKind::Round(d) => EventKind::Round(*d),
            EventKind::Arrive(d, payload, bytes) => EventKind::Arrive(*d, payload.clone(), *bytes),
        }
    }
}

impl<P: VertexProgram> Clone for Event<P> {
    fn clone(&self) -> Self {
        Event {
            time: self.time,
            seq: self.seq,
            kind: self.kind.clone(),
        }
    }
}

impl<P: VertexProgram> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P: VertexProgram> Eq for Event<P> {}
impl<P: VertexProgram> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: VertexProgram> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Device-local outcome of one round, produced by the parallel phase and
/// consumed by the sequential injection phase.
struct LocalRound<P: VertexProgram> {
    /// Post-round convergence flag (pull programs).
    conv: bool,
    /// The round ended before computing (no work, or round-capped).
    idle: bool,
    /// Active vertices when compute started (tracing only).
    frontier: u64,
    /// Kernel time of the compute phase.
    dt: SimTime,
    /// Pack time; zero when nothing was sent.
    pack: SimTime,
    /// Masters changed across the pre- and post-compute absorbs.
    absorb_changed: u32,
    /// Outgoing `(destination, payload, bytes)` in partner order.
    msgs: Vec<(u32, Payload<P>, u64)>,
    /// The device's drained inbox vector, returned (emptied) so phase B
    /// can hand it back to `inbox[d]` instead of allocating a fresh one.
    mail: Vec<Payload<P>>,
}

/// One unit of parallel phase-A work: batch index, device id, the device's
/// exclusive slot, its drained mail, and its going-in convergence flag.
type PhaseAWork<'a, P> = (usize, u32, &'a mut DeviceRun<P>, Vec<Payload<P>>, bool);

/// A restorable point of the whole BASP simulation: device state plus
/// every piece of discrete-event machinery (in-flight events, inboxes,
/// link occupancy, per-device flags). Sequence counters and per-link
/// fault sequence numbers are deliberately *not* captured: a replay draws
/// fresh fault fates, so a drop that killed the first timeline cannot
/// recur forever (livelock-freedom).
struct BaspCheckpoint<P: VertexProgram> {
    taken_at: SimTime,
    devs: Vec<DeviceSnapshot<P>>,
    busy: Vec<SimTime>,
    idle_since: Vec<Option<SimTime>>,
    round_pending: Vec<bool>,
    converged: Vec<bool>,
    inbox: Vec<Vec<Payload<P>>>,
    events: Vec<Event<P>>,
    net_state: NetState,
    tr_wait: Vec<SimTime>,
    tr_recv: Vec<(u64, u64)>,
}

#[allow(clippy::too_many_arguments)]
fn take_basp_checkpoint<P: VertexProgram>(
    program: &P,
    devices: &[DeviceRun<P>],
    busy: &mut [SimTime],
    idle_since: &[Option<SimTime>],
    round_pending: &[bool],
    converged: &[bool],
    inbox: &[Vec<Payload<P>>],
    heap: &BinaryHeap<Event<P>>,
    net_state: &NetState,
    tr_wait: &[SimTime],
    tr_recv: &[(u64, u64)],
    divisor: u64,
    net: &NetModel,
    stats: &mut ResilienceStats,
    sink: &mut dyn TraceSink,
) -> BaspCheckpoint<P> {
    let cluster = net.platform().cluster;
    let mut total = 0u64;
    for (i, dev) in devices.iter().enumerate() {
        let bytes = checkpoint_bytes(dev, program, divisor);
        total += bytes;
        busy[i] += pcie_transfer_time(&cluster, bytes);
    }
    let taken_at = busy.iter().copied().max().unwrap_or(SimTime::ZERO);
    stats.checkpoints_taken += 1;
    stats.checkpoint_bytes += total;
    sink.fault(FaultEvent::CheckpointTaken {
        at: taken_at,
        round: devices.iter().map(|d| d.rounds).min().unwrap_or(0),
        bytes: total,
    });
    BaspCheckpoint {
        taken_at,
        devs: devices.iter().map(DeviceSnapshot::capture).collect(),
        busy: busy.to_vec(),
        idle_since: idle_since.to_vec(),
        round_pending: round_pending.to_vec(),
        converged: converged.to_vec(),
        inbox: inbox.to_vec(),
        events: heap.iter().cloned().collect(),
        net_state: net_state.clone(),
        tr_wait: tr_wait.to_vec(),
        tr_recv: tr_recv.to_vec(),
    }
}

/// Rolls the whole simulation back to `ckpt`, shifted forward so it
/// resumes at the crash-detection instant, then either revives the dead
/// device (rejoin) or re-homes its partition onto a survivor.
#[allow(clippy::too_many_arguments)]
fn recover_basp<P: VertexProgram>(
    program: &P,
    net: &NetModel,
    divisor: u64,
    cr: CrashSpec,
    ckpt: &BaspCheckpoint<P>,
    detect_at: SimTime,
    devices: &mut [DeviceRun<P>],
    busy: &mut [SimTime],
    idle_since: &mut [Option<SimTime>],
    round_pending: &mut [bool],
    converged: &mut [bool],
    inbox: &mut [Vec<Payload<P>>],
    heap: &mut BinaryHeap<Event<P>>,
    net_state: &mut NetState,
    phys_free: &mut [SimTime],
    tr_wait: &mut [SimTime],
    tr_recv: &mut [(u64, u64)],
    ctx: &mut FaultCtx<'_>,
    stats: &mut ResilienceStats,
    sink: &mut dyn TraceSink,
) {
    stats.rollbacks += 1;
    stats.rounds_replayed += devices
        .iter()
        .zip(&ckpt.devs)
        .map(|(d, s)| d.rounds.saturating_sub(s.rounds()))
        .sum::<u32>();
    let pre_max = busy.iter().copied().max().unwrap_or(SimTime::ZERO);

    // Every device reloads its snapshot over PCIe; the simulation resumes
    // once the slowest reload completes.
    let cluster = net.platform().cluster;
    let mut resume = detect_at;
    for dev in devices.iter() {
        let cost = pcie_transfer_time(&cluster, checkpoint_bytes(dev, program, divisor));
        resume = resume.max(detect_at + cost);
    }
    stats.recovery_time += resume.saturating_sub(pre_max);

    // Restore, time-shifted: everything the snapshot scheduled `x` seconds
    // into its future stays `x` seconds into the resumed run's future.
    let delta = resume.saturating_sub(ckpt.taken_at);
    for (dev, snap) in devices.iter_mut().zip(&ckpt.devs) {
        snap.restore(dev);
    }
    for (b, s) in busy.iter_mut().zip(&ckpt.busy) {
        *b = *s + delta;
    }
    for (i, s) in idle_since.iter_mut().zip(&ckpt.idle_since) {
        *i = s.map(|t| t + delta);
    }
    round_pending.copy_from_slice(&ckpt.round_pending);
    converged.copy_from_slice(&ckpt.converged);
    for (ib, s) in inbox.iter_mut().zip(&ckpt.inbox) {
        *ib = s.clone();
    }
    tr_wait.copy_from_slice(&ckpt.tr_wait);
    tr_recv.copy_from_slice(&ckpt.tr_recv);
    *net_state = ckpt.net_state.clone();
    net_state.shift(delta);
    heap.clear();
    for e in &ckpt.events {
        // Original sequence numbers are kept: relative event order inside
        // the snapshot is part of the restored state. The live counter
        // was never rolled back, so post-recovery events sort after all
        // restored ones at equal instants.
        heap.push(Event {
            time: e.time + delta,
            seq: e.seq,
            kind: e.kind.clone(),
        });
    }

    if cr.rejoin {
        ctx.health.revive(cr.device);
        stats.rejoins += 1;
    } else {
        let adopter = ctx
            .home
            .pick_adopter(&ctx.health.alive_flags())
            .expect("at least one survivor");
        let masters = devices[cr.device as usize].lg.num_masters as u64;
        ctx.home.rehome(cr.device, adopter);
        stats.masters_reassigned += masters;
        sink.fault(FaultEvent::MastersReassigned {
            at: resume,
            from_device: cr.device,
            to_device: adopter,
            masters,
        });
    }
    for f in phys_free.iter_mut() {
        *f = SimTime::ZERO;
    }
    for l in 0..busy.len() as u32 {
        let pd = ctx.home.phys(l) as usize;
        phys_free[pd] = phys_free[pd].max(busy[l as usize]);
    }
    sink.fault(FaultEvent::Rollback {
        at: resume,
        to_round: ckpt.devs.iter().map(|s| s.rounds()).min().unwrap_or(0),
        device: cr.device,
    });
}

/// Runs `program` to quiescence under BASP, emitting one
/// [`RoundRecord`] per *local* device round into `sink`. `round` in each
/// record is the device's own 0-based round ordinal (local rounds are not
/// globally aligned); `wait` is the idle time the device accumulated
/// between its previous round and this one. With a disabled sink (e.g.
/// [`crate::trace::NoopSink`]) no records are assembled.
pub fn run_basp<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    let p = devices.len();
    let mode = config.variant.comm;
    let divisor = config.scale_divisor;
    let balancer = config.variant.balancer;
    let pull = program.style() == Style::PullTopologyDriven;
    let tracing = sink.enabled();
    // Sparsity-proportional UO extraction and payload-buffer pooling (see
    // `run_bsp`; both paths byte-identical, pinned by tests).
    let use_index = !config.legacy_hotpath;
    for d in devices.iter_mut() {
        d.scratch.pooling = use_index;
        d.scratch.vector_kernels = use_index;
    }

    let mut heap: BinaryHeap<Event<P>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_ev = |heap: &mut BinaryHeap<Event<P>>, seq: &mut u64, time, kind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    let mut busy = vec![SimTime::ZERO; p];
    let mut idle_since: Vec<Option<SimTime>> = vec![None; p];
    let mut round_pending = vec![false; p];
    let mut converged = vec![false; p];
    let mut inbox: Vec<Vec<Payload<P>>> = (0..p).map(|_| Vec::new()).collect();
    let mut comm_bytes = 0u64;
    let mut messages = 0u64;
    let mut net_state = net.new_state();

    // Fault layer (None unless configured; a none-plan context is inert
    // and byte-identical to the raw path — pinned by tests).
    let mut fctx = FaultCtx::new(net, config);
    let mut stats = ResilienceStats::default();
    let crash_plan = config.faults.as_ref().and_then(|f| f.crash);
    let ckpt_every = config.checkpoint_every_rounds;
    let recovery_on = fctx.is_some() && (crash_plan.is_some() || ckpt_every > 0);
    let mut next_ckpt = if ckpt_every > 0 { ckpt_every } else { u32::MAX };
    // Per-physical-device serialization floor, meaningful only after
    // degradation re-homing put two partitions on one device.
    let mut phys_free = vec![SimTime::ZERO; p];
    let mut pending_failures: Vec<SimTime> = Vec::new();
    let mut straggler_announced = false;

    // Per-device trace accumulators: wait since the previous local round,
    // and (bytes, messages) received since the previous local round.
    let mut tr_wait = vec![SimTime::ZERO; p];
    let mut tr_recv = vec![(0u64, 0u64); p];

    for d in 0..p as u32 {
        if pull || devices[d as usize].has_work() {
            round_pending[d as usize] = true;
            push_ev(&mut heap, &mut seq, SimTime::ZERO, EventKind::Round(d));
        } else {
            idle_since[d as usize] = Some(SimTime::ZERO);
        }
    }

    let mut checkpoint: Option<BaspCheckpoint<P>> = None;
    if recovery_on {
        checkpoint = Some(take_basp_checkpoint(
            program,
            devices,
            &mut busy,
            &idle_since,
            &round_pending,
            &converged,
            &inbox,
            &heap,
            &net_state,
            &tr_wait,
            &tr_recv,
            divisor,
            net,
            &mut stats,
            sink,
        ));
    }

    'sim: loop {
        while let Some(ev) = heap.pop() {
            match ev.kind {
                EventKind::Arrive(d, payload, bytes) => {
                    // Mail for a dead partition evaporates; the sender's
                    // failure detection happens on the transport side.
                    if fctx.as_ref().is_some_and(|c| !c.alive_logical(d)) {
                        continue;
                    }
                    let du = d as usize;
                    inbox[du].push(payload);
                    if tracing {
                        tr_recv[du].0 += bytes;
                        tr_recv[du].1 += 1;
                    }
                    if !round_pending[du] {
                        // Wake the device at whichever is later: now or when its
                        // current round ends.
                        let wake = ev.time.max(busy[du]);
                        if let Some(s) = idle_since[du].take() {
                            let blocked = wake.saturating_sub(s);
                            devices[du].idle_time += blocked;
                            tr_wait[du] += blocked;
                        }
                        round_pending[du] = true;
                        push_ev(&mut heap, &mut seq, wake, EventKind::Round(d));
                    }
                }
                EventKind::Round(d) => {
                    let t = ev.time;
                    // Batch every Round event sharing this exact instant (an
                    // interleaved same-time Arrive ends the batch: its effect
                    // must stay ordered between the rounds around it).
                    let mut batch: Vec<u32> = vec![d];
                    while let Some(top) = heap.peek() {
                        if top.time != t || !matches!(top.kind, EventKind::Round(_)) {
                            break;
                        }
                        match heap.pop() {
                            Some(Event {
                                kind: EventKind::Round(d2),
                                ..
                            }) => batch.push(d2),
                            _ => unreachable!("peeked a Round event"),
                        }
                    }
                    for &bd in &batch {
                        round_pending[bd as usize] = false;
                    }

                    // Scheduled crash: fires when the victim is about to
                    // execute the configured *local* round ordinal. The
                    // victim's round (and any batch-mates' mail to it) simply
                    // stops happening.
                    if let (Some(ctx), Some(cr)) = (fctx.as_mut(), crash_plan) {
                        if !ctx.crash_fired
                            && batch.contains(&cr.device)
                            && devices[cr.device as usize].rounds == cr.round
                        {
                            ctx.crash_fired = true;
                            ctx.health.mark_dead(cr.device);
                            stats.crashes += 1;
                            sink.fault(FaultEvent::FaultInjected {
                                at: t,
                                device: cr.device,
                                kind: "crash",
                            });
                        }
                        batch.retain(|&bd| ctx.alive_logical(bd));
                        if batch.is_empty() {
                            continue;
                        }
                    }

                    // Phase A: the device-local round — drain arrivals, absorb,
                    // compute, build outgoing payloads. Nothing here reads or
                    // writes another device or the simulation's shared order
                    // (net state, seq, heap), so batched devices fan out across
                    // the pool.
                    let phase_a = |dev: &mut DeviceRun<P>,
                                   d: u32,
                                   mut mail: Vec<Payload<P>>,
                                   mut conv: bool|
                     -> LocalRound<P> {
                        // 1. Drain arrived messages. Only payloads that actually
                        // change state un-converge the device: header-only sync
                        // messages must not cause compute chatter. Applied
                        // payload vectors recycle into this device's pool.
                        let mut arrivals_changed = false;
                        for payload in mail.drain(..) {
                            match payload {
                                Payload::Reduce {
                                    holder,
                                    owner,
                                    data,
                                } => {
                                    debug_assert_eq!(owner, d);
                                    let link = part.link(holder, owner);
                                    arrivals_changed |= dev.apply_reduce(program, link, &data);
                                    dev.scratch.recycle(data);
                                }
                                Payload::Bcast {
                                    owner,
                                    holder,
                                    data,
                                } => {
                                    debug_assert_eq!(holder, d);
                                    let link = part.link(holder, owner);
                                    arrivals_changed |=
                                        dev.apply_broadcast(program, link, &data, true);
                                    dev.scratch.recycle(data);
                                }
                            }
                        }
                        if arrivals_changed {
                            conv = false;
                        }
                        // 2. Pre-compute absorb (data-driven): reduced deltas may
                        // activate masters. Idempotent against an empty accumulator.
                        // Canonical mass produced here reaches mirrors through the
                        // take-based async broadcast in step 5 (consumable
                        // generations keep an "unsent" ledger, so a generation the
                        // master consumes in this round's compute is still shipped).
                        let mut pre_changed = 0;
                        if !pull {
                            pre_changed = dev.absorb_masters(program);
                        }

                        let capped = dev.rounds >= program.max_rounds();
                        let work = if pull { !conv } else { dev.has_work() };
                        if !work || capped {
                            return LocalRound {
                                conv,
                                idle: true,
                                frontier: 0,
                                dt: SimTime::ZERO,
                                pack: SimTime::ZERO,
                                absorb_changed: 0,
                                msgs: Vec::new(),
                                mail,
                            };
                        }

                        let frontier = if tracing { dev.active_count() } else { 0 };

                        // 3. Compute one local round. Pull programs then consume
                        // the mirror values read this round: local rounds are not
                        // globally aligned, so an unconsumed mirror residual would
                        // be re-read by the next local round (mass duplication).
                        let dt = dev.compute(program, balancer, divisor);
                        if pull {
                            dev.consume_mirrors_after_pull(program);
                        }

                        // 4. Absorb (masters fold local accumulations).
                        let changed = dev.absorb_masters(program);
                        if pull {
                            conv = changed == 0;
                        }

                        // 5a. Build outgoing payloads (timing and injection
                        // happen in the sequential phase below). Every
                        // computing round syncs with every partner, as
                        // Gluon(-Async) does; an empty payload still costs the
                        // presence-bitset header.
                        let mut msgs: Vec<(u32, Payload<P>, u64)> = Vec::new();
                        // Density gate (see `run_bsp`): the index engages
                        // only when the frontier is sparse relative to the
                        // link; the dense walk wins otherwise. Identical
                        // bytes either way.
                        let (upd, dirty) = if use_index {
                            (
                                dev.updated.count_ones() as usize,
                                dev.bcast_dirty.count_ones() as usize,
                            )
                        } else {
                            (usize::MAX, usize::MAX)
                        };
                        for other in 0..p as u32 {
                            if other == d {
                                continue;
                            }
                            // Reduce: this device's mirror deltas to their masters.
                            let entries = plan.reduce(d, other);
                            if !entries.is_empty() {
                                let link = part.link(d, other);
                                let idx = if upd < entries.len() / 2 {
                                    plan.reduce_index(d, other)
                                } else {
                                    None
                                };
                                let (data, bytes) =
                                    dev.build_reduce(program, link, entries, idx, mode, divisor);
                                msgs.push((
                                    other,
                                    Payload::Reduce {
                                        holder: d,
                                        owner: other,
                                        data,
                                    },
                                    bytes,
                                ));
                            }
                            // Broadcast: this device's updated masters to mirrors.
                            let entries = plan.bcast(other, d);
                            if !entries.is_empty() {
                                let link = part.link(other, d);
                                let idx = if dirty < entries.len() / 2 {
                                    plan.bcast_index(other, d)
                                } else {
                                    None
                                };
                                let (data, bytes) = dev.build_broadcast(
                                    program, link, entries, idx, mode, divisor, true,
                                );
                                msgs.push((
                                    other,
                                    Payload::Bcast {
                                        owner: d,
                                        holder: other,
                                        data,
                                    },
                                    bytes,
                                ));
                            }
                        }
                        dev.after_broadcast_round(program);
                        dev.clear_sync_marks(program);
                        let pack = if msgs.is_empty() {
                            SimTime::ZERO
                        } else {
                            dev.pack_time(mode, divisor)
                        };
                        LocalRound {
                            conv,
                            idle: false,
                            frontier,
                            dt,
                            pack,
                            absorb_changed: pre_changed + changed,
                            msgs,
                            mail,
                        }
                    };

                    let outs: Vec<(u32, LocalRound<P>)> = if batch.len() == 1 {
                        let d = batch[0];
                        let du = d as usize;
                        let mail = std::mem::take(&mut inbox[du]);
                        vec![(d, phase_a(&mut devices[du], d, mail, converged[du]))]
                    } else {
                        // Select disjoint `&mut` device slots in ascending index
                        // order, then fan out. Results return to pop order via
                        // the carried batch index.
                        let mut order: Vec<usize> = (0..batch.len()).collect();
                        order.sort_unstable_by_key(|&i| batch[i]);
                        let mut work: Vec<PhaseAWork<P>> = Vec::with_capacity(batch.len());
                        let mut rest: &mut [DeviceRun<P>] = devices;
                        let mut base = 0usize;
                        for &i in &order {
                            let du = batch[i] as usize;
                            let r = std::mem::take(&mut rest);
                            let (_, tail) = r.split_at_mut(du - base);
                            let (dev, tail2) = tail.split_first_mut().expect("device in range");
                            rest = tail2;
                            base = du + 1;
                            work.push((
                                i,
                                batch[i],
                                dev,
                                std::mem::take(&mut inbox[du]),
                                converged[du],
                            ));
                        }
                        let mut outs: Vec<(usize, u32, LocalRound<P>)> = work
                            .into_par_iter()
                            .map(|(bi, bd, dev, mail, conv)| (bi, bd, phase_a(dev, bd, mail, conv)))
                            .collect();
                        outs.sort_unstable_by_key(|o| o.0);
                        outs.into_iter().map(|(_, bd, a)| (bd, a)).collect()
                    };

                    // Phase B: inject sends into the shared network/heap state
                    // and emit trace records, sequentially in pop order —
                    // sequence numbers, link occupancy and the JSONL stream
                    // come out exactly as in an unbatched run.
                    for (bd, mut a) in outs {
                        let du = bd as usize;
                        // Hand the drained (now empty) inbox vector back:
                        // no Arrive event is processed between the take in
                        // phase A and this point, so nothing was pushed to
                        // the placeholder.
                        inbox[du] = std::mem::take(&mut a.mail);
                        converged[du] = a.conv;
                        if a.idle {
                            idle_since[du] = Some(t);
                            continue;
                        }
                        // Straggler: scale this round's kernel time when the
                        // hosting physical device is inside its slow window.
                        let dt = match &fctx {
                            Some(ctx) => {
                                let phys = ctx.home.phys(bd);
                                let f = ctx
                                    .injector()
                                    .slowdown(phys, devices[du].rounds.saturating_sub(1));
                                if f == 1.0 {
                                    a.dt
                                } else {
                                    if !straggler_announced {
                                        straggler_announced = true;
                                        sink.fault(FaultEvent::FaultInjected {
                                            at: t,
                                            device: phys,
                                            kind: "straggler",
                                        });
                                    }
                                    SimTime::from_secs_f64(a.dt.as_secs_f64() * f)
                                }
                            }
                            None => a.dt,
                        };
                        // On a healthy identity mapping `t >= busy[du]` always
                        // holds and `start == t`, the raw schedule. The maxes
                        // matter after a checkpoint charge pushed `busy` past
                        // an already-scheduled round, and for partitions
                        // sharing a physical device after re-homing (they
                        // serialize on the `phys_free` floor).
                        let start = match &fctx {
                            Some(ctx) if !ctx.home.is_identity() => {
                                let pd = ctx.home.phys(bd) as usize;
                                t.max(busy[du]).max(phys_free[pd])
                            }
                            _ => t.max(busy[du]),
                        };
                        let mut depart = start + dt;
                        let mut sender_free = depart;
                        depart += a.pack;
                        let mut sent_bytes = 0u64;
                        let mut sent_msgs = 0u64;
                        for (other, payload, bytes) in a.msgs {
                            messages += 1;
                            sent_bytes += bytes;
                            sent_msgs += 1;
                            match fctx.as_mut() {
                                None => {
                                    let delivery = net.send(
                                        &mut net_state,
                                        SendDesc {
                                            from: bd,
                                            to: other,
                                            bytes,
                                            depart,
                                        },
                                    );
                                    comm_bytes += bytes;
                                    sender_free = sender_free.max(delivery.sender_free);
                                    push_ev(
                                        &mut heap,
                                        &mut seq,
                                        delivery.arrival,
                                        EventKind::Arrive(other, payload, bytes),
                                    );
                                }
                                Some(ctx) => {
                                    let pf = ctx.home.phys(bd);
                                    let pt = ctx.home.phys(other);
                                    if pf == pt {
                                        // Co-homed after degradation: the
                                        // payload never leaves device memory.
                                        push_ev(
                                            &mut heap,
                                            &mut seq,
                                            depart,
                                            EventKind::Arrive(other, payload, bytes),
                                        );
                                        continue;
                                    }
                                    let alive = ctx.health.is_alive(pt);
                                    let v = ctx.rnet.send_reliable(
                                        &mut net_state,
                                        &mut ctx.rstate,
                                        SendDesc {
                                            from: pf,
                                            to: pt,
                                            bytes,
                                            depart,
                                        },
                                        alive,
                                        &mut stats.faults,
                                        &mut ctx.events,
                                    );
                                    comm_bytes += v.wire_bytes;
                                    sender_free = sender_free.max(v.sender_free);
                                    match v.arrival {
                                        Some(arr) => push_ev(
                                            &mut heap,
                                            &mut seq,
                                            arr,
                                            EventKind::Arrive(other, payload, bytes),
                                        ),
                                        None => {
                                            let gave =
                                                v.gave_up_at.expect("no arrival implies give-up");
                                            if alive {
                                                // Alive receiver, every attempt
                                                // lost: escalate out-of-band and
                                                // deliver at the give-up instant
                                                // (correctness must not depend
                                                // on luck).
                                                push_ev(
                                                    &mut heap,
                                                    &mut seq,
                                                    gave,
                                                    EventKind::Arrive(other, payload, bytes),
                                                );
                                            } else {
                                                pending_failures.push(gave);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        busy[du] = depart.max(sender_free);
                        if let Some(ctx) = &fctx {
                            if !ctx.home.is_identity() {
                                let pd = ctx.home.phys(bd) as usize;
                                phys_free[pd] = phys_free[pd].max(busy[du]);
                            }
                        }

                        if tracing {
                            sink.record(RoundRecord {
                                engine: EngineKind::Basp,
                                round: devices[du].rounds - 1,
                                device: bd,
                                direction: if pull {
                                    TraceDirection::Pull
                                } else {
                                    TraceDirection::Push
                                },
                                frontier: a.frontier,
                                compute: dt,
                                pack: a.pack,
                                wait: tr_wait[du],
                                bytes_sent: sent_bytes,
                                bytes_received: tr_recv[du].0,
                                messages_sent: sent_msgs,
                                messages_received: tr_recv[du].1,
                                absorb_changed: a.absorb_changed,
                                clock_end: busy[du],
                            });
                            tr_wait[du] = SimTime::ZERO;
                            tr_recv[du] = (0, 0);
                        }

                        // 6. Keep rounding while local work remains; otherwise idle.
                        let more = if pull {
                            !converged[du]
                        } else {
                            devices[du].has_work()
                        };
                        if more && devices[du].rounds < program.max_rounds() {
                            // Throttled BASP: insert a gap so arrivals batch into
                            // the next round instead of each triggering redundant
                            // recomputation (the paper's §VII recommendation).
                            let next =
                                busy[du] + SimTime::from_secs_f64(config.basp_round_gap_secs);
                            round_pending[du] = true;
                            push_ev(&mut heap, &mut seq, next, EventKind::Round(bd));
                        } else {
                            idle_since[du] = Some(busy[du]);
                        }
                    }

                    if let Some(ctx) = fctx.as_mut() {
                        ctx.drain_events(sink, tracing);
                    }

                    // A sender detected the crashed device (retry budget
                    // exhausted): roll the whole simulation back.
                    if !pending_failures.is_empty() {
                        let detect_at = pending_failures
                            .drain(..)
                            .max()
                            .expect("non-empty failures");
                        let cr = crash_plan.expect("only a scheduled crash kills devices");
                        let ctx = fctx.as_mut().expect("failures imply a fault context");
                        recover_basp(
                            program,
                            net,
                            divisor,
                            cr,
                            checkpoint
                                .as_ref()
                                .expect("recovery_on guarantees an initial checkpoint"),
                            detect_at,
                            devices,
                            &mut busy,
                            &mut idle_since,
                            &mut round_pending,
                            &mut converged,
                            &mut inbox,
                            &mut heap,
                            &mut net_state,
                            &mut phys_free,
                            &mut tr_wait,
                            &mut tr_recv,
                            ctx,
                            &mut stats,
                            sink,
                        );
                        continue;
                    }

                    // Scheduled checkpoint: once every device's local round
                    // ordinal has crossed the next interval boundary.
                    if recovery_on && ckpt_every > 0 {
                        let minr = devices.iter().map(|d| d.rounds).min().unwrap_or(0);
                        if minr >= next_ckpt && fctx.as_ref().is_none_or(|c| !c.dead_unrecovered(p))
                        {
                            checkpoint = Some(take_basp_checkpoint(
                                program,
                                devices,
                                &mut busy,
                                &idle_since,
                                &round_pending,
                                &converged,
                                &inbox,
                                &heap,
                                &net_state,
                                &tr_wait,
                                &tr_recv,
                                divisor,
                                net,
                                &mut stats,
                                sink,
                            ));
                            next_ckpt = (minr / ckpt_every + 1) * ckpt_every;
                        }
                    }
                }
            }
        }

        // Heap drained. If a crashed device was never detected through a
        // failed send (nothing was due to it), the quiescence check itself
        // is the failure detector: the lease on the silent peer expires one
        // full retry ladder past the last activity.
        if fctx.as_ref().is_some_and(|c| c.dead_unrecovered(p)) {
            let detect_at =
                busy.iter().copied().max().unwrap_or(SimTime::ZERO) + config.retry.give_up_after();
            let cr = crash_plan.expect("only a scheduled crash kills devices");
            let ctx = fctx.as_mut().expect("dead device implies a fault context");
            recover_basp(
                program,
                net,
                divisor,
                cr,
                checkpoint
                    .as_ref()
                    .expect("recovery_on guarantees an initial checkpoint"),
                detect_at,
                devices,
                &mut busy,
                &mut idle_since,
                &mut round_pending,
                &mut converged,
                &mut inbox,
                &mut heap,
                &mut net_state,
                &mut phys_free,
                &mut tr_wait,
                &mut tr_recv,
                ctx,
                &mut stats,
                sink,
            );
            continue 'sim;
        }
        break 'sim;
    }
    sink.finish();

    // Quiescent: no events left, every device idle.
    let hosts = net.platform().num_hosts() as usize;
    let mut host_wait = vec![SimTime(u64::MAX); hosts];
    for d in 0..p as u32 {
        let h = net.platform().host_of(d) as usize;
        host_wait[h] = host_wait[h].min(devices[d as usize].idle_time);
    }
    for w in host_wait.iter_mut() {
        if *w == SimTime(u64::MAX) {
            *w = SimTime::ZERO;
        }
    }
    let min_rounds = devices.iter().map(|d| d.rounds).min().unwrap_or(0);
    EngineOutcome {
        clocks: busy,
        host_wait,
        comm_bytes,
        messages,
        rounds: min_rounds,
        min_rounds,
        max_rounds: devices.iter().map(|d| d.rounds).max().unwrap_or(0),
        resilience: stats,
    }
}
