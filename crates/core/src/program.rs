//! The vertex-program abstraction the engine executes.
//!
//! Modelled on D-IrGL's operator formulation (§II-A): operators are applied
//! to active vertices and read/update labels in the vertex's immediate
//! neighborhood. Push-style programs read the **source** of an edge and
//! write the **destination**; the pull-style program (pagerank) also reads
//! sources (of in-edges) and writes the destination — so proxy
//! synchronization is always *reduce written destinations, broadcast read
//! sources*, with the per-policy elisions handled by
//! [`dirgl_comm::SyncPlan`].
//!
//! ## Engine contract (one round)
//!
//! 1. **compute** — active vertices [`VertexProgram::begin_push`] then send
//!    [`VertexProgram::edge_msg`] along local out-edges (push), or every
//!    vertex folds [`VertexProgram::pull_contribution`] over local in-edges
//!    (pull); all deliveries go through [`VertexProgram::accumulate`] into
//!    the *local* proxy, never across devices.
//! 2. **reduce** — each written mirror's [`VertexProgram::take_delta`] is
//!    combined into its master with `accumulate`.
//! 3. **absorb** — masters fold their accumulator into canonical state
//!    exactly once per round; a `true` return re-activates the vertex.
//! 4. **broadcast** — updated masters' [`VertexProgram::canonical`] value
//!    is installed on mirrors with [`VertexProgram::set_canonical`]; a
//!    `true` return activates the mirror.

use dirgl_graph::csr::VertexId;

/// Traversal style (§III-E1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// Data-driven push: a worklist of active vertices pushes along
    /// out-edges (bfs, cc, kcore, sssp in D-IrGL).
    PushDataDriven,
    /// Topology-driven pull: every vertex pulls over in-edges every round
    /// (pagerank in D-IrGL — "residual based algorithm").
    PullTopologyDriven,
    /// Data-driven with per-round direction switching: push from the
    /// frontier while it is small, bottom-up pull over the unsettled
    /// vertices while it is large. Only Gunrock uses this in the paper
    /// ("direction-optimizing traversal for bfs"); the BSP driver decides
    /// the direction globally per round via [`VertexProgram::pull_when`].
    HybridPushPull,
    /// Topology-driven push: every vertex runs [`VertexProgram::begin_push`]
    /// every round; the program gates who actually pushes (betweenness
    /// centrality's level-ordered backward sweep). Runs for exactly
    /// [`VertexProgram::max_rounds`] rounds, bulk-synchronously only — the
    /// runtime silently falls back to BSP under Var4, matching the paper's
    /// "D-IrGL ... uses BASP by default *if the benchmark can be run
    /// asynchronously*".
    PushTopologyDriven,
}

/// Global, device-independent facts available at initialization.
pub struct InitCtx<'a> {
    /// |V| of the (possibly symmetrized) global graph.
    pub num_vertices: u32,
    /// Global out-degree of every vertex (== degree on symmetric inputs).
    pub out_degrees: &'a [u32],
    /// Optional per-vertex auxiliary words carried from an earlier phase
    /// (multi-phase drivers like betweenness centrality pass the forward
    /// phase's results to the backward phase here).
    pub aux: Option<&'a [u64]>,
}

impl<'a> InitCtx<'a> {
    /// Context without auxiliary data.
    pub fn new(num_vertices: u32, out_degrees: &'a [u32]) -> InitCtx<'a> {
        InitCtx {
            num_vertices,
            out_degrees,
            aux: None,
        }
    }
}

/// A distributed graph-analytics benchmark.
///
/// `State` is the full per-proxy label (including any message accumulator);
/// `Wire` is the 4-byte value proxies exchange. All proxies of a vertex are
/// initialized identically from [`VertexProgram::init_state`], so no
/// initial broadcast is required.
pub trait VertexProgram: Sync {
    /// Per-proxy state.
    type State: Copy + Send + Sync + PartialEq;
    /// Value exchanged between proxies (and along edges).
    type Wire: Copy + Send + Sync + PartialEq + std::fmt::Debug;

    /// Benchmark name as the paper prints it (`bfs`, `cc`, ...).
    fn name(&self) -> &'static str;

    /// Traversal style.
    fn style(&self) -> Style;

    /// True for benchmarks defined on the undirected view (cc, kcore); the
    /// runtime symmetrizes the input first, as Galois/D-IrGL do.
    fn needs_symmetric(&self) -> bool {
        false
    }

    /// True when the program reads edge weights (sssp only); unweighted
    /// programs do not load the weight arrays onto the device.
    fn uses_weights(&self) -> bool {
        false
    }

    /// True when the program's reduction is exact and order-independent
    /// (integer min / or / saturating counters — bfs, sssp, cc, kcore):
    /// running on a permuted kernel layout (see [`crate::layout`])
    /// reorders edge visits and sync payloads, and only such programs
    /// keep bit-identical values under any permutation. Float-summing
    /// programs (pagerank, bc) keep the default `false` so
    /// [`crate::layout::LayoutChoice::Auto`] leaves them on insertion
    /// order.
    fn permutation_safe(&self) -> bool {
        false
    }

    /// Initial state of (every proxy of) global vertex `gv`.
    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> Self::State;

    /// Whether `gv` starts on the worklist (data-driven styles only).
    fn initially_active(&self, gv: VertexId, ctx: &InitCtx<'_>) -> bool;

    /// Called once when an active vertex is processed, before its edges are
    /// visited; may mutate state (kcore flips `alive` here). Returns whether
    /// the vertex pushes this round.
    fn begin_push(&self, state: &mut Self::State) -> bool {
        let _ = state;
        true
    }

    /// The value pushed along an out-edge of weight `weight` (push styles).
    ///
    /// Must be a pure function of `(state, weight)` for the duration of
    /// one compute phase: the engine evaluates it once per active source
    /// on unweighted traversals and reuses the message along every
    /// out-edge.
    fn edge_msg(&self, state: &Self::State, weight: u32) -> Option<Self::Wire>;

    /// The contribution pulled from in-neighbor state `neighbor` over an
    /// edge of weight `weight` (pull styles).
    ///
    /// Must depend only on fields [`VertexProgram::accumulate`] never
    /// writes: the engine may evaluate every vertex's contribution once
    /// at the start of the round and gather from that cache while
    /// accumulating, so a contribution must not observe in-round
    /// accumulator changes.
    fn pull_contribution(&self, neighbor: &Self::State, weight: u32) -> Option<Self::Wire> {
        let _ = (neighbor, weight);
        None
    }

    /// Folds an incoming value into the proxy's accumulator. Returns true
    /// if the accumulator changed (the proxy counts as *updated*).
    fn accumulate(&self, state: &mut Self::State, msg: Self::Wire) -> bool;

    /// The identity element of [`VertexProgram::accumulate`], when the
    /// program has one: a wire value `z` such that `accumulate(st, z)`
    /// leaves every reachable state bit-unchanged and returns `false`,
    /// and such that [`VertexProgram::pull_contribution`] returns `None`
    /// only where the raw contribution equals `z`. Declaring it lets the
    /// pull compute body fold `pull_contribution(..).unwrap_or(z)` over
    /// every in-edge instead of testing each `Option` — a branch-free
    /// inner loop with bit-identical results. Defaults to `None` (no
    /// identity; the engine keeps the branchy fold).
    fn inert_contribution(&self) -> Option<Self::Wire> {
        None
    }

    /// Master-only: folds the accumulator into canonical state, exactly
    /// once per round, after all local and reduced values are in. Returns
    /// true if canonical state changed (the vertex re-activates).
    fn absorb(&self, state: &mut Self::State) -> bool;

    /// Mirror-only: extracts the accumulated delta for the reduce message,
    /// resetting the accumulator to the reduction identity.
    fn take_delta(&self, state: &mut Self::State) -> Self::Wire;

    /// Master-only: the canonical value broadcast to mirrors.
    fn canonical(&self, state: &Self::State) -> Self::Wire;

    /// Mirror-only: installs a broadcast canonical value. Returns true if
    /// the mirror's view changed (activates the mirror).
    fn set_canonical(&self, state: &mut Self::State, v: Self::Wire) -> bool;

    /// Master-only, asynchronous engines: the value broadcast to mirrors
    /// when rounds are not globally aligned. Defaults to
    /// [`Self::canonical`]; consumable-generation programs (push pagerank)
    /// return only the not-yet-broadcast portion here and reset it in
    /// [`Self::after_broadcast`].
    fn canonical_async(&self, state: &Self::State) -> Self::Wire {
        self.canonical(state)
    }

    /// Master-only, asynchronous engines: called once per local round
    /// after every broadcast payload has been built (i.e. after all mirror
    /// holders have been served the same value). Default: no-op.
    fn after_broadcast(&self, state: &mut Self::State) {
        let _ = state;
    }

    /// Mirror-only, asynchronous engines: merges a broadcast value when
    /// rounds are not globally aligned. Defaults to [`Self::set_canonical`]
    /// (correct for idempotent min/monotone programs); mass-conserving
    /// programs (pagerank) override this with an additive merge paired with
    /// [`Self::consume_after_pull`].
    fn merge_canonical_async(&self, state: &mut Self::State, v: Self::Wire) -> bool {
        self.set_canonical(state, v)
    }

    /// Mirror-only, asynchronous pull engines: called on every mirror after
    /// a local pull round so that values read this round are not re-read by
    /// the next local round (residual consumption). Default: no-op.
    fn consume_after_pull(&self, state: &mut Self::State) {
        let _ = state;
    }

    /// Hybrid styles only: pull this round? `active` is the global frontier
    /// size, `total` the global vertex count (direction-optimizing BFS's
    /// alpha test).
    fn pull_when(&self, active: u64, total: u64) -> bool {
        let _ = (active, total);
        false
    }

    /// Hybrid styles only: does this vertex still scan its in-edges in a
    /// pull round (bfs: still unreached)?
    fn pull_ready(&self, state: &Self::State) -> bool {
        let _ = state;
        true
    }

    /// Hybrid styles only: the value a bottom-up scan reads from an
    /// in-neighbor's state. Defaults to [`Self::edge_msg`] — correct for
    /// scalar programs, whose push gate is stateless. The K-lane adapter
    /// overrides it to emit from every settled live lane (a neighbor's
    /// per-round push mask is stale by the time a bottom-up scan reads it).
    fn pull_msg(&self, state: &Self::State, weight: u32) -> Option<Self::Wire> {
        self.edge_msg(state, weight)
    }

    /// Hybrid styles only: when true, a bottom-up scan visits *all*
    /// in-edges of an unsettled vertex instead of stopping at the first
    /// producing neighbor. Scalar bfs keeps the early exit (in a
    /// synchronous round every settled in-neighbor of an unsettled vertex
    /// carries the current level, so the first hit is also the minimum);
    /// the K-lane adapter must keep scanning until every lane has seen its
    /// candidates.
    fn pull_exhaustive(&self) -> bool {
        false
    }

    /// How many vertex-activations this active proxy represents — the unit
    /// the hybrid direction choice counts. 1 for scalar programs; the
    /// K-lane adapter returns the popcount of the vertex's pending lane
    /// mask so the aggregated bit-matrix frontier density drives the
    /// push/pull decision.
    fn frontier_weight(&self, state: &Self::State) -> u64 {
        let _ = state;
        1
    }

    /// Concurrent lanes this program advances per round (1 for scalar
    /// programs). The hybrid direction test compares the aggregated
    /// frontier weight against `total_vertices * lanes()`.
    fn lanes(&self) -> u64 {
        1
    }

    /// Per-vertex device-state bytes charged by the memory model. Defaults
    /// to the host size of [`Self::State`]; programs whose host state is
    /// padded to a fixed maximum width (the K-lane batchers carry
    /// 64-lane arrays regardless of the batch size) override this with
    /// what a real device kernel would allocate for the *actual* lane
    /// count, so simulated footprints scale with K.
    fn state_bytes(&self) -> u64 {
        std::mem::size_of::<Self::State>() as u64
    }

    /// Fixed wire bytes of one all-shared payload entry. Scalar programs
    /// ship one [`dirgl_comm::VAL_BYTES`] value; the K-lane adapter ships a
    /// lane-mask word plus one value per live lane.
    fn wire_bytes(&self) -> u64 {
        dirgl_comm::VAL_BYTES
    }

    /// Wire bytes of one *extracted* (updated-only) payload entry. Defaults
    /// to the fixed [`Self::wire_bytes`]; the K-lane adapter sizes each
    /// entry by its active-lane popcount so simulated message bytes scale
    /// with lane activity.
    fn wire_payload_bytes(&self, w: &Self::Wire) -> u64 {
        let _ = w;
        self.wire_bytes()
    }

    /// True when the program keeps per-state sync bookkeeping that must be
    /// reset when the engine clears its round-level sync marks (the K-lane
    /// adapter's per-vertex dirty-lane masks). Gates the per-vertex
    /// [`Self::on_sync_cleared`] walk so scalar programs pay nothing.
    fn wants_sync_clear(&self) -> bool {
        false
    }

    /// Called on each master whose broadcast mark is being cleared, when
    /// [`Self::wants_sync_clear`] is true. Default: no-op.
    fn on_sync_cleared(&self, state: &mut Self::State) {
        let _ = state;
    }

    /// Whether the program tolerates bulk-asynchronous execution (stale
    /// reads, unaligned rounds). Programs whose invariants need aligned
    /// rounds (betweenness centrality's path counting) return false and the
    /// runtime falls back to BSP, exactly as "D-IrGL ... uses BASP by
    /// default if the benchmark can be run asynchronously" (SIII-B).
    fn supports_async(&self) -> bool {
        self.style() != Style::PushTopologyDriven
    }

    /// Bulk-synchronous engines call this at the start of every global
    /// round (0-based) before any compute; round-gated programs (the bc
    /// backward sweep) read it to decide which level pushes.
    fn on_round_start(&self, round: u32) {
        let _ = round;
    }

    /// Round cap (BASP local rounds are also capped by this).
    fn max_rounds(&self) -> u32 {
        100_000
    }

    /// Final per-vertex output for verification (exact for integer labels;
    /// pagerank compares with tolerance).
    fn output(&self, state: &Self::State) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal min-propagation program used to exercise defaults.
    struct MinProp;

    impl VertexProgram for MinProp {
        type State = u32;
        type Wire = u32;
        fn name(&self) -> &'static str {
            "minprop"
        }
        fn style(&self) -> Style {
            Style::PushDataDriven
        }
        fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> u32 {
            gv
        }
        fn initially_active(&self, _gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
            true
        }
        fn edge_msg(&self, state: &u32, _w: u32) -> Option<u32> {
            Some(*state)
        }
        fn accumulate(&self, state: &mut u32, msg: u32) -> bool {
            if msg < *state {
                *state = msg;
                true
            } else {
                false
            }
        }
        fn absorb(&self, _state: &mut u32) -> bool {
            false
        }
        fn take_delta(&self, state: &mut u32) -> u32 {
            *state
        }
        fn canonical(&self, state: &u32) -> u32 {
            *state
        }
        fn set_canonical(&self, state: &mut u32, v: u32) -> bool {
            self.accumulate(state, v)
        }
        fn output(&self, state: &u32) -> f64 {
            *state as f64
        }
    }

    #[test]
    fn defaults_are_sensible() {
        let p = MinProp;
        assert!(!p.needs_symmetric());
        assert_eq!(p.max_rounds(), 100_000);
        let mut s = 5;
        assert!(p.begin_push(&mut s));
        assert_eq!(p.pull_contribution(&s, 0), None);
    }
}
