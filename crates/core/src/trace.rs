//! Per-round, per-device execution traces — the observability layer.
//!
//! Both engines emit one [`RoundRecord`] per (round, device) through a
//! [`TraceSink`]: what the device computed, packed, sent, received, waited
//! for and absorbed in that round, plus the frontier it started from and
//! (for hybrid programs) the direction it chose. This is the per-phase
//! attribution the paper's methodology is built on (compute vs.
//! communication vs. wait, §III-B/§III-D) made inspectable per round, so a
//! convergence or timing regression reads as a narrative ("device 2 stalled
//! on round 7 waiting for the NIC") instead of a bare assert.
//!
//! Three sinks cover the use cases:
//!
//! * [`NoopSink`] — the default; reports `enabled() == false`, letting the
//!   engines skip record assembly entirely (no overhead on normal runs);
//! * [`CollectingSink`] — in-memory, for tests and report summaries;
//! * [`JsonLinesSink`] — streams one JSON object per record, for the bench
//!   binaries' `--trace <path>` flag.

use std::io::Write;

use dirgl_comm::SimTime;

/// Which engine produced a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Bulk-synchronous: `round` is the global round number.
    Bsp,
    /// Bulk-asynchronous: `round` is the device's local round ordinal.
    Basp,
}

impl EngineKind {
    /// Lower-case name as printed in traces.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Bsp => "bsp",
            EngineKind::Basp => "basp",
        }
    }
}

/// Compute direction a round ran in (hybrid programs switch per round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDirection {
    /// Frontier pushed along out-edges.
    Push,
    /// Vertices pulled over in-edges (topology-driven pull or the hybrid
    /// bottom-up phase).
    Pull,
}

impl TraceDirection {
    /// Lower-case name as printed in traces.
    pub fn name(self) -> &'static str {
        match self {
            TraceDirection::Push => "push",
            TraceDirection::Pull => "pull",
        }
    }
}

/// Everything one device did in one (global or local) round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundRecord {
    /// Engine that produced the record.
    pub engine: EngineKind,
    /// 0-based round: global under BSP, the device's local ordinal under
    /// BASP.
    pub round: u32,
    /// Device index.
    pub device: u32,
    /// Direction the compute phase ran in.
    pub direction: TraceDirection,
    /// Active vertices on this device when the round started.
    pub frontier: u64,
    /// Kernel time of the compute phase.
    pub compute: SimTime,
    /// Device-side extraction (pack) time charged this round.
    pub pack: SimTime,
    /// Time this device spent blocked on inbound messages this round.
    pub wait: SimTime,
    /// Wire bytes this device sent this round.
    pub bytes_sent: u64,
    /// Wire bytes applied on this device this round.
    pub bytes_received: u64,
    /// Messages this device sent this round.
    pub messages_sent: u64,
    /// Messages applied on this device this round.
    pub messages_received: u64,
    /// Masters whose canonical value changed in this round's absorb.
    pub absorb_changed: u32,
    /// The device's virtual clock when the round ended.
    pub clock_end: SimTime,
}

/// A fault-layer incident: something the fault injector did, the reliable
/// transport absorbed, or the recovery machinery performed. Emitted
/// through [`TraceSink::fault`] alongside the per-round records, so a
/// trace of a faulty run reads as one chronology.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// The injector hurt something: a crash or straggler window on
    /// `device`, or a link fault attributed to the sending device.
    /// `kind` ∈ {`crash`, `straggler`, `straggler-end`, `link-drop`,
    /// `link-duplicate`, `link-delay`}.
    FaultInjected {
        /// When (simulated).
        at: SimTime,
        /// Affected device (sender, for link faults).
        device: u32,
        /// What kind of fault.
        kind: &'static str,
    },
    /// A sender's ack timer expired.
    Timeout {
        /// When the timer fired.
        at: SimTime,
        /// Sending device.
        from: u32,
        /// Unresponsive receiver.
        to: u32,
        /// Transmission attempt that timed out (0 = first send).
        attempt: u32,
    },
    /// A sender retransmitted a lost message.
    Retransmit {
        /// When the retransmission departed.
        at: SimTime,
        /// Sending device.
        from: u32,
        /// Receiving device.
        to: u32,
        /// Attempt number of the retransmission (≥ 1).
        attempt: u32,
    },
    /// A checkpoint of every device's state was captured.
    CheckpointTaken {
        /// When the capture completed (simulated).
        at: SimTime,
        /// Round the checkpoint represents (replay resumes here).
        round: u32,
        /// Paper-equivalent bytes captured.
        bytes: u64,
    },
    /// A crash was detected and every device rolled back to the last
    /// checkpoint.
    Rollback {
        /// Detection + restore completion time.
        at: SimTime,
        /// Round execution resumes from.
        to_round: u32,
        /// Device whose crash forced the rollback.
        device: u32,
    },
    /// A dead device's masters were permanently reassigned to a survivor
    /// (graceful degradation).
    MastersReassigned {
        /// When the reassignment took effect.
        at: SimTime,
        /// Dead device.
        from_device: u32,
        /// Surviving adopter.
        to_device: u32,
        /// Master vertices moved.
        masters: u64,
    },
}

impl FaultEvent {
    /// Lower-case event name as printed in traces.
    pub fn name(&self) -> &'static str {
        match self {
            FaultEvent::FaultInjected { .. } => "fault_injected",
            FaultEvent::Timeout { .. } => "timeout",
            FaultEvent::Retransmit { .. } => "retransmit",
            FaultEvent::CheckpointTaken { .. } => "checkpoint_taken",
            FaultEvent::Rollback { .. } => "rollback",
            FaultEvent::MastersReassigned { .. } => "masters_reassigned",
        }
    }

    /// The event as one JSON object (hand-written, like
    /// [`RoundRecord::to_json`]).
    pub fn to_json(&self) -> String {
        match self {
            FaultEvent::FaultInjected { at, device, kind } => format!(
                "{{\"event\":\"fault_injected\",\"at_s\":{:.9},\"device\":{},\"kind\":\"{}\"}}",
                at.as_secs_f64(),
                device,
                kind
            ),
            FaultEvent::Timeout {
                at,
                from,
                to,
                attempt,
            } => format!(
                "{{\"event\":\"timeout\",\"at_s\":{:.9},\"from\":{},\"to\":{},\"attempt\":{}}}",
                at.as_secs_f64(),
                from,
                to,
                attempt
            ),
            FaultEvent::Retransmit {
                at,
                from,
                to,
                attempt,
            } => format!(
                "{{\"event\":\"retransmit\",\"at_s\":{:.9},\"from\":{},\"to\":{},\"attempt\":{}}}",
                at.as_secs_f64(),
                from,
                to,
                attempt
            ),
            FaultEvent::CheckpointTaken { at, round, bytes } => format!(
                "{{\"event\":\"checkpoint_taken\",\"at_s\":{:.9},\"round\":{},\"bytes\":{}}}",
                at.as_secs_f64(),
                round,
                bytes
            ),
            FaultEvent::Rollback {
                at,
                to_round,
                device,
            } => format!(
                "{{\"event\":\"rollback\",\"at_s\":{:.9},\"to_round\":{},\"device\":{}}}",
                at.as_secs_f64(),
                to_round,
                device
            ),
            FaultEvent::MastersReassigned {
                at,
                from_device,
                to_device,
                masters,
            } => format!(
                concat!(
                    "{{\"event\":\"masters_reassigned\",\"at_s\":{:.9},",
                    "\"from_device\":{},\"to_device\":{},\"masters\":{}}}"
                ),
                at.as_secs_f64(),
                from_device,
                to_device,
                masters
            ),
        }
    }
}

impl RoundRecord {
    /// The record as one JSON object (hand-written: the workspace has no
    /// serde runtime).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"engine\":\"{}\",\"round\":{},\"device\":{},",
                "\"direction\":\"{}\",\"frontier\":{},",
                "\"compute_s\":{:.9},\"pack_s\":{:.9},\"wait_s\":{:.9},",
                "\"bytes_sent\":{},\"bytes_received\":{},",
                "\"messages_sent\":{},\"messages_received\":{},",
                "\"absorb_changed\":{},\"clock_end_s\":{:.9}}}"
            ),
            self.engine.name(),
            self.round,
            self.device,
            self.direction.name(),
            self.frontier,
            self.compute.as_secs_f64(),
            self.pack.as_secs_f64(),
            self.wait.as_secs_f64(),
            self.bytes_sent,
            self.bytes_received,
            self.messages_sent,
            self.messages_received,
            self.absorb_changed,
            self.clock_end.as_secs_f64(),
        )
    }
}

/// Receiver of per-round records.
///
/// The engines consult [`TraceSink::enabled`] once per round and skip all
/// record assembly when it returns false, so the default [`NoopSink`] costs
/// one virtual call per round and nothing else.
pub trait TraceSink {
    /// Whether the engines should assemble and deliver records at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one record.
    fn record(&mut self, rec: RoundRecord);

    /// Delivers one fault-layer event. Default: discard — sinks that
    /// predate the fault layer keep working unchanged.
    fn fault(&mut self, ev: FaultEvent) {
        let _ = ev;
    }

    /// Called once when the run completes (writers flush here).
    fn finish(&mut self) {}
}

/// Discards everything; `enabled()` is false so engines skip assembly.
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: RoundRecord) {}
}

/// Accumulates records in memory (tests, report summaries).
#[derive(Default)]
pub struct CollectingSink {
    /// Records in delivery order.
    pub records: Vec<RoundRecord>,
    /// Fault events in delivery order.
    pub faults: Vec<FaultEvent>,
}

impl CollectingSink {
    /// Empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }
}

impl TraceSink for CollectingSink {
    fn record(&mut self, rec: RoundRecord) {
        self.records.push(rec);
    }

    fn fault(&mut self, ev: FaultEvent) {
        self.faults.push(ev);
    }
}

/// Streams records as JSON-lines to any writer.
pub struct JsonLinesSink<W: Write> {
    out: W,
    /// Optional `"run"` label stamped into every record (bench binaries set
    /// one per configuration so a multi-run trace file stays attributable).
    label: Option<String>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Sink writing to `out`.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink { out, label: None }
    }

    /// Sets the `"run"` label stamped into subsequent records.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = Some(label.into());
    }
}

impl<W: Write> JsonLinesSink<W> {
    fn emit(&mut self, body: String) {
        let line = match &self.label {
            Some(label) => {
                // Splice the label in as the first field.
                format!("{{\"run\":\"{}\",{}", label, &body[1..])
            }
            None => body,
        };
        // Trace emission is best-effort: an unwritable sink must not abort
        // a simulation that is otherwise succeeding.
        let _ = writeln!(self.out, "{line}");
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, rec: RoundRecord) {
        let body = rec.to_json();
        self.emit(body);
    }

    fn fault(&mut self, ev: FaultEvent) {
        let body = ev.to_json();
        self.emit(body);
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Forwards to an outer sink while also collecting (the runtime uses this
/// to build report summaries without stealing the caller's records).
pub(crate) struct ForkSink<'a> {
    pub outer: &'a mut dyn TraceSink,
    pub collected: CollectingSink,
}

impl TraceSink for ForkSink<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, rec: RoundRecord) {
        if self.outer.enabled() {
            self.outer.record(rec.clone());
        }
        self.collected.record(rec);
    }

    fn fault(&mut self, ev: FaultEvent) {
        if self.outer.enabled() {
            self.outer.fault(ev.clone());
        }
        self.collected.fault(ev);
    }

    fn finish(&mut self) {
        self.outer.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RoundRecord {
        RoundRecord {
            engine: EngineKind::Bsp,
            round: 3,
            device: 1,
            direction: TraceDirection::Push,
            frontier: 42,
            compute: SimTime::from_secs_f64(0.5),
            pack: SimTime::ZERO,
            wait: SimTime::from_secs_f64(0.25),
            bytes_sent: 1024,
            bytes_received: 512,
            messages_sent: 2,
            messages_received: 1,
            absorb_changed: 7,
            clock_end: SimTime::from_secs_f64(1.0),
        }
    }

    #[test]
    fn json_has_every_field_once() {
        let j = record().to_json();
        for key in [
            "engine",
            "round",
            "device",
            "direction",
            "frontier",
            "compute_s",
            "pack_s",
            "wait_s",
            "bytes_sent",
            "bytes_received",
            "messages_sent",
            "messages_received",
            "absorb_changed",
            "clock_end_s",
        ] {
            assert_eq!(j.matches(&format!("\"{key}\":")).count(), 1, "{key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn noop_is_disabled_collector_collects() {
        assert!(!NoopSink.enabled());
        let mut c = CollectingSink::new();
        assert!(c.enabled());
        c.record(record());
        assert_eq!(c.records.len(), 1);
    }

    #[test]
    fn fault_events_serialize_and_flow_through_sinks() {
        let ev = FaultEvent::Rollback {
            at: SimTime::from_secs_f64(1.5),
            to_round: 4,
            device: 2,
        };
        let j = ev.to_json();
        assert!(j.starts_with("{\"event\":\"rollback\""));
        assert!(j.contains("\"to_round\":4"));
        assert!(j.contains("\"device\":2"));
        assert_eq!(ev.name(), "rollback");

        let mut c = CollectingSink::new();
        c.fault(ev.clone());
        assert_eq!(c.faults, vec![ev.clone()]);

        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf);
            sink.set_label("faulty");
            sink.fault(ev);
            sink.finish();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"run\":\"faulty\",\"event\":\"rollback\""));

        // Default impl discards without complaint.
        NoopSink.fault(FaultEvent::Timeout {
            at: SimTime::ZERO,
            from: 0,
            to: 1,
            attempt: 0,
        });
    }

    #[test]
    fn every_fault_event_kind_has_valid_json() {
        let evs = [
            FaultEvent::FaultInjected {
                at: SimTime::ZERO,
                device: 0,
                kind: "crash",
            },
            FaultEvent::Timeout {
                at: SimTime::ZERO,
                from: 0,
                to: 1,
                attempt: 2,
            },
            FaultEvent::Retransmit {
                at: SimTime::ZERO,
                from: 0,
                to: 1,
                attempt: 1,
            },
            FaultEvent::CheckpointTaken {
                at: SimTime::ZERO,
                round: 3,
                bytes: 99,
            },
            FaultEvent::Rollback {
                at: SimTime::ZERO,
                to_round: 0,
                device: 1,
            },
            FaultEvent::MastersReassigned {
                at: SimTime::ZERO,
                from_device: 1,
                to_device: 0,
                masters: 512,
            },
        ];
        for ev in evs {
            let j = ev.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains(&format!("\"event\":\"{}\"", ev.name())), "{j}");
        }
    }

    #[test]
    fn json_sink_writes_lines_with_label() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf);
            sink.record(record());
            sink.set_label("bfs/rmat25");
            sink.record(record());
            sink.finish();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("\"run\""));
        assert!(lines[1].starts_with("{\"run\":\"bfs/rmat25\","));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }
}
