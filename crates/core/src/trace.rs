//! Per-round, per-device execution traces — the observability layer.
//!
//! Both engines emit one [`RoundRecord`] per (round, device) through a
//! [`TraceSink`]: what the device computed, packed, sent, received, waited
//! for and absorbed in that round, plus the frontier it started from and
//! (for hybrid programs) the direction it chose. This is the per-phase
//! attribution the paper's methodology is built on (compute vs.
//! communication vs. wait, §III-B/§III-D) made inspectable per round, so a
//! convergence or timing regression reads as a narrative ("device 2 stalled
//! on round 7 waiting for the NIC") instead of a bare assert.
//!
//! Three sinks cover the use cases:
//!
//! * [`NoopSink`] — the default; reports `enabled() == false`, letting the
//!   engines skip record assembly entirely (no overhead on normal runs);
//! * [`CollectingSink`] — in-memory, for tests and report summaries;
//! * [`JsonLinesSink`] — streams one JSON object per record, for the bench
//!   binaries' `--trace <path>` flag.

use std::io::Write;

use dirgl_comm::SimTime;

/// Which engine produced a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Bulk-synchronous: `round` is the global round number.
    Bsp,
    /// Bulk-asynchronous: `round` is the device's local round ordinal.
    Basp,
}

impl EngineKind {
    /// Lower-case name as printed in traces.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Bsp => "bsp",
            EngineKind::Basp => "basp",
        }
    }
}

/// Compute direction a round ran in (hybrid programs switch per round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDirection {
    /// Frontier pushed along out-edges.
    Push,
    /// Vertices pulled over in-edges (topology-driven pull or the hybrid
    /// bottom-up phase).
    Pull,
}

impl TraceDirection {
    /// Lower-case name as printed in traces.
    pub fn name(self) -> &'static str {
        match self {
            TraceDirection::Push => "push",
            TraceDirection::Pull => "pull",
        }
    }
}

/// Everything one device did in one (global or local) round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundRecord {
    /// Engine that produced the record.
    pub engine: EngineKind,
    /// 0-based round: global under BSP, the device's local ordinal under
    /// BASP.
    pub round: u32,
    /// Device index.
    pub device: u32,
    /// Direction the compute phase ran in.
    pub direction: TraceDirection,
    /// Active vertices on this device when the round started.
    pub frontier: u64,
    /// Kernel time of the compute phase.
    pub compute: SimTime,
    /// Device-side extraction (pack) time charged this round.
    pub pack: SimTime,
    /// Time this device spent blocked on inbound messages this round.
    pub wait: SimTime,
    /// Wire bytes this device sent this round.
    pub bytes_sent: u64,
    /// Wire bytes applied on this device this round.
    pub bytes_received: u64,
    /// Messages this device sent this round.
    pub messages_sent: u64,
    /// Messages applied on this device this round.
    pub messages_received: u64,
    /// Masters whose canonical value changed in this round's absorb.
    pub absorb_changed: u32,
    /// The device's virtual clock when the round ended.
    pub clock_end: SimTime,
}

impl RoundRecord {
    /// The record as one JSON object (hand-written: the workspace has no
    /// serde runtime).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"engine\":\"{}\",\"round\":{},\"device\":{},",
                "\"direction\":\"{}\",\"frontier\":{},",
                "\"compute_s\":{:.9},\"pack_s\":{:.9},\"wait_s\":{:.9},",
                "\"bytes_sent\":{},\"bytes_received\":{},",
                "\"messages_sent\":{},\"messages_received\":{},",
                "\"absorb_changed\":{},\"clock_end_s\":{:.9}}}"
            ),
            self.engine.name(),
            self.round,
            self.device,
            self.direction.name(),
            self.frontier,
            self.compute.as_secs_f64(),
            self.pack.as_secs_f64(),
            self.wait.as_secs_f64(),
            self.bytes_sent,
            self.bytes_received,
            self.messages_sent,
            self.messages_received,
            self.absorb_changed,
            self.clock_end.as_secs_f64(),
        )
    }
}

/// Receiver of per-round records.
///
/// The engines consult [`TraceSink::enabled`] once per round and skip all
/// record assembly when it returns false, so the default [`NoopSink`] costs
/// one virtual call per round and nothing else.
pub trait TraceSink {
    /// Whether the engines should assemble and deliver records at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one record.
    fn record(&mut self, rec: RoundRecord);

    /// Called once when the run completes (writers flush here).
    fn finish(&mut self) {}
}

/// Discards everything; `enabled()` is false so engines skip assembly.
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: RoundRecord) {}
}

/// Accumulates records in memory (tests, report summaries).
#[derive(Default)]
pub struct CollectingSink {
    /// Records in delivery order.
    pub records: Vec<RoundRecord>,
}

impl CollectingSink {
    /// Empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }
}

impl TraceSink for CollectingSink {
    fn record(&mut self, rec: RoundRecord) {
        self.records.push(rec);
    }
}

/// Streams records as JSON-lines to any writer.
pub struct JsonLinesSink<W: Write> {
    out: W,
    /// Optional `"run"` label stamped into every record (bench binaries set
    /// one per configuration so a multi-run trace file stays attributable).
    label: Option<String>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Sink writing to `out`.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink { out, label: None }
    }

    /// Sets the `"run"` label stamped into subsequent records.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = Some(label.into());
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, rec: RoundRecord) {
        let line = match &self.label {
            Some(label) => {
                let body = rec.to_json();
                // Splice the label in as the first field.
                format!("{{\"run\":\"{}\",{}", label, &body[1..])
            }
            None => rec.to_json(),
        };
        // Trace emission is best-effort: an unwritable sink must not abort
        // a simulation that is otherwise succeeding.
        let _ = writeln!(self.out, "{line}");
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Forwards to an outer sink while also collecting (the runtime uses this
/// to build report summaries without stealing the caller's records).
pub(crate) struct ForkSink<'a> {
    pub outer: &'a mut dyn TraceSink,
    pub collected: CollectingSink,
}

impl TraceSink for ForkSink<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, rec: RoundRecord) {
        if self.outer.enabled() {
            self.outer.record(rec.clone());
        }
        self.collected.record(rec);
    }

    fn finish(&mut self) {
        self.outer.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RoundRecord {
        RoundRecord {
            engine: EngineKind::Bsp,
            round: 3,
            device: 1,
            direction: TraceDirection::Push,
            frontier: 42,
            compute: SimTime::from_secs_f64(0.5),
            pack: SimTime::ZERO,
            wait: SimTime::from_secs_f64(0.25),
            bytes_sent: 1024,
            bytes_received: 512,
            messages_sent: 2,
            messages_received: 1,
            absorb_changed: 7,
            clock_end: SimTime::from_secs_f64(1.0),
        }
    }

    #[test]
    fn json_has_every_field_once() {
        let j = record().to_json();
        for key in [
            "engine",
            "round",
            "device",
            "direction",
            "frontier",
            "compute_s",
            "pack_s",
            "wait_s",
            "bytes_sent",
            "bytes_received",
            "messages_sent",
            "messages_received",
            "absorb_changed",
            "clock_end_s",
        ] {
            assert_eq!(j.matches(&format!("\"{key}\":")).count(), 1, "{key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn noop_is_disabled_collector_collects() {
        assert!(!NoopSink.enabled());
        let mut c = CollectingSink::new();
        assert!(c.enabled());
        c.record(record());
        assert_eq!(c.records.len(), 1);
    }

    #[test]
    fn json_sink_writes_lines_with_label() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf);
            sink.record(record());
            sink.set_label("bfs/rmat25");
            sink.record(record());
            sink.finish();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("\"run\""));
        assert!(lines[1].starts_with("{\"run\":\"bfs/rmat25\","));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }
}
