//! The D-IrGL-equivalent engine: vertex programs executed bulk-
//! synchronously or bulk-asynchronously over simulated distributed GPUs.
//!
//! The moving parts:
//!
//! * [`program::VertexProgram`] — the operator abstraction (push
//!   data-driven or pull topology-driven, §III-E);
//! * [`config::Variant`] — the four optimization variants of §IV-C
//!   (TWC/ALB × AS/UO × Sync/Async);
//! * [`bsp`] / [`basp`] — the two execution models of §III-B, dispatched
//!   through [`engine::run_engine`] by [`engine::ExecutionModel`];
//! * [`layout`] — cache-conscious per-device kernel layouts
//!   (degree-sorted / segmented CSR orderings selected by a skew
//!   heuristic at prepare time);
//! * [`trace`] — the per-round, per-device observability layer: both
//!   engines emit [`trace::RoundRecord`]s through a [`trace::TraceSink`]
//!   (no-op by default, collecting for tests, JSON-lines for benches);
//! * [`resilience`] — checkpoint/rollback recovery and graceful
//!   degradation, driven by the fault layer in `dirgl_comm::faults` when
//!   [`config::RunConfig::faults`] is set;
//! * [`runtime::Runtime`] — partition, load (with device-memory OOM
//!   checking), execute, and report;
//! * [`report::ExecutionReport`] — the Max Compute / Min Wait / Device
//!   Comm. decomposition with volume, rounds, work items and per-device
//!   memory, feeding every figure and table of the evaluation.

pub mod basp;
pub mod bsp;
pub mod config;
pub mod device;
pub mod engine;
pub mod layout;
pub mod multi;
pub mod program;
pub mod report;
pub mod resilience;
pub mod runtime;
pub mod trace;

pub use bsp::EngineOutcome;
pub use config::{ExecModel, RunConfig, Variant};
pub use engine::{run_engine, ExecutionModel};
pub use layout::{LayoutChoice, LayoutKind, LayoutPlan, LocalLayout};
pub use multi::{
    lanes_of, BatchedProgram, LaneState, LaneWire, Lanes, MsBfs, MsBfsState, MultiSourceProgram,
    LANE_WIDTH, MS_UNREACHED,
};
pub use program::{InitCtx, Style, VertexProgram};
pub use report::{ExecutionReport, RoundSummary};
pub use resilience::ResilienceStats;
pub use runtime::{
    Backend, LaneOutput, LaneSummary, MultiRunOutput, MultiRunner, PartitionArg, PreparedPartition,
    RunError, RunOutput, Runner, Runtime,
};
pub use trace::{
    CollectingSink, EngineKind, FaultEvent, JsonLinesSink, NoopSink, RoundRecord, TraceDirection,
    TraceSink,
};
