//! Cache-conscious per-device kernel layouts.
//!
//! The compute hot loops walk a device's local CSR in whatever vertex
//! order the partitioner produced (masters then mirrors, each ascending
//! by global id). On power-law inputs that order scatters the handful of
//! huge-degree hubs across the id range, so the edge array is traversed
//! with poor locality. A [`LocalLayout`] renames local vertices — within
//! the master range and within the mirror range, never across — so the
//! hot rows pack together:
//!
//! * [`LayoutKind::DegreeSorted`] orders each range by descending total
//!   degree (out + in), the classic GPU frontier layout;
//! * [`LayoutKind::Segmented`] buckets each range by degree class
//!   (⌈log2⌉) and keeps the original order within a class — a segmented
//!   CSR that groups similar-length rows for the load balancer without
//!   fully shuffling the id space.
//!
//! Which kind a device gets is decided by the skew heuristic
//! ([`LocalLayout::select`]): max-degree over mean-degree of the local
//! degree distribution. Near-regular devices keep insertion order (the
//! permutation would churn the caches for nothing), moderately skewed
//! devices get the segmented layout, heavy-tailed devices the full
//! degree sort.
//!
//! **Determinism contract.** A permuted run visits edges in a different
//! order, so only programs whose accumulator is exact and
//! order-independent (integer min/or — bfs, sssp, cc, kcore; see
//! [`VertexProgram::permutation_safe`]) may run permuted under
//! [`LayoutChoice::Auto`]; they produce bit-identical values to the
//! insertion layout. Float-summing programs (pagerank, bc) are left on
//! insertion order by `Auto`; forcing a layout on them
//! ([`LayoutChoice::Force`]) keeps every run of that fixed configuration
//! deterministic but moves values within float-reassociation tolerance.
//! Reports (simulated times) are not pinned across layouts: the load
//! balancer sees a different degree sequence.

use dirgl_comm::SyncPlan;
use dirgl_graph::VertexId;
use dirgl_partition::{LocalGraph, PairLink, Partition};

use crate::program::VertexProgram;

/// A concrete edge ordering for one device-local graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// The partitioner's order (no permutation).
    Insertion,
    /// Descending total degree within the master and mirror ranges.
    DegreeSorted,
    /// Degree-class buckets (descending class, stable within a class).
    Segmented,
}

impl LayoutKind {
    /// Every kind, in heuristic-escalation order.
    pub const ALL: [LayoutKind; 3] = [
        LayoutKind::Insertion,
        LayoutKind::DegreeSorted,
        LayoutKind::Segmented,
    ];

    /// Snake-case display name (stable; used in benchmark output).
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::Insertion => "insertion",
            LayoutKind::DegreeSorted => "degree_sorted",
            LayoutKind::Segmented => "segmented",
        }
    }
}

/// How [`crate::Runtime::prepare`] selects per-device layouts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LayoutChoice {
    /// No layout work at all (the default — prepared handles carry no
    /// permuted state and every program runs on insertion order).
    #[default]
    Insertion,
    /// Per-device skew heuristic; only permutation-safe programs run
    /// permuted, everything else stays on insertion order.
    Auto,
    /// Force one kind on every device and every program (float programs
    /// included — fixed-config runs stay deterministic, values move
    /// within reassociation tolerance).
    Force(LayoutKind),
}

/// Skew at or above which [`LocalLayout::select`] escalates from
/// insertion order to the segmented layout.
pub const AUTO_SEGMENTED_SKEW: f64 = 8.0;
/// Skew at or above which the full degree sort replaces the segmented
/// layout.
pub const AUTO_DEGREE_SORTED_SKEW: f64 = 64.0;

/// One device's selected layout: the kind, the skew that chose it, and
/// the old↔new local-id permutation (identity for
/// [`LayoutKind::Insertion`]).
#[derive(Clone, Debug)]
pub struct LocalLayout {
    /// The ordering in force.
    pub kind: LayoutKind,
    /// Max-degree / mean-degree of the device's total-degree
    /// distribution.
    pub skew: f64,
    /// `old_of_new[new] = old` local id.
    pub old_of_new: Box<[VertexId]>,
    /// `new_of_old[old] = new` local id (inverse of `old_of_new`).
    pub new_of_old: Box<[VertexId]>,
}

impl LocalLayout {
    /// Selects and builds the layout for one device under `choice`.
    pub fn select(lg: &LocalGraph, choice: LayoutChoice) -> LocalLayout {
        let degrees = total_degrees(lg);
        let skew = skew_of(&degrees);
        let kind = match choice {
            LayoutChoice::Insertion => LayoutKind::Insertion,
            LayoutChoice::Force(k) => k,
            LayoutChoice::Auto => {
                if skew >= AUTO_DEGREE_SORTED_SKEW {
                    LayoutKind::DegreeSorted
                } else if skew >= AUTO_SEGMENTED_SKEW {
                    LayoutKind::Segmented
                } else {
                    LayoutKind::Insertion
                }
            }
        };
        Self::build(lg, kind, skew, &degrees)
    }

    fn build(lg: &LocalGraph, kind: LayoutKind, skew: f64, degrees: &[u64]) -> LocalLayout {
        let n = lg.num_vertices() as usize;
        let masters = lg.num_masters as usize;
        let mut old_of_new: Vec<VertexId> = (0..n as u32).collect();
        // Permute within the master range and within the mirror range
        // only: local id < num_masters is a structural invariant every
        // sync path relies on. Ties break on ascending old id, so the
        // permutation is deterministic and `Insertion` stays the exact
        // identity.
        let key = |lv: &VertexId| -> (std::cmp::Reverse<u64>, VertexId) {
            let d = degrees[*lv as usize];
            let k = match kind {
                LayoutKind::Insertion => 0,
                LayoutKind::DegreeSorted => d,
                LayoutKind::Segmented => 64 - d.leading_zeros() as u64,
            };
            (std::cmp::Reverse(k), *lv)
        };
        old_of_new[..masters].sort_by_key(key);
        old_of_new[masters..].sort_by_key(key);
        let mut new_of_old = vec![0 as VertexId; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as VertexId;
        }
        LocalLayout {
            kind,
            skew,
            old_of_new: old_of_new.into_boxed_slice(),
            new_of_old: new_of_old.into_boxed_slice(),
        }
    }

    /// True when the permutation maps every id to itself.
    pub fn is_identity(&self) -> bool {
        self.old_of_new
            .iter()
            .enumerate()
            .all(|(i, &v)| i as u32 == v)
    }
}

/// Total degree (out + in) of every local vertex — the sort key and the
/// skew statistic. Using the sum keeps one permutation consistent for
/// both traversal directions.
fn total_degrees(lg: &LocalGraph) -> Vec<u64> {
    (0..lg.num_vertices())
        .map(|lv| lg.csr.out_degree(lv) as u64 + lg.in_csr.out_degree(lv) as u64)
        .collect()
}

fn skew_of(degrees: &[u64]) -> f64 {
    let total: u64 = degrees.iter().sum();
    if degrees.is_empty() || total == 0 {
        return 1.0;
    }
    let max = *degrees.iter().max().unwrap();
    max as f64 * degrees.len() as f64 / total as f64
}

/// The cached product of layout selection over a whole partition: the
/// per-device layouts, the permuted partition, and its sync plan.
/// Built once at [`crate::Runtime::prepare`] time (see
/// [`crate::PreparedPartition`]); jobs pick the permuted view or the
/// original per program via [`LayoutPlan::applies_to`].
#[derive(Clone, Debug)]
pub struct LayoutPlan {
    /// Per-device selections, indexed by device.
    pub layouts: Vec<LocalLayout>,
    /// Whether the plan came from [`LayoutChoice::Force`] (applies to
    /// every program) or [`LayoutChoice::Auto`] (permutation-safe
    /// programs only).
    pub forced: bool,
    /// The partition with every device's local graph renamed.
    pub part: Partition,
    /// Sync plan rebuilt over the permuted partition (entry indexes are
    /// link-relative, so they must be regenerated).
    pub plan: SyncPlan,
}

impl LayoutPlan {
    /// Selects layouts for every device and materializes the permuted
    /// partition. Returns `None` when nothing would change —
    /// [`LayoutChoice::Insertion`], or `Auto` on a partition where every
    /// device is below the skew thresholds — so the caller can keep the
    /// layout-free fast path.
    pub fn build(part: &Partition, choice: LayoutChoice) -> Option<LayoutPlan> {
        if choice == LayoutChoice::Insertion {
            return None;
        }
        let layouts: Vec<LocalLayout> = part
            .locals
            .iter()
            .map(|lg| LocalLayout::select(lg, choice))
            .collect();
        if layouts.iter().all(|l| l.is_identity()) {
            return None;
        }
        let permuted = permute_partition(part, &layouts);
        let plan = SyncPlan::build(&permuted, true, true);
        Some(LayoutPlan {
            layouts,
            forced: matches!(choice, LayoutChoice::Force(_)),
            part: permuted,
            plan,
        })
    }

    /// True when `program` should run on the permuted view: always under
    /// a forced choice, only for order-independent accumulators under
    /// `Auto`.
    pub fn applies_to<P: VertexProgram>(&self, program: &P) -> bool {
        self.forced || program.permutation_safe()
    }
}

/// Renames every device's local graph per `layouts` and rebuilds the
/// exchange links. Mirrors keep their holder and owner — only their
/// local ids move — so the link *entry sets* are unchanged as sets;
/// walking holders in ascending new local id restores the strictly
/// ascending side arrays the [`dirgl_comm::ExtractIndex`] fast path
/// requires.
pub fn permute_partition(part: &Partition, layouts: &[LocalLayout]) -> Partition {
    assert_eq!(layouts.len(), part.locals.len());
    let locals: Vec<LocalGraph> = part
        .locals
        .iter()
        .zip(layouts)
        .map(|(lg, lay)| permute_local(lg, lay))
        .collect();
    let p = part.num_devices as usize;
    let mut links = vec![PairLink::default(); p * p];
    for (holder, lg) in locals.iter().enumerate() {
        for lv in lg.num_masters..lg.num_vertices() {
            let owner = lg.master_device[lv as usize] as usize;
            let gid = lg.l2g[lv as usize];
            let link = &mut links[holder * p + owner];
            link.mirror_side.push(lv);
            link.master_side.push(locals[owner].g2l[&gid]);
            link.mirror_has_out.push(lg.has_out_edges(lv));
            link.mirror_has_in.push(lg.has_in_edges(lv));
        }
    }
    Partition::from_parts(
        part.policy,
        part.num_devices,
        part.grid,
        part.num_global_vertices,
        locals,
        links,
    )
    .expect("permuted partition preserves structural invariants")
}

fn permute_local(lg: &LocalGraph, lay: &LocalLayout) -> LocalGraph {
    if lay.is_identity() {
        return lg.clone();
    }
    let n = lg.num_vertices() as usize;
    let l2g: Vec<VertexId> = (0..n).map(|i| lg.l2g[lay.old_of_new[i] as usize]).collect();
    let master_device: Vec<u32> = (0..n)
        .map(|i| lg.master_device[lay.old_of_new[i] as usize])
        .collect();
    let g2l = l2g
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i as VertexId))
        .collect();
    let csr = lg.csr.permute(&lay.old_of_new, &lay.new_of_old);
    // The in-CSR is the transpose of the permuted out-CSR (not the
    // permutation of the old in-CSR): per-destination source order
    // follows the new ids, which is exactly what the builder produces
    // for a freshly built local graph.
    let in_csr = csr.transpose();
    LocalGraph {
        device: lg.device,
        num_masters: lg.num_masters,
        l2g: l2g.into_boxed_slice(),
        master_device: master_device.into_boxed_slice(),
        csr,
        in_csr,
        g2l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_graph::RmatConfig;
    use dirgl_partition::Policy;

    fn part() -> Partition {
        let g = RmatConfig::new(9, 8).seed(42).generate();
        Partition::build(&g, Policy::Hvc, 4, 0)
    }

    #[test]
    fn selection_escalates_with_skew() {
        let p = part();
        for lg in &p.locals {
            let lay = LocalLayout::select(lg, LayoutChoice::Auto);
            let expect = if lay.skew >= AUTO_DEGREE_SORTED_SKEW {
                LayoutKind::DegreeSorted
            } else if lay.skew >= AUTO_SEGMENTED_SKEW {
                LayoutKind::Segmented
            } else {
                LayoutKind::Insertion
            };
            assert_eq!(lay.kind, expect);
            assert!(lay.skew >= 1.0);
        }
        // R-MAT is heavy-tailed: at least one device must escalate.
        assert!(p
            .locals
            .iter()
            .any(|lg| LocalLayout::select(lg, LayoutChoice::Auto).kind != LayoutKind::Insertion));
    }

    #[test]
    fn permutation_is_a_range_preserving_bijection() {
        let p = part();
        for lg in &p.locals {
            for kind in [LayoutKind::DegreeSorted, LayoutKind::Segmented] {
                let lay = LocalLayout::select(lg, LayoutChoice::Force(kind));
                let n = lg.num_vertices();
                let mut seen = vec![false; n as usize];
                for (new, &old) in lay.old_of_new.iter().enumerate() {
                    assert!(!seen[old as usize]);
                    seen[old as usize] = true;
                    assert_eq!(lay.new_of_old[old as usize], new as u32);
                    // Masters map to masters, mirrors to mirrors.
                    assert_eq!((new as u32) < lg.num_masters, old < lg.num_masters);
                }
            }
        }
    }

    #[test]
    fn degree_sorted_rows_are_descending() {
        let p = part();
        let lg = &p.locals[0];
        let lay = LocalLayout::select(lg, LayoutChoice::Force(LayoutKind::DegreeSorted));
        let plg = permute_local(lg, &lay);
        let deg =
            |g: &LocalGraph, lv: u32| g.csr.out_degree(lv) as u64 + g.in_csr.out_degree(lv) as u64;
        for range in [0..lg.num_masters, lg.num_masters..lg.num_vertices()] {
            let degs: Vec<u64> = range.map(|lv| deg(&plg, lv)).collect();
            assert!(degs.windows(2).all(|w| w[0] >= w[1]), "not descending");
        }
    }

    #[test]
    fn permuted_partition_preserves_structure() {
        let p = part();
        let lp = LayoutPlan::build(&p, LayoutChoice::Force(LayoutKind::DegreeSorted)).unwrap();
        assert_eq!(lp.part.total_edges(), p.total_edges());
        assert_eq!(lp.part.num_global_vertices, p.num_global_vertices);
        for (lg, plg) in p.locals.iter().zip(&lp.part.locals) {
            assert_eq!(lg.num_masters, plg.num_masters);
            assert_eq!(lg.num_vertices(), plg.num_vertices());
            // Same global vertex set, same master/mirror split.
            let mut a: Vec<u32> = lg.l2g.to_vec();
            let mut b: Vec<u32> = plg.l2g.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // Every link's sides are strictly ascending again, so the
        // ExtractIndex fast path re-engages on the permuted plan.
        for h in 0..4 {
            for o in 0..4 {
                let link = lp.part.link(h, o);
                assert!(link.mirror_side.windows(2).all(|w| w[0] < w[1]));
                // Same global mirror set as the original link.
                let mut a: Vec<u32> = link
                    .mirror_side
                    .iter()
                    .map(|&lv| lp.part.locals[h as usize].l2g[lv as usize])
                    .collect();
                let mut b: Vec<u32> = p
                    .link(h, o)
                    .mirror_side
                    .iter()
                    .map(|&lv| p.locals[h as usize].l2g[lv as usize])
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn insertion_and_calm_auto_build_nothing() {
        let p = part();
        assert!(LayoutPlan::build(&p, LayoutChoice::Insertion).is_none());
        // A regular ring has skew 1 on every device: Auto stays identity.
        let mut el = dirgl_graph::EdgeList::new(64);
        for v in 0..64u32 {
            el.edges.push((v, (v + 1) % 64));
        }
        let ring = Partition::build(&el.into_csr(), Policy::Oec, 2, 0);
        assert!(LayoutPlan::build(&ring, LayoutChoice::Auto).is_none());
    }
}
