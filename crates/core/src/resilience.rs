//! Checkpointing, rollback and graceful degradation — what the engines do
//! when the fault layer takes a device away.
//!
//! Three pieces:
//!
//! * [`DeviceSnapshot`] — a copy of one device's *logical* execution state
//!   (labels, worklists, sync marks, round ordinal). Monotonic accounting
//!   (accumulated compute time, work items, idle time) is deliberately
//!   *not* part of a snapshot: work lost to a rollback was still
//!   performed, and the report should say so.
//! * [`HomeMap`] — the logical→physical device mapping that graceful
//!   degradation rewrites. Engines compute on *logical* partitions; the
//!   transport is addressed by *physical* device. Killing device `d`
//!   without rejoin re-homes logical partition `d` onto a surviving
//!   physical device, which then executes both partitions (serially, like
//!   the real oversubscribed GPU would).
//! * [`ResilienceStats`] — the recovery counters surfaced through
//!   [`crate::report::ExecutionReport`].

use serde::{Deserialize, Serialize};

use dirgl_comm::{FaultCounters, SimTime};
use dirgl_gpusim::ClusterSpec;

use crate::device::DeviceRun;
use crate::program::VertexProgram;

/// Fault, retry and recovery counters for one run. All zero on a healthy
/// run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Link-level injection and retry counters from the reliable
    /// transport.
    pub faults: FaultCounters,
    /// Device crashes that occurred.
    pub crashes: u32,
    /// Checkpoints taken.
    pub checkpoints_taken: u32,
    /// Total paper-equivalent bytes captured across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Rollbacks performed (each restores every device from the last
    /// checkpoint).
    pub rollbacks: u32,
    /// Device-rounds re-executed because of rollbacks (replay overhead;
    /// the headline round counts stay logical).
    pub rounds_replayed: u32,
    /// Crashed devices that rejoined after a rollback.
    pub rejoins: u32,
    /// Master vertices permanently reassigned to a surviving device
    /// (graceful degradation; 0 when every crash rejoined).
    pub masters_reassigned: u64,
    /// Simulated time spent detecting failures and restoring state.
    pub recovery_time: SimTime,
}

/// One device's restorable execution state.
pub(crate) struct DeviceSnapshot<P: VertexProgram> {
    state: Vec<P::State>,
    active: dirgl_comm::DenseBitset,
    updated: dirgl_comm::DenseBitset,
    bcast_dirty: dirgl_comm::DenseBitset,
    rounds: u32,
}

impl<P: VertexProgram> DeviceSnapshot<P> {
    /// Captures `dev`'s logical state.
    pub(crate) fn capture(dev: &DeviceRun<P>) -> DeviceSnapshot<P> {
        DeviceSnapshot {
            state: dev.state.clone(),
            active: dev.active.clone(),
            updated: dev.updated.clone(),
            bcast_dirty: dev.bcast_dirty.clone(),
            rounds: dev.rounds,
        }
    }

    /// Restores the captured state into `dev`, leaving monotonic
    /// accounting (compute/idle time, work items, peak memory) untouched.
    pub(crate) fn restore(&self, dev: &mut DeviceRun<P>) {
        dev.state.clone_from(&self.state);
        dev.active = self.active.clone();
        dev.updated = self.updated.clone();
        dev.bcast_dirty = self.bcast_dirty.clone();
        dev.rounds = self.rounds;
    }

    /// Round ordinal the snapshot was taken at.
    pub(crate) fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// Paper-equivalent bytes a checkpoint of `dev` writes: every proxy label
/// plus the three tracking bitsets.
pub(crate) fn checkpoint_bytes<P: VertexProgram>(
    dev: &DeviceRun<P>,
    program: &P,
    divisor: u64,
) -> u64 {
    let n = dev.lg.num_vertices() as u64;
    (n * program.state_bytes() + 3 * n.div_ceil(8)) * divisor
}

/// Simulated time to move `bytes` over a device's PCIe link — the cost of
/// dumping a checkpoint to host memory, or of restoring one.
pub(crate) fn pcie_transfer_time(cluster: &ClusterSpec, bytes: u64) -> SimTime {
    SimTime::from_secs_f64(cluster.pcie_latency + bytes as f64 / cluster.pcie_bandwidth)
}

/// Logical→physical device mapping. Starts as the identity; graceful
/// degradation re-homes a dead device's logical partition onto a
/// survivor.
#[derive(Clone, Debug)]
pub(crate) struct HomeMap {
    home: Vec<u32>,
}

impl HomeMap {
    /// Identity mapping over `n` devices.
    pub(crate) fn identity(n: u32) -> HomeMap {
        HomeMap {
            home: (0..n).collect(),
        }
    }

    /// Physical device hosting logical partition `l`.
    pub(crate) fn phys(&self, l: u32) -> u32 {
        self.home[l as usize]
    }

    /// True while no partition has moved.
    pub(crate) fn is_identity(&self) -> bool {
        self.home.iter().enumerate().all(|(i, &h)| i as u32 == h)
    }

    /// Logical partitions hosted on physical device `d`, ascending.
    pub(crate) fn residents(&self, d: u32) -> Vec<u32> {
        (0..self.home.len() as u32)
            .filter(|&l| self.home[l as usize] == d)
            .collect()
    }

    /// Picks the adopter for a failed device's partition: the alive
    /// physical device hosting the fewest logical partitions, lowest index
    /// on ties — deterministic and load-spreading.
    pub(crate) fn pick_adopter(&self, alive: &[bool]) -> Option<u32> {
        (0..self.home.len() as u32)
            .filter(|&d| alive[d as usize])
            .min_by_key(|&d| (self.residents(d).len(), d))
    }

    /// Re-homes every logical partition living on `dead` onto `adopter`.
    pub(crate) fn rehome(&mut self, dead: u32, adopter: u32) {
        for h in self.home.iter_mut() {
            if *h == dead {
                *h = adopter;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_map_identity_and_rehoming() {
        let mut hm = HomeMap::identity(4);
        assert!(hm.is_identity());
        assert_eq!(hm.phys(2), 2);
        assert_eq!(hm.residents(1), vec![1]);

        // Device 2 dies; 0..=3 alive flags with 2 dead.
        let alive = [true, true, false, true];
        let adopter = hm.pick_adopter(&alive).unwrap();
        assert_eq!(adopter, 0, "lowest index among equally-loaded survivors");
        hm.rehome(2, adopter);
        assert!(!hm.is_identity());
        assert_eq!(hm.phys(2), 0);
        assert_eq!(hm.residents(0), vec![0, 2]);
        assert_eq!(hm.residents(2), Vec::<u32>::new());

        // Next failure prefers the lighter-loaded survivors.
        let alive = [true, false, false, true];
        assert_eq!(hm.pick_adopter(&alive), Some(3));
    }

    #[test]
    fn stats_default_is_all_zero() {
        let s = ResilienceStats::default();
        assert_eq!(s.crashes, 0);
        assert_eq!(s.rollbacks, 0);
        assert!(!s.faults.any());
        assert_eq!(s.recovery_time, SimTime::ZERO);
    }
}
