//! The bulk-synchronous (BSP) driver (§III-B).
//!
//! Execution proceeds in global rounds: every device computes on its
//! partition, then a reduce exchange (mirror→master), a master absorb, and
//! a broadcast exchange (master→mirror) synchronize the proxies. There is
//! no explicit global barrier — stragglers propagate through message
//! arrival times, exactly as in MPI-based Gluon — but round *content* is
//! globally aligned, which is what makes BSP deterministic.
//!
//! Host parallelism: the compute, payload-build, apply and absorb phases
//! all fan out per device across the worker pool. Everything order- or
//! clock-sensitive — pack charging, `SendDesc` stamping, the network
//! exchange, trace emission — stays sequential in device-major order, so
//! the result is bit-identical at any thread count.

use rayon::prelude::*;

use dirgl_comm::SyncPlan;
use dirgl_comm::{NetModel, NetState, SendDesc, SimTime};
use dirgl_partition::Partition;

use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::trace::{EngineKind, RoundRecord, TraceDirection, TraceSink};

/// A built sync payload awaiting application: (builder, partner, values).
type Payloads<W> = Vec<(u32, u32, Vec<(u32, W)>)>;
/// Per-builder output of a parallel payload-build stage: the pack time to
/// charge (zero when the builder has no partners this round) and one
/// `(partner, payload, bytes)` entry per partner, in ascending partner
/// order.
type Built<W> = Vec<(SimTime, Vec<(u32, Vec<(u32, W)>, u64)>)>;
/// One receiving device's payloads, grouped in ascending-builder order:
/// `(builder, values)` pairs.
type Grouped<W> = Vec<(u32, Vec<(u32, W)>)>;
use crate::program::{Style, VertexProgram};

/// Raw outcome of a BSP/BASP run, consumed by the runtime's report
/// assembly.
pub struct EngineOutcome {
    /// Final per-device clocks; the max is the execution time.
    pub clocks: Vec<SimTime>,
    /// Accumulated per-host blocking time.
    pub host_wait: Vec<SimTime>,
    /// Paper-equivalent bytes moved.
    pub comm_bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Headline round count. Under BSP this is the number of global
    /// rounds. Under BASP there are no global rounds, so this equals
    /// [`EngineOutcome::min_rounds`], the minimum per-device local round
    /// count — the conservative "every device got at least this far"
    /// statistic. (BASP's work inflation from stale reads shows up in
    /// [`EngineOutcome::max_rounds`], not here.) This field is the single
    /// source of truth for that convention; `ExecutionReport::rounds`
    /// copies it verbatim.
    pub rounds: u32,
    /// Minimum per-device local round count. Under BSP a device with no
    /// active work skips its compute kernel, so this can be *below* the
    /// global round count.
    pub min_rounds: u32,
    /// Maximum per-device local round count.
    pub max_rounds: u32,
}

/// Per-round cost of the distributed termination check (an allreduce over
/// the hosts).
pub(crate) fn termination_check_cost(net: &NetModel) -> SimTime {
    let hosts = net.platform().num_hosts();
    if hosts <= 1 {
        return SimTime::ZERO;
    }
    let c = net.platform().cluster;
    let hops = (hosts as f64).log2().ceil().max(1.0);
    SimTime::from_secs_f64(c.msg_overhead + c.net_latency * hops)
}

/// Deprecated alias of [`run_bsp`] from when the sink-taking variant was a
/// separate entry point.
#[deprecated(since = "0.2.0", note = "use `run_bsp`, which now takes the sink")]
pub fn run_bsp_traced<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    run_bsp(program, devices, part, plan, net, config, sink)
}

/// Runs `program` to convergence under BSP, emitting one
/// [`RoundRecord`] per (round, device) into `sink`. With a disabled sink
/// (e.g. [`crate::trace::NoopSink`]) no records are assembled.
pub fn run_bsp<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    let p = devices.len();
    let mode = config.variant.comm;
    let divisor = config.scale_divisor;
    let balancer = config.variant.balancer;
    let hybrid = program.style() == Style::HybridPushPull;
    let topo = matches!(
        program.style(),
        Style::PullTopologyDriven | Style::PushTopologyDriven
    );
    let total_vertices: u64 = devices.iter().map(|d| d.lg.num_masters as u64).sum();
    let term_cost =
        termination_check_cost(net) + SimTime::from_secs_f64(config.runtime_round_overhead_secs);
    let tracing = sink.enabled();

    let mut clocks = vec![SimTime::ZERO; p];
    let mut host_wait = vec![SimTime::ZERO; net.platform().num_hosts() as usize];
    let mut comm_bytes = 0u64;
    let mut messages = 0u64;
    let mut rounds = 0u32;
    // Congestion carries across rounds: one link state for the whole run.
    let mut net_state = net.new_state();

    // Per-round, per-device trace accumulators (only touched when tracing).
    let mut tr_frontier = vec![0u64; p];
    let mut tr_pack = vec![SimTime::ZERO; p];
    let mut tr_wait = vec![SimTime::ZERO; p];
    let mut tr_sent = vec![(0u64, 0u64); p]; // (bytes, messages)
    let mut tr_recv = vec![(0u64, 0u64); p];

    loop {
        program.on_round_start(rounds);
        if tracing {
            for (d, f) in devices.iter().zip(tr_frontier.iter_mut()) {
                *f = d.active_count();
            }
            tr_pack.iter_mut().for_each(|t| *t = SimTime::ZERO);
            tr_wait.iter_mut().for_each(|t| *t = SimTime::ZERO);
            tr_sent.iter_mut().for_each(|c| *c = (0, 0));
            tr_recv.iter_mut().for_each(|c| *c = (0, 0));
        }
        // --- Direction decision (hybrid programs): a global per-round
        // choice, like Gunrock's direction-optimizing alpha test.
        let use_pull = hybrid && {
            let frontier: u64 = devices.iter().map(|d| d.active_count()).sum();
            program.pull_when(frontier, total_vertices)
        };
        // --- Compute phase (devices in parallel; each sequential inside).
        let times: Vec<SimTime> = devices
            .par_iter_mut()
            .map(|d| {
                if use_pull {
                    d.compute_bottom_up(program, balancer, divisor)
                } else if topo || d.has_work() {
                    d.compute(program, balancer, divisor)
                } else {
                    SimTime::ZERO
                }
            })
            .collect();
        for (c, t) in clocks.iter_mut().zip(&times) {
            *c += *t;
        }

        // --- Reduce exchange: mirrors -> masters. Every holder builds all
        // of its partner payloads on its own device state, so the build
        // fans out per holder; pack charging and send stamping follow
        // sequentially in holder-major order (identical clocks and
        // `SendDesc` order to a sequential build).
        let built: Built<P::Wire> = devices
            .par_iter_mut()
            .enumerate()
            .map(|(h, dev)| {
                let holder = h as u32;
                let mut out = Vec::new();
                for owner in 0..p as u32 {
                    if holder == owner {
                        continue;
                    }
                    let entries = plan.reduce(holder, owner);
                    if entries.is_empty() {
                        continue;
                    }
                    let link = part.link(holder, owner);
                    // Even an empty payload is sent: under BSP every host
                    // waits to hear from each of its partners every round,
                    // so UO messages carry at least the presence bitset.
                    // This per-partner cost is what makes CVC's restricted
                    // partner sets matter (SIII-D1).
                    let (payload, bytes) = dev.build_reduce(program, link, entries, mode, divisor);
                    out.push((owner, payload, bytes));
                }
                let pack = if out.is_empty() {
                    SimTime::ZERO
                } else {
                    dev.pack_time(mode, divisor)
                };
                (pack, out)
            })
            .collect();
        let (sends, payloads) =
            stamp_sends::<P>(&mut clocks, built, tracing.then_some(&mut tr_pack));
        exchange_and_apply(
            net,
            &mut net_state,
            &mut clocks,
            &mut host_wait,
            &mut comm_bytes,
            &mut messages,
            &sends,
            tracing.then_some(&mut tr_wait),
        );
        if tracing {
            tally_sends(&sends, &mut tr_sent, &mut tr_recv);
        }
        apply_grouped(devices, payloads, |dev, builder, payload| {
            let link = part.link(builder, dev.dev);
            dev.apply_reduce(program, link, payload);
        });

        // --- Absorb: masters fold accumulators once per round.
        let absorbed: Vec<u32> = devices
            .par_iter_mut()
            .map(|d| d.absorb_masters(program))
            .collect();
        let changed: u32 = absorbed.iter().sum();

        // --- Broadcast exchange: masters -> mirrors (same parallel
        // build / sequential stamp split, owner-major).
        let built: Built<P::Wire> = devices
            .par_iter_mut()
            .enumerate()
            .map(|(o, dev)| {
                let owner = o as u32;
                let mut out = Vec::new();
                for holder in 0..p as u32 {
                    if holder == owner {
                        continue;
                    }
                    let entries = plan.bcast(holder, owner);
                    if entries.is_empty() {
                        continue;
                    }
                    let link = part.link(holder, owner);
                    let (payload, bytes) =
                        dev.build_broadcast(program, link, entries, mode, divisor, false);
                    out.push((holder, payload, bytes));
                }
                let pack = if out.is_empty() {
                    SimTime::ZERO
                } else {
                    dev.pack_time(mode, divisor)
                };
                (pack, out)
            })
            .collect();
        let (sends, payloads) =
            stamp_sends::<P>(&mut clocks, built, tracing.then_some(&mut tr_pack));
        exchange_and_apply(
            net,
            &mut net_state,
            &mut clocks,
            &mut host_wait,
            &mut comm_bytes,
            &mut messages,
            &sends,
            tracing.then_some(&mut tr_wait),
        );
        if tracing {
            tally_sends(&sends, &mut tr_sent, &mut tr_recv);
        }
        apply_grouped(devices, payloads, |dev, builder, payload| {
            let link = part.link(dev.dev, builder);
            dev.apply_broadcast(program, link, payload, false);
        });

        // --- Round end: clear update tracking, pay the termination check.
        devices.iter_mut().for_each(|d| d.clear_sync_marks());
        for c in clocks.iter_mut() {
            *c += term_cost;
        }
        if tracing {
            let direction = if use_pull || program.style() == Style::PullTopologyDriven {
                TraceDirection::Pull
            } else {
                TraceDirection::Push
            };
            for d in 0..p {
                sink.record(RoundRecord {
                    engine: EngineKind::Bsp,
                    round: rounds,
                    device: d as u32,
                    direction,
                    frontier: tr_frontier[d],
                    compute: times[d],
                    pack: tr_pack[d],
                    wait: tr_wait[d],
                    bytes_sent: tr_sent[d].0,
                    bytes_received: tr_recv[d].0,
                    messages_sent: tr_sent[d].1,
                    messages_received: tr_recv[d].1,
                    absorb_changed: absorbed[d],
                    clock_end: clocks[d],
                });
            }
        }
        rounds += 1;

        let work_left = match program.style() {
            Style::PullTopologyDriven => changed > 0,
            // Round-gated: runs for exactly max_rounds rounds.
            Style::PushTopologyDriven => true,
            _ => devices.iter().any(|d| d.has_work()),
        };
        if !work_left || rounds >= program.max_rounds() {
            break;
        }
    }
    sink.finish();

    EngineOutcome {
        clocks,
        host_wait,
        comm_bytes,
        messages,
        rounds,
        min_rounds: devices.iter().map(|d| d.rounds).min().unwrap_or(0),
        max_rounds: devices.iter().map(|d| d.rounds).max().unwrap_or(0),
    }
}

/// Sequential half of a payload build: walks builders in device order,
/// charges each non-idle builder's pack time, and stamps every send with
/// the builder's post-pack clock — exactly what the former inline loop
/// produced.
fn stamp_sends<P: VertexProgram>(
    clocks: &mut [SimTime],
    built: Built<P::Wire>,
    mut tr_pack: Option<&mut Vec<SimTime>>,
) -> (Vec<SendDesc>, Payloads<P::Wire>) {
    let mut sends: Vec<SendDesc> = Vec::new();
    let mut payloads: Payloads<P::Wire> = Vec::new();
    for (builder, (pack, list)) in built.into_iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        clocks[builder] += pack;
        if let Some(tp) = tr_pack.as_deref_mut() {
            tp[builder] += pack;
        }
        for (partner, payload, bytes) in list {
            sends.push(SendDesc {
                from: builder as u32,
                to: partner,
                bytes,
                depart: clocks[builder],
            });
            payloads.push((builder as u32, partner, payload));
        }
    }
    (sends, payloads)
}

/// Applies payloads in parallel across receiving devices. Each receiver
/// sees its payloads in the same (ascending-builder) order a sequential
/// apply loop would deliver them, so accumulation order per device — and
/// with it every float result — is unchanged.
fn apply_grouped<P: VertexProgram>(
    devices: &mut [DeviceRun<P>],
    payloads: Payloads<P::Wire>,
    apply: impl Fn(&mut DeviceRun<P>, u32, &[(u32, P::Wire)]) + Sync,
) {
    if payloads.is_empty() {
        return;
    }
    let mut per_dev: Vec<Grouped<P::Wire>> = (0..devices.len()).map(|_| Vec::new()).collect();
    for (builder, partner, payload) in payloads {
        per_dev[partner as usize].push((builder, payload));
    }
    devices
        .par_iter_mut()
        .zip(per_dev.into_par_iter())
        .for_each(|(dev, items)| {
            for (builder, payload) in items {
                apply(dev, builder, &payload);
            }
        });
}

/// Adds one exchange's sends to per-device (bytes, messages) tallies.
fn tally_sends(sends: &[SendDesc], sent: &mut [(u64, u64)], recv: &mut [(u64, u64)]) {
    for s in sends {
        sent[s.from as usize].0 += s.bytes;
        sent[s.from as usize].1 += 1;
        recv[s.to as usize].0 += s.bytes;
        recv[s.to as usize].1 += 1;
    }
}

/// Runs one exchange through the network model and folds its timing into
/// the running clocks/waits. Link occupancy persists in `st` across calls.
#[allow(clippy::too_many_arguments)]
fn exchange_and_apply(
    net: &NetModel,
    st: &mut NetState,
    clocks: &mut [SimTime],
    host_wait: &mut [SimTime],
    comm_bytes: &mut u64,
    messages: &mut u64,
    sends: &[SendDesc],
    device_wait: Option<&mut Vec<SimTime>>,
) {
    if sends.is_empty() {
        return;
    }
    let outcome = net.exchange_with(st, clocks, sends, None);
    if let Some(wait) = device_wait {
        for (d, w) in wait.iter_mut().enumerate() {
            *w += outcome.device_done[d].saturating_sub(outcome.sender_free[d]);
        }
    }
    clocks.copy_from_slice(&outcome.device_done);
    for (w, o) in host_wait.iter_mut().zip(&outcome.host_wait) {
        *w += *o;
    }
    *comm_bytes += outcome.total_bytes;
    *messages += outcome.num_messages;
}
