//! The bulk-synchronous (BSP) driver (§III-B).
//!
//! Execution proceeds in global rounds: every device computes on its
//! partition, then a reduce exchange (mirror→master), a master absorb, and
//! a broadcast exchange (master→mirror) synchronize the proxies. There is
//! no explicit global barrier — stragglers propagate through message
//! arrival times, exactly as in MPI-based Gluon — but round *content* is
//! globally aligned, which is what makes BSP deterministic.
//!
//! Host parallelism: the compute, payload-build, apply and absorb phases
//! all fan out per device across the worker pool. Everything order- or
//! clock-sensitive — pack charging, `SendDesc` stamping, the network
//! exchange, trace emission — stays sequential in device-major order, so
//! the result is bit-identical at any thread count.
//!
//! Resilience: when [`RunConfig::faults`] is set, every exchange goes
//! through the retry/ack [`ReliableNet`] (byte-identical to the raw path
//! when the plan schedules nothing), device crashes are detected through
//! exhausted retry budgets — the BSP barrier itself is the failure
//! detector: a silent peer times out every partner — and recovery either
//! rolls every device back to the last checkpoint (crash with rejoin) or
//! permanently re-homes the dead device's partition onto a survivor
//! (graceful degradation). Logical partitions are unchanged by re-homing;
//! only the transport addressing and compute serialization change, which
//! is why a degraded run still converges to reference values.

use rayon::prelude::*;

use dirgl_comm::SyncPlan;
use dirgl_comm::{
    FaultCounters, FaultInjector, LinkEvent, LinkEventKind, NetModel, NetState, ReliableNet,
    ReliableState, SendDesc, SimTime,
};
use dirgl_gpusim::HealthTracker;
use dirgl_partition::Partition;

use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::resilience::{
    checkpoint_bytes, pcie_transfer_time, DeviceSnapshot, HomeMap, ResilienceStats,
};
use crate::trace::{EngineKind, FaultEvent, RoundRecord, TraceDirection, TraceSink};

/// A built sync payload awaiting application: (builder, partner, values).
type Payloads<W> = Vec<(u32, u32, Vec<(u32, W)>)>;
use crate::program::{Style, VertexProgram};

/// Raw outcome of a BSP/BASP run, consumed by the runtime's report
/// assembly.
pub struct EngineOutcome {
    /// Final per-device clocks; the max is the execution time.
    pub clocks: Vec<SimTime>,
    /// Accumulated per-host blocking time.
    pub host_wait: Vec<SimTime>,
    /// Paper-equivalent bytes moved.
    pub comm_bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Headline round count. Under BSP this is the number of global
    /// rounds. Under BASP there are no global rounds, so this equals
    /// [`EngineOutcome::min_rounds`], the minimum per-device local round
    /// count — the conservative "every device got at least this far"
    /// statistic. (BASP's work inflation from stale reads shows up in
    /// [`EngineOutcome::max_rounds`], not here.) This field is the single
    /// source of truth for that convention; `ExecutionReport::rounds`
    /// copies it verbatim.
    pub rounds: u32,
    /// Minimum per-device local round count. Under BSP a device with no
    /// active work skips its compute kernel, so this can be *below* the
    /// global round count.
    pub min_rounds: u32,
    /// Maximum per-device local round count.
    pub max_rounds: u32,
    /// Fault, retry and recovery counters (all zero on a healthy run).
    pub resilience: ResilienceStats,
}

/// Per-round cost of the distributed termination check (an allreduce over
/// the hosts).
pub(crate) fn termination_check_cost(net: &NetModel) -> SimTime {
    let hosts = net.platform().num_hosts();
    if hosts <= 1 {
        return SimTime::ZERO;
    }
    let c = net.platform().cluster;
    let hops = (hosts as f64).log2().ceil().max(1.0);
    SimTime::from_secs_f64(c.msg_overhead + c.net_latency * hops)
}

/// The engines' fault-layer context, built once per run when
/// [`RunConfig::faults`] is set. Bundles the reliable transport with the
/// mutable recovery state every exchange needs.
pub(crate) struct FaultCtx<'a> {
    /// Retry/ack transport over the raw network.
    pub rnet: ReliableNet<'a>,
    /// Per-link sequence numbers (never checkpointed — replays draw fresh
    /// fault fates).
    pub rstate: ReliableState,
    /// Which physical devices are alive.
    pub health: HealthTracker,
    /// Logical→physical partition placement.
    pub home: HomeMap,
    /// Link-level incident buffer, drained into the trace sink.
    pub events: Vec<LinkEvent>,
    /// The crash already fired (crashes are one-shot even across replays).
    pub crash_fired: bool,
}

impl<'a> FaultCtx<'a> {
    pub(crate) fn new(net: &'a NetModel, config: &RunConfig) -> Option<FaultCtx<'a>> {
        let plan = config.faults.clone()?;
        let p = net.platform().num_devices();
        Some(FaultCtx {
            rnet: ReliableNet::new(net, plan, config.retry),
            rstate: ReliableState::for_devices(p),
            health: HealthTracker::new(p),
            home: HomeMap::identity(p),
            events: Vec::new(),
            crash_fired: false,
        })
    }

    pub(crate) fn injector(&self) -> &FaultInjector {
        self.rnet.injector()
    }

    /// True while some logical partition has no live physical host — a
    /// crash happened and recovery has not yet run.
    pub(crate) fn dead_unrecovered(&self, p: usize) -> bool {
        (0..p as u32).any(|l| !self.health.is_alive(self.home.phys(l)))
    }

    /// Whether logical partition `l` can execute right now.
    pub(crate) fn alive_logical(&self, l: u32) -> bool {
        self.health.is_alive(self.home.phys(l))
    }

    /// Forwards buffered link incidents to the sink as trace events.
    pub(crate) fn drain_events(&mut self, sink: &mut dyn TraceSink, tracing: bool) {
        if !tracing {
            self.events.clear();
            return;
        }
        for e in self.events.drain(..) {
            let ev = match e.kind {
                LinkEventKind::Drop => FaultEvent::FaultInjected {
                    at: e.at,
                    device: e.from,
                    kind: "link-drop",
                },
                LinkEventKind::Duplicate => FaultEvent::FaultInjected {
                    at: e.at,
                    device: e.from,
                    kind: "link-duplicate",
                },
                LinkEventKind::DelaySpike => FaultEvent::FaultInjected {
                    at: e.at,
                    device: e.from,
                    kind: "link-delay",
                },
                LinkEventKind::Timeout => FaultEvent::Timeout {
                    at: e.at,
                    from: e.from,
                    to: e.to,
                    attempt: e.attempt,
                },
                LinkEventKind::Retransmit => FaultEvent::Retransmit {
                    at: e.at,
                    from: e.from,
                    to: e.to,
                    attempt: e.attempt,
                },
                LinkEventKind::GiveUp => FaultEvent::FaultInjected {
                    at: e.at,
                    device: e.from,
                    kind: "delivery-failure",
                },
            };
            sink.fault(ev);
        }
    }
}

/// A restorable point of a BSP run.
struct BspCheckpoint<P: VertexProgram> {
    round: u32,
    devs: Vec<DeviceSnapshot<P>>,
}

/// Captures every device, charging each device's PCIe dump time to its
/// clock.
#[allow(clippy::too_many_arguments)]
fn take_bsp_checkpoint<P: VertexProgram>(
    program: &P,
    devices: &[DeviceRun<P>],
    clocks: &mut [SimTime],
    round: u32,
    divisor: u64,
    net: &NetModel,
    stats: &mut ResilienceStats,
    sink: &mut dyn TraceSink,
) -> BspCheckpoint<P> {
    let cluster = net.platform().cluster;
    let mut total = 0u64;
    for (l, dev) in devices.iter().enumerate() {
        let bytes = checkpoint_bytes(dev, program, divisor);
        total += bytes;
        clocks[l] += pcie_transfer_time(&cluster, bytes);
    }
    stats.checkpoints_taken += 1;
    stats.checkpoint_bytes += total;
    sink.fault(FaultEvent::CheckpointTaken {
        at: clocks.iter().copied().max().unwrap_or(SimTime::ZERO),
        round,
        bytes: total,
    });
    BspCheckpoint {
        round,
        devs: devices.iter().map(DeviceSnapshot::capture).collect(),
    }
}

/// Runs `program` to convergence under BSP, emitting one
/// [`RoundRecord`] per (round, device) into `sink`. With a disabled sink
/// (e.g. [`crate::trace::NoopSink`]) no records are assembled.
pub fn run_bsp<P: VertexProgram>(
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    let p = devices.len();
    let mode = config.variant.comm;
    let divisor = config.scale_divisor;
    let balancer = config.variant.balancer;
    let hybrid = program.style() == Style::HybridPushPull;
    let topo = matches!(
        program.style(),
        Style::PullTopologyDriven | Style::PushTopologyDriven
    );
    let total_vertices: u64 = devices.iter().map(|d| d.lg.num_masters as u64).sum();
    let term_cost =
        termination_check_cost(net) + SimTime::from_secs_f64(config.runtime_round_overhead_secs);
    let tracing = sink.enabled();
    // Sparsity-proportional UO extraction and scratch-buffer reuse, unless
    // the config pins the legacy path for before/after benchmarking. Both
    // paths are byte-identical in every observable (pinned by tests).
    let use_index = !config.legacy_hotpath;
    for d in devices.iter_mut() {
        d.scratch.pooling = use_index;
        d.scratch.vector_kernels = use_index;
    }

    let mut clocks = vec![SimTime::ZERO; p];
    let mut host_wait = vec![SimTime::ZERO; net.platform().num_hosts() as usize];
    let mut comm_bytes = 0u64;
    let mut messages = 0u64;
    let mut rounds = 0u32;
    // Congestion carries across rounds: one link state for the whole run.
    let mut net_state = net.new_state();

    // Fault layer: absent unless the config schedules one. With
    // `Some(FaultPlan::none())` the context exists but never fires, and
    // every exchange is byte-identical to the raw path (pinned by tests).
    let mut fctx = FaultCtx::new(net, config);
    let mut stats = ResilienceStats::default();
    let crash_plan = config.faults.as_ref().and_then(|f| f.crash);
    let straggler_plan = config.faults.as_ref().and_then(|f| f.straggler);
    let ckpt_every = config.checkpoint_every_rounds;
    let recovery_on = fctx.is_some() && (crash_plan.is_some() || ckpt_every > 0);
    let mut checkpoint: Option<BspCheckpoint<P>> = None;
    if recovery_on {
        checkpoint = Some(take_bsp_checkpoint(
            program,
            devices,
            &mut clocks,
            0,
            divisor,
            net,
            &mut stats,
            sink,
        ));
    }

    // Per-round, per-device trace accumulators (only touched when tracing).
    let mut tr_frontier = vec![0u64; p];
    let mut tr_pack = vec![SimTime::ZERO; p];
    let mut tr_wait = vec![SimTime::ZERO; p];
    let mut tr_sent = vec![(0u64, 0u64); p]; // (bytes, messages)
    let mut tr_recv = vec![(0u64, 0u64); p];

    // Round-lived vectors, hoisted out of the loop and refilled in place.
    let mut alive = vec![true; p];
    let mut times = vec![SimTime::ZERO; p];
    let mut absorbed = vec![0u32; p];
    let mut sends: Vec<SendDesc> = Vec::new();
    let mut payloads: Payloads<P::Wire> = Vec::new();
    let mut round_failures: Vec<SimTime> = Vec::new();
    loop {
        round_failures.clear();
        // --- Scheduled checkpoint (skipped when a rollback just restored
        // this very round).
        if recovery_on
            && ckpt_every > 0
            && rounds > 0
            && rounds.is_multiple_of(ckpt_every)
            && checkpoint.as_ref().is_none_or(|c| c.round != rounds)
        {
            checkpoint = Some(take_bsp_checkpoint(
                program,
                devices,
                &mut clocks,
                rounds,
                divisor,
                net,
                &mut stats,
                sink,
            ));
        }
        // --- Scheduled device faults fire at round start.
        if let Some(ctx) = fctx.as_mut() {
            if let Some(cr) = crash_plan {
                if !ctx.crash_fired && rounds == cr.round {
                    ctx.crash_fired = true;
                    ctx.health.mark_dead(cr.device);
                    stats.crashes += 1;
                    sink.fault(FaultEvent::FaultInjected {
                        at: clocks[cr.device as usize],
                        device: cr.device,
                        kind: "crash",
                    });
                }
            }
            if let Some(sg) = straggler_plan {
                if rounds == sg.from_round {
                    sink.fault(FaultEvent::FaultInjected {
                        at: clocks[sg.device as usize],
                        device: sg.device,
                        kind: "straggler",
                    });
                } else if rounds == sg.from_round.saturating_add(sg.rounds) {
                    sink.fault(FaultEvent::FaultInjected {
                        at: clocks[sg.device as usize],
                        device: sg.device,
                        kind: "straggler-end",
                    });
                }
            }
        }
        if let Some(ctx) = &fctx {
            for (l, a) in alive.iter_mut().enumerate() {
                *a = ctx.alive_logical(l as u32);
            }
        }

        program.on_round_start(rounds);
        if tracing {
            for (d, f) in devices.iter().zip(tr_frontier.iter_mut()) {
                *f = d.active_count();
            }
            tr_pack.iter_mut().for_each(|t| *t = SimTime::ZERO);
            tr_wait.iter_mut().for_each(|t| *t = SimTime::ZERO);
            tr_sent.iter_mut().for_each(|c| *c = (0, 0));
            tr_recv.iter_mut().for_each(|c| *c = (0, 0));
        }
        // --- Direction decision (hybrid programs): a global per-round
        // choice, like Gunrock's direction-optimizing alpha test.
        let use_pull = hybrid && {
            // K-lane programs weight each active vertex by its number of
            // active lanes, so the density test compares total lane-work
            // against the lane-scaled vertex count — for scalar programs
            // (`lanes() == 1`, unit weights) this is bit-for-bit the old
            // `active_count()` test.
            let frontier: u64 = devices.iter().map(|d| d.frontier_weight(program)).sum();
            program.pull_when(frontier, total_vertices * program.lanes())
        };
        // --- Compute phase (devices in parallel; each sequential inside).
        devices.par_iter_mut().enumerate().for_each(|(i, d)| {
            d.scratch.compute_t = if !alive[i] {
                SimTime::ZERO
            } else if use_pull {
                d.compute_bottom_up(program, balancer, divisor)
            } else if topo || d.has_work() {
                d.compute(program, balancer, divisor)
            } else {
                SimTime::ZERO
            };
        });
        for (t, d) in times.iter_mut().zip(devices.iter()) {
            *t = d.scratch.compute_t;
        }
        advance_compute_clocks(&mut clocks, &times, fctx.as_ref(), |ctx, phys| {
            ctx.injector().slowdown(phys, rounds)
        });

        // --- Reduce exchange: mirrors -> masters. Every holder builds all
        // of its partner payloads on its own device state, so the build
        // fans out per holder; pack charging and send stamping follow
        // sequentially in holder-major order (identical clocks and
        // `SendDesc` order to a sequential build).
        devices.par_iter_mut().enumerate().for_each(|(h, dev)| {
            let holder = h as u32;
            dev.scratch.built.clear();
            dev.scratch.pack_t = SimTime::ZERO;
            if !alive[h] {
                return;
            }
            // Density gate: on near-dense frontiers (pagerank-style rounds)
            // the sequential dense walk beats the intersection's per-hit
            // rank arithmetic, so the index only engages when the frontier
            // is small relative to the link. Either path emits identical
            // bytes, so this is purely a cost heuristic.
            let upd = if use_index {
                dev.updated.count_ones() as usize
            } else {
                usize::MAX
            };
            for owner in 0..p as u32 {
                if holder == owner {
                    continue;
                }
                let entries = plan.reduce(holder, owner);
                if entries.is_empty() {
                    continue;
                }
                let link = part.link(holder, owner);
                let idx = if upd < entries.len() / 2 {
                    plan.reduce_index(holder, owner)
                } else {
                    None
                };
                // Even an empty payload is sent: under BSP every host
                // waits to hear from each of its partners every round,
                // so UO messages carry at least the presence bitset.
                // This per-partner cost is what makes CVC's restricted
                // partner sets matter (SIII-D1).
                let (payload, bytes) = dev.build_reduce(program, link, entries, idx, mode, divisor);
                dev.scratch.built.push((owner, payload, bytes));
            }
            if !dev.scratch.built.is_empty() {
                dev.scratch.pack_t = dev.pack_time(mode, divisor);
            }
        });
        stamp_sends::<P>(
            &mut clocks,
            devices,
            &mut sends,
            &mut payloads,
            tracing.then_some(&mut tr_pack),
        );
        let delivered = run_exchange(
            net,
            &mut net_state,
            &mut clocks,
            &mut host_wait,
            &mut comm_bytes,
            &mut messages,
            &sends,
            tracing.then_some(&mut tr_wait),
            fctx.as_mut(),
            &mut stats.faults,
            &mut round_failures,
        );
        if let Some(ctx) = fctx.as_mut() {
            ctx.drain_events(sink, tracing);
        }
        if tracing {
            tally_sends(&sends, &mut tr_sent, &mut tr_recv);
        }
        apply_grouped(
            devices,
            &mut payloads,
            delivered.as_deref(),
            |dev, builder, payload| {
                let link = part.link(builder, dev.dev);
                dev.apply_reduce(program, link, payload);
            },
        );

        // --- Absorb: masters fold accumulators once per round.
        devices.par_iter_mut().enumerate().for_each(|(i, d)| {
            d.scratch.absorbed = if alive[i] {
                d.absorb_masters(program)
            } else {
                0
            };
        });
        for (a, d) in absorbed.iter_mut().zip(devices.iter()) {
            *a = d.scratch.absorbed;
        }
        let changed: u32 = absorbed.iter().sum();

        // --- Broadcast exchange: masters -> mirrors (same parallel
        // build / sequential stamp split, owner-major).
        devices.par_iter_mut().enumerate().for_each(|(o, dev)| {
            let owner = o as u32;
            dev.scratch.built.clear();
            dev.scratch.pack_t = SimTime::ZERO;
            if !alive[o] {
                return;
            }
            // Same density gate as the reduce build, over `bcast_dirty`.
            let dirty = if use_index {
                dev.bcast_dirty.count_ones() as usize
            } else {
                usize::MAX
            };
            for holder in 0..p as u32 {
                if holder == owner {
                    continue;
                }
                let entries = plan.bcast(holder, owner);
                if entries.is_empty() {
                    continue;
                }
                let link = part.link(holder, owner);
                let idx = if dirty < entries.len() / 2 {
                    plan.bcast_index(holder, owner)
                } else {
                    None
                };
                let (payload, bytes) =
                    dev.build_broadcast(program, link, entries, idx, mode, divisor, false);
                dev.scratch.built.push((holder, payload, bytes));
            }
            if !dev.scratch.built.is_empty() {
                dev.scratch.pack_t = dev.pack_time(mode, divisor);
            }
        });
        stamp_sends::<P>(
            &mut clocks,
            devices,
            &mut sends,
            &mut payloads,
            tracing.then_some(&mut tr_pack),
        );
        let delivered = run_exchange(
            net,
            &mut net_state,
            &mut clocks,
            &mut host_wait,
            &mut comm_bytes,
            &mut messages,
            &sends,
            tracing.then_some(&mut tr_wait),
            fctx.as_mut(),
            &mut stats.faults,
            &mut round_failures,
        );
        if let Some(ctx) = fctx.as_mut() {
            ctx.drain_events(sink, tracing);
        }
        if tracing {
            tally_sends(&sends, &mut tr_sent, &mut tr_recv);
        }
        apply_grouped(
            devices,
            &mut payloads,
            delivered.as_deref(),
            |dev, builder, payload| {
                let link = part.link(dev.dev, builder);
                dev.apply_broadcast(program, link, payload, false);
            },
        );

        // --- Round end: clear update tracking, pay the termination check.
        devices
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| alive[*i])
            .for_each(|(_, d)| d.clear_sync_marks(program));
        for c in clocks.iter_mut() {
            *c += term_cost;
        }
        if tracing {
            let direction = if use_pull || program.style() == Style::PullTopologyDriven {
                TraceDirection::Pull
            } else {
                TraceDirection::Push
            };
            for d in 0..p {
                sink.record(RoundRecord {
                    engine: EngineKind::Bsp,
                    round: rounds,
                    device: d as u32,
                    direction,
                    frontier: tr_frontier[d],
                    compute: times[d],
                    pack: tr_pack[d],
                    wait: tr_wait[d],
                    bytes_sent: tr_sent[d].0,
                    bytes_received: tr_recv[d].0,
                    messages_sent: tr_sent[d].1,
                    messages_received: tr_recv[d].1,
                    absorb_changed: absorbed[d],
                    clock_end: clocks[d],
                });
            }
        }

        // --- Recovery: a crashed device was detected this round, either
        // by senders exhausting their retry budget or — when no message
        // happened to be due — by the barrier timing out on the silent
        // peer.
        if fctx.as_ref().is_some_and(|c| c.dead_unrecovered(p)) {
            let ctx = fctx.as_mut().expect("dead device implies fault context");
            let cr = crash_plan.expect("only a scheduled crash kills devices");
            let ckpt = checkpoint
                .as_ref()
                .expect("recovery_on guarantees an initial checkpoint");
            stats.rollbacks += 1;
            stats.rounds_replayed += rounds.saturating_sub(ckpt.round);
            let pre_max = clocks.iter().copied().max().unwrap_or(SimTime::ZERO);
            let detect_at = round_failures
                .iter()
                .copied()
                .max()
                .unwrap_or(pre_max + config.retry.give_up_after());

            // Restore every device from the checkpoint and charge each
            // restore's PCIe reload. Monotonic accounting (compute time,
            // work items) is preserved: the lost rounds were really run.
            let cluster = net.platform().cluster;
            let mut resume = detect_at;
            for (l, (dev, snap)) in devices.iter_mut().zip(&ckpt.devs).enumerate() {
                snap.restore(dev);
                let cost = pcie_transfer_time(&cluster, checkpoint_bytes(dev, program, divisor));
                clocks[l] = detect_at + cost;
                resume = resume.max(clocks[l]);
            }
            stats.recovery_time += resume.saturating_sub(pre_max);
            // Old link occupancy all predates the detection instant.
            net_state = net.new_state();
            rounds = ckpt.round;

            if cr.rejoin {
                ctx.health.revive(cr.device);
                stats.rejoins += 1;
            } else {
                let adopter = ctx
                    .home
                    .pick_adopter(&ctx.health.alive_flags())
                    .expect("at least one survivor");
                let masters = devices[cr.device as usize].lg.num_masters as u64;
                ctx.home.rehome(cr.device, adopter);
                stats.masters_reassigned += masters;
                sink.fault(FaultEvent::MastersReassigned {
                    at: resume,
                    from_device: cr.device,
                    to_device: adopter,
                    masters,
                });
            }
            sink.fault(FaultEvent::Rollback {
                at: resume,
                to_round: ckpt.round,
                device: cr.device,
            });
            continue;
        }

        rounds += 1;

        let work_left = match program.style() {
            Style::PullTopologyDriven => changed > 0,
            // Round-gated: runs for exactly max_rounds rounds.
            Style::PushTopologyDriven => true,
            _ => devices.iter().any(|d| d.has_work()),
        };
        if !work_left || rounds >= program.max_rounds() {
            break;
        }
    }
    sink.finish();

    EngineOutcome {
        clocks,
        host_wait,
        comm_bytes,
        messages,
        rounds,
        min_rounds: devices.iter().map(|d| d.rounds).min().unwrap_or(0),
        max_rounds: devices.iter().map(|d| d.rounds).max().unwrap_or(0),
        resilience: stats,
    }
}

/// Advances device clocks past the compute phase. Healthy identity-mapped
/// runs reduce to `clock += time`; a straggler window multiplies the
/// affected device's time, and after graceful degradation the partitions
/// sharing a physical device execute serially on it (in ascending logical
/// order, from the latest resident clock).
fn advance_compute_clocks(
    clocks: &mut [SimTime],
    times: &[SimTime],
    fctx: Option<&FaultCtx<'_>>,
    factor_of: impl Fn(&FaultCtx<'_>, u32) -> f64,
) {
    let scale = |t: SimTime, f: f64| {
        if f == 1.0 {
            t
        } else {
            SimTime::from_secs_f64(t.as_secs_f64() * f)
        }
    };
    match fctx {
        None => {
            for (c, t) in clocks.iter_mut().zip(times) {
                *c += *t;
            }
        }
        Some(ctx) if ctx.home.is_identity() => {
            for (l, (c, t)) in clocks.iter_mut().zip(times).enumerate() {
                *c += scale(*t, factor_of(ctx, ctx.home.phys(l as u32)));
            }
        }
        Some(ctx) => {
            for d in 0..clocks.len() as u32 {
                let residents = ctx.home.residents(d);
                if residents.is_empty() {
                    continue;
                }
                let f = factor_of(ctx, d);
                let mut cur = residents
                    .iter()
                    .map(|&l| clocks[l as usize])
                    .max()
                    .expect("non-empty residents");
                for &l in &residents {
                    cur += scale(times[l as usize], f);
                    clocks[l as usize] = cur;
                }
            }
        }
    }
}

/// Sequential half of a payload build: walks builders in device order,
/// charges each non-idle builder's pack time, and stamps every send with
/// the builder's post-pack clock — exactly what the former inline loop
/// produced. Drains each device's `scratch.built` into the reused
/// `sends`/`payloads` vectors.
fn stamp_sends<P: VertexProgram>(
    clocks: &mut [SimTime],
    devices: &mut [DeviceRun<P>],
    sends: &mut Vec<SendDesc>,
    payloads: &mut Payloads<P::Wire>,
    mut tr_pack: Option<&mut Vec<SimTime>>,
) {
    sends.clear();
    payloads.clear();
    for (builder, dev) in devices.iter_mut().enumerate() {
        if dev.scratch.built.is_empty() {
            continue;
        }
        let pack = dev.scratch.pack_t;
        clocks[builder] += pack;
        if let Some(tp) = tr_pack.as_deref_mut() {
            tp[builder] += pack;
        }
        for (partner, payload, bytes) in dev.scratch.built.drain(..) {
            sends.push(SendDesc {
                from: builder as u32,
                to: partner,
                bytes,
                depart: clocks[builder],
            });
            payloads.push((builder as u32, partner, payload));
        }
    }
}

/// Applies payloads in parallel across receiving devices. Each receiver
/// sees its payloads in the same (ascending-builder) order a sequential
/// apply loop would deliver them, so accumulation order per device — and
/// with it every float result — is unchanged. `delivered`, when present,
/// is index-parallel to the payloads; undelivered ones (lost to a dead
/// receiver) are skipped. Grouping bins live in each receiver's
/// `scratch.inbox`, and consumed payload vectors recycle into the
/// receiver's own pool — no cross-device sharing, no locking.
fn apply_grouped<P: VertexProgram>(
    devices: &mut [DeviceRun<P>],
    payloads: &mut Payloads<P::Wire>,
    delivered: Option<&[bool]>,
    apply: impl Fn(&mut DeviceRun<P>, u32, &[(u32, P::Wire)]) + Sync,
) {
    if payloads.is_empty() {
        return;
    }
    for (i, (builder, partner, payload)) in payloads.drain(..).enumerate() {
        let dev = &mut devices[partner as usize];
        if delivered.is_none_or(|d| d[i]) {
            dev.scratch.inbox.push((builder, payload));
        } else {
            dev.scratch.recycle(payload);
        }
    }
    devices.par_iter_mut().for_each(|dev| {
        let mut items = std::mem::take(&mut dev.scratch.inbox);
        for (builder, payload) in items.drain(..) {
            apply(dev, builder, &payload);
            dev.scratch.recycle(payload);
        }
        dev.scratch.inbox = items;
    });
}

/// Adds one exchange's sends to per-device (bytes, messages) tallies.
fn tally_sends(sends: &[SendDesc], sent: &mut [(u64, u64)], recv: &mut [(u64, u64)]) {
    for s in sends {
        sent[s.from as usize].0 += s.bytes;
        sent[s.from as usize].1 += 1;
        recv[s.to as usize].0 += s.bytes;
        recv[s.to as usize].1 += 1;
    }
}

/// Runs one exchange and folds its timing into the running clocks/waits.
/// Without a fault context this is the raw [`NetModel::exchange_with`]
/// path, unchanged; with one, every message goes through the reliable
/// transport (addressed by *physical* device), abandoned sends to dead
/// receivers are reported through `failures`, and the per-send delivery
/// flags come back for the apply stage. Returns `None` when every payload
/// was delivered (raw path), `Some(flags)` otherwise.
#[allow(clippy::too_many_arguments)]
fn run_exchange(
    net: &NetModel,
    st: &mut NetState,
    clocks: &mut [SimTime],
    host_wait: &mut [SimTime],
    comm_bytes: &mut u64,
    messages: &mut u64,
    sends: &[SendDesc],
    device_wait: Option<&mut Vec<SimTime>>,
    fctx: Option<&mut FaultCtx<'_>>,
    counters: &mut FaultCounters,
    failures: &mut Vec<SimTime>,
) -> Option<Vec<bool>> {
    if sends.is_empty() {
        return None;
    }
    let ctx = match fctx {
        None => {
            // Raw path: exactly the pre-fault-layer behavior.
            let outcome = net.exchange_with(st, clocks, sends, None);
            if let Some(wait) = device_wait {
                for (d, w) in wait.iter_mut().enumerate() {
                    *w += outcome.device_done[d].saturating_sub(outcome.sender_free[d]);
                }
            }
            clocks.copy_from_slice(&outcome.device_done);
            for (w, o) in host_wait.iter_mut().zip(&outcome.host_wait) {
                *w += *o;
            }
            *comm_bytes += outcome.total_bytes;
            *messages += outcome.num_messages;
            return None;
        }
        Some(ctx) => ctx,
    };

    let p = clocks.len();
    let mut delivered = vec![false; sends.len()];
    // Translate logical endpoints to physical devices. Co-homed pairs
    // (possible only after degradation re-homing) never touch the wire:
    // both partitions live in the same device memory.
    let mut phys_sends: Vec<SendDesc> = Vec::with_capacity(sends.len());
    let mut phys_index: Vec<usize> = Vec::with_capacity(sends.len());
    for (i, s) in sends.iter().enumerate() {
        let pf = ctx.home.phys(s.from);
        let pt = ctx.home.phys(s.to);
        if pf == pt {
            delivered[i] = true;
        } else {
            phys_index.push(i);
            phys_sends.push(SendDesc {
                from: pf,
                to: pt,
                ..*s
            });
        }
    }
    let phys_clock: Vec<SimTime> = if ctx.home.is_identity() {
        clocks.to_vec()
    } else {
        (0..p as u32)
            .map(|d| {
                ctx.home
                    .residents(d)
                    .iter()
                    .map(|&l| clocks[l as usize])
                    .max()
                    .unwrap_or(SimTime::ZERO)
            })
            .collect()
    };
    let alive = ctx.health.alive_flags();
    let ex = ctx.rnet.exchange_reliable(
        st,
        &mut ctx.rstate,
        &phys_clock,
        &phys_sends,
        &alive,
        counters,
        &mut ctx.events,
        None,
    );
    for (k, &i) in phys_index.iter().enumerate() {
        if ex.delivered[k] {
            delivered[i] = true;
        }
    }
    let mut escalated: Vec<(usize, SimTime)> = Vec::new();
    for f in &ex.failures {
        if alive[f.to as usize] {
            // The receiver is alive but every attempt was lost: the
            // transport escalates out-of-band and delivers at the give-up
            // instant (a last-resort reliable path; astronomically rare
            // under sane drop rates, but correctness must not depend on
            // luck).
            delivered[phys_index[f.index]] = true;
            escalated.push((f.index, f.gave_up_at));
        } else {
            failures.push(f.gave_up_at);
        }
    }
    if let Some(wait) = device_wait {
        for (l, w) in wait.iter_mut().enumerate() {
            let d = ctx.home.phys(l as u32) as usize;
            *w += ex.outcome.device_done[d].saturating_sub(ex.outcome.sender_free[d]);
        }
    }
    for (l, c) in clocks.iter_mut().enumerate() {
        *c = (*c).max(ex.outcome.device_done[ctx.home.phys(l as u32) as usize]);
    }
    for (i, at) in escalated {
        let to = phys_sends[i].to as usize;
        // The escalated payload lands late: its receiver blocks until the
        // give-up instant.
        for l in 0..p as u32 {
            if ctx.home.phys(l) as usize == to {
                clocks[l as usize] = clocks[l as usize].max(at);
            }
        }
    }
    for (w, o) in host_wait.iter_mut().zip(&ex.outcome.host_wait) {
        *w += *o;
    }
    *comm_bytes += ex.outcome.total_bytes;
    *messages += sends.len() as u64;
    Some(delivered)
}
