//! One entry point over both execution models.
//!
//! [`run_engine`] dispatches a prepared device set to [`crate::bsp`] or
//! [`crate::basp`] by [`ExecutionModel`], with the trace sink always in the
//! signature (pass a [`crate::trace::NoopSink`] for untraced runs — a
//! disabled sink skips all record assembly, so the untraced path costs
//! nothing).

use dirgl_comm::{NetModel, SyncPlan};
use dirgl_partition::Partition;

use crate::basp::run_basp;
use crate::bsp::{run_bsp, EngineOutcome};
use crate::config::RunConfig;
use crate::device::DeviceRun;
use crate::program::VertexProgram;
use crate::trace::TraceSink;

/// Which engine executes the run — a clearer-named alias of
/// [`crate::config::ExecModel`] for dispatch call sites.
pub use crate::config::ExecModel as ExecutionModel;

/// Runs `program` on the prepared `devices` under the chosen execution
/// model, emitting per-round records into `sink`.
#[allow(clippy::too_many_arguments)]
pub fn run_engine<P: VertexProgram>(
    model: ExecutionModel,
    program: &P,
    devices: &mut [DeviceRun<P>],
    part: &Partition,
    plan: &SyncPlan,
    net: &NetModel,
    config: &RunConfig,
    sink: &mut dyn TraceSink,
) -> EngineOutcome {
    match model {
        ExecutionModel::Sync => run_bsp(program, devices, part, plan, net, config, sink),
        ExecutionModel::Async => run_basp(program, devices, part, plan, net, config, sink),
    }
}
