//! Message size accounting for the two communication modes of §IV-C.
//!
//! Because the exchange order per device pair is memoized at partition time
//! (the alignment of [`dirgl_partition::PairLink`]), messages never carry
//! global vertex ids:
//!
//! * **AS** (all shared, Lux's mode and D-IrGL Var1/Var2): the values of
//!   *every* participating proxy, positionally — `entries × val_bytes`.
//! * **UO** (updated only, D-IrGL Var3+): a presence bitset over the
//!   memoized order plus the extracted values —
//!   `ceil(entries / 64) × 8 + updated × val_bytes`.
//!
//! The paper's observation that UO shrank uk07 sssp messages from ~2 MB to
//! ~0.2 MB while still paying a prefix-scan extraction falls straight out
//! of these formulas plus [`dirgl_gpusim::KernelModel::scan_time`].

use serde::{Deserialize, Serialize};

/// Bytes per synchronized label value. All five benchmarks synchronize one
/// 32-bit field (level, distance, component, degree delta, residual).
pub const VAL_BYTES: u64 = 4;

/// Communication mode (§IV-C "AS vs UO").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommMode {
    /// Synchronize all shared proxies every round.
    AllShared,
    /// Track updates, synchronize only updated values.
    UpdatedOnly,
}

impl CommMode {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            CommMode::AllShared => "AS",
            CommMode::UpdatedOnly => "UO",
        }
    }
}

impl std::fmt::Display for CommMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wire size of an AS message carrying `entries` positional values.
pub fn as_message_bytes(entries: u64, val_bytes: u64) -> u64 {
    entries * val_bytes
}

/// Wire size of a UO message: presence bitset over the memoized order plus
/// the `updated` extracted values.
pub fn uo_message_bytes(entries: u64, updated: u64, val_bytes: u64) -> u64 {
    debug_assert!(updated <= entries);
    entries.div_ceil(64) * 8 + updated * val_bytes
}

/// Wire size under `mode`.
pub fn message_bytes(mode: CommMode, entries: u64, updated: u64, val_bytes: u64) -> u64 {
    match mode {
        CommMode::AllShared => as_message_bytes(entries, val_bytes),
        CommMode::UpdatedOnly => uo_message_bytes(entries, updated, val_bytes),
    }
}

/// Wire size under `mode` for programs whose per-entry wire payload is not
/// a fixed [`VAL_BYTES`] — the K-lane batched path, where an AS entry
/// always carries every live lane but a UO entry carries only its active
/// lanes (`uo_payload_bytes` is the caller-summed per-entry total).
///
/// * AS: `as_payload_bytes` — the positional full-width payload.
/// * UO: the presence bitset over the memoized order plus
///   `uo_payload_bytes` of extracted values.
///
/// With both payload arguments derived from a fixed `val_bytes`, this is
/// exactly [`message_bytes`] (pinned by tests): the scalar path's
/// accounting is the `val_bytes = VAL_BYTES` special case.
pub fn message_bytes_sized(
    mode: CommMode,
    entries: u64,
    as_payload_bytes: u64,
    uo_payload_bytes: u64,
) -> u64 {
    match mode {
        CommMode::AllShared => as_payload_bytes,
        CommMode::UpdatedOnly => entries.div_ceil(64) * 8 + uo_payload_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_size_is_positional() {
        assert_eq!(as_message_bytes(1000, 4), 4000);
        assert_eq!(as_message_bytes(0, 4), 0);
    }

    #[test]
    fn uo_beats_as_when_sparse() {
        let entries = 100_000;
        let a = as_message_bytes(entries, VAL_BYTES);
        let u = uo_message_bytes(entries, 1_000, VAL_BYTES);
        assert!(u < a / 10, "uo={u} as={a}");
    }

    #[test]
    fn uo_loses_when_dense() {
        // Everything updated: UO pays the bitset on top of the values.
        let entries = 100_000;
        let a = as_message_bytes(entries, VAL_BYTES);
        let u = uo_message_bytes(entries, entries, VAL_BYTES);
        assert!(u > a);
    }

    #[test]
    fn paper_magnitudes_uk07_sssp() {
        // uk07 on 64 GPUs: ~2 MB AS messages became ~0.2 MB with UO.
        // With ~500k shared entries/pair and ~3% updated per round the
        // formulas land in that regime.
        let entries = 500_000;
        let a = as_message_bytes(entries, VAL_BYTES);
        let u = uo_message_bytes(entries, entries * 3 / 100, VAL_BYTES);
        assert!((1.5e6..3e6).contains(&(a as f64)), "as={a}");
        assert!((0.8e5..3e5).contains(&(u as f64)), "uo={u}");
    }

    #[test]
    fn sized_accounting_reduces_to_fixed_width() {
        // Scalar special case: payloads derived from VAL_BYTES reproduce
        // message_bytes exactly.
        for (entries, updated) in [(64u64, 3u64), (1000, 0), (1, 1), (130, 129)] {
            assert_eq!(
                message_bytes_sized(
                    CommMode::AllShared,
                    entries,
                    entries * VAL_BYTES,
                    updated * VAL_BYTES
                ),
                message_bytes(CommMode::AllShared, entries, updated, VAL_BYTES)
            );
            assert_eq!(
                message_bytes_sized(
                    CommMode::UpdatedOnly,
                    entries,
                    entries * VAL_BYTES,
                    updated * VAL_BYTES
                ),
                message_bytes(CommMode::UpdatedOnly, entries, updated, VAL_BYTES)
            );
        }
    }

    #[test]
    fn sized_uo_scales_with_active_lanes() {
        // A K-lane entry carries its mask word plus one value per active
        // lane: a 3-active-lane entry costs less than a 64-lane one.
        let per_entry = |active: u64| 8 + active * VAL_BYTES;
        let sparse = message_bytes_sized(CommMode::UpdatedOnly, 100, 0, 10 * per_entry(3));
        let dense = message_bytes_sized(CommMode::UpdatedOnly, 100, 0, 10 * per_entry(64));
        assert!(sparse < dense);
        assert_eq!(dense - sparse, 10 * 61 * VAL_BYTES);
    }

    #[test]
    fn mode_dispatch() {
        assert_eq!(
            message_bytes(CommMode::AllShared, 64, 3, 4),
            as_message_bytes(64, 4)
        );
        assert_eq!(
            message_bytes(CommMode::UpdatedOnly, 64, 3, 4),
            uo_message_bytes(64, 3, 4)
        );
    }
}
