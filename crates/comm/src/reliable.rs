//! Reliable delivery over the lossy transport.
//!
//! [`ReliableNet`] wraps [`NetModel`] with the machinery a real fabric
//! layers over an unreliable link: per-link sequence numbers, positive
//! acks, an exponential-backoff retransmission timer with a bounded retry
//! budget, and receiver-side duplicate suppression. Each *logical* message
//! becomes one or more wire attempts; the [`FaultInjector`] decides each
//! attempt's fate.
//!
//! The layer is engineered so that under [`FaultPlan::none`]
//! (`FaultPlan::none()`) every logical message takes exactly one attempt
//! and the calls into [`NetModel::send`] are the *same calls in the same
//! order* the raw [`NetModel::exchange_with`] path would make — a run with
//! the reliable layer enabled but no faults scheduled is byte-identical to
//! a run without the layer (pinned by tests here and at the engine level).
//!
//! When the retry budget is exhausted the message is *abandoned* and
//! surfaced to the engine as a [`Failure`]; that is the engine's signal
//! that the peer is unreachable (crashed) and recovery must run. Acks are
//! not separately priced on the wire: they are tiny compared to payloads,
//! and their cost is folded into the ack-timeout constant.

use crate::clock::SimTime;
use crate::faults::{FaultCounters, FaultInjector, FaultPlan, LinkFate, RetryConfig};
use crate::net::{
    host_work_floor, Delivery, ExchangeOutcome, MessageTrace, NetModel, NetState, SendDesc,
};

/// Receiver/sender bookkeeping for reliable delivery: the next sequence
/// number per ordered device pair. Lives with the caller, like
/// [`NetState`], and — deliberately — is *not* part of any checkpoint:
/// after a rollback, replayed messages draw fresh sequence numbers and
/// therefore fresh fault fates, so a deterministic injector cannot pin a
/// replay into the exact loss pattern that forced the rollback.
#[derive(Clone, Debug)]
pub struct ReliableState {
    seq: Vec<u64>,
    devices: u32,
}

impl ReliableState {
    /// Fresh state for `devices` devices (all sequence numbers at zero).
    pub fn for_devices(devices: u32) -> ReliableState {
        ReliableState {
            seq: vec![0; (devices as usize) * (devices as usize)],
            devices,
        }
    }

    fn next_seq(&mut self, from: u32, to: u32) -> u64 {
        let i = (from * self.devices + to) as usize;
        let s = self.seq[i];
        self.seq[i] += 1;
        s
    }
}

/// What kind of link-level incident a [`LinkEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEventKind {
    /// The injector dropped a transmission attempt.
    Drop,
    /// The injector duplicated a delivery (the copy was suppressed).
    Duplicate,
    /// The injector delayed a delivery.
    DelaySpike,
    /// The sender's ack timer expired.
    Timeout,
    /// The sender retransmitted.
    Retransmit,
    /// The sender exhausted its retry budget and abandoned the message.
    GiveUp,
}

/// One link-level incident, for the trace layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkEvent {
    /// When it happened (simulated time).
    pub at: SimTime,
    /// Sending device.
    pub from: u32,
    /// Receiving device.
    pub to: u32,
    /// Per-link sequence number of the affected message.
    pub seq: u64,
    /// Transmission attempt (0 = first send).
    pub attempt: u32,
    /// What happened.
    pub kind: LinkEventKind,
}

/// Outcome of reliably sending one logical message.
#[derive(Clone, Copy, Debug)]
pub struct SendVerdict {
    /// When the payload was applied on the receiver; `None` if the sender
    /// gave up.
    pub arrival: Option<SimTime>,
    /// When the sending device finished its last upload (over all
    /// attempts).
    pub sender_free: SimTime,
    /// When the sending host finished pushing the final attempt.
    pub host_send_done: SimTime,
    /// When the sender declared the receiver unreachable (`Some` iff
    /// `arrival` is `None`).
    pub gave_up_at: Option<SimTime>,
    /// Wire attempts made (1 = no retransmissions).
    pub attempts: u32,
    /// Actual bytes put on the wire, counting every attempt and duplicate.
    pub wire_bytes: u64,
    /// Raw link timing of the final attempt (for per-message traces).
    pub last: Delivery,
}

/// A message abandoned after the full retry budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Failure {
    /// Index into the caller's send slice.
    pub index: usize,
    /// Sending device.
    pub from: u32,
    /// Unreachable receiving device.
    pub to: u32,
    /// When the sender gave up — the engine's failure-detection instant.
    pub gave_up_at: SimTime,
}

/// Result of a reliable barrier-style exchange.
#[derive(Clone, Debug)]
pub struct ReliableExchange {
    /// Per-device / per-host aggregate, same shape as the raw
    /// [`NetModel::exchange_with`] (`total_bytes` counts wire attempts).
    pub outcome: ExchangeOutcome,
    /// Index-parallel to the input sends: whether each payload reached its
    /// receiver.
    pub delivered: Vec<bool>,
    /// Messages abandoned after the retry budget (empty on healthy runs).
    pub failures: Vec<Failure>,
}

/// [`NetModel`] plus retry/ack reliability and fault injection.
#[derive(Clone, Debug)]
pub struct ReliableNet<'a> {
    net: &'a NetModel,
    injector: FaultInjector,
    retry: RetryConfig,
}

impl<'a> ReliableNet<'a> {
    /// Wraps `net` with reliability under `plan`.
    pub fn new(net: &'a NetModel, plan: FaultPlan, retry: RetryConfig) -> ReliableNet<'a> {
        ReliableNet {
            net,
            injector: FaultInjector::new(plan),
            retry,
        }
    }

    /// The underlying timing model.
    pub fn net(&self) -> &NetModel {
        self.net
    }

    /// The fault decision-maker (shared with the engines for device
    /// faults).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The retry policy.
    pub fn retry(&self) -> RetryConfig {
        self.retry
    }

    /// Reliably delivers one logical message: transmit, and on loss retry
    /// with exponential backoff until delivery or until the budget is
    /// spent. `dest_alive = false` forces every attempt to be lost — a
    /// crashed receiver acks nothing — so the sender walks the full ladder
    /// and gives up; `gave_up_at` is then the crash-detection instant.
    pub fn send_reliable(
        &self,
        st: &mut NetState,
        rst: &mut ReliableState,
        msg: SendDesc,
        dest_alive: bool,
        counters: &mut FaultCounters,
        events: &mut Vec<LinkEvent>,
    ) -> SendVerdict {
        let seq = rst.next_seq(msg.from, msg.to);
        let mut depart = msg.depart;
        let mut sender_free = msg.depart;
        let mut wire_bytes = 0u64;
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                counters.retransmits += 1;
                events.push(LinkEvent {
                    at: depart,
                    from: msg.from,
                    to: msg.to,
                    seq,
                    attempt,
                    kind: LinkEventKind::Retransmit,
                });
            }
            let d = self.net.send(st, SendDesc { depart, ..msg });
            wire_bytes += msg.bytes;
            sender_free = sender_free.max(d.sender_free);
            let fate = if dest_alive {
                self.injector.link_fate(msg.from, msg.to, seq, attempt)
            } else {
                LinkFate::Drop
            };
            match fate {
                LinkFate::Deliver {
                    extra_delay,
                    duplicated,
                } => {
                    if extra_delay > SimTime::ZERO {
                        counters.delays_injected += 1;
                        events.push(LinkEvent {
                            at: d.arrival,
                            from: msg.from,
                            to: msg.to,
                            seq,
                            attempt,
                            kind: LinkEventKind::DelaySpike,
                        });
                    }
                    if duplicated {
                        // The network forked the packet: the extra copy
                        // occupies the links like any message, then the
                        // receiver recognizes the sequence number and
                        // discards it.
                        counters.duplicates_injected += 1;
                        counters.duplicates_suppressed += 1;
                        let dd = self.net.send(st, SendDesc { depart, ..msg });
                        wire_bytes += msg.bytes;
                        sender_free = sender_free.max(dd.sender_free);
                        events.push(LinkEvent {
                            at: dd.arrival,
                            from: msg.from,
                            to: msg.to,
                            seq,
                            attempt,
                            kind: LinkEventKind::Duplicate,
                        });
                    }
                    return SendVerdict {
                        arrival: Some(d.arrival + extra_delay),
                        sender_free,
                        host_send_done: d.host_send_done,
                        gave_up_at: None,
                        attempts: attempt + 1,
                        wire_bytes,
                        last: d,
                    };
                }
                LinkFate::Drop => {
                    if dest_alive {
                        counters.drops_injected += 1;
                        events.push(LinkEvent {
                            at: d.arrival,
                            from: msg.from,
                            to: msg.to,
                            seq,
                            attempt,
                            kind: LinkEventKind::Drop,
                        });
                    }
                    counters.timeouts += 1;
                    let wait = self.retry.timeout_secs * self.retry.backoff.powi(attempt as i32);
                    let timeout_at = d.host_send_done + SimTime::from_secs_f64(wait);
                    events.push(LinkEvent {
                        at: timeout_at,
                        from: msg.from,
                        to: msg.to,
                        seq,
                        attempt,
                        kind: LinkEventKind::Timeout,
                    });
                    if attempt >= self.retry.max_retries {
                        counters.delivery_failures += 1;
                        events.push(LinkEvent {
                            at: timeout_at,
                            from: msg.from,
                            to: msg.to,
                            seq,
                            attempt,
                            kind: LinkEventKind::GiveUp,
                        });
                        return SendVerdict {
                            arrival: None,
                            sender_free,
                            host_send_done: d.host_send_done,
                            gave_up_at: Some(timeout_at),
                            attempts: attempt + 1,
                            wire_bytes,
                            last: d,
                        };
                    }
                    depart = timeout_at;
                    attempt += 1;
                }
            }
        }
    }

    /// Reliable counterpart of [`NetModel::exchange_with`]: same service
    /// order, same aggregation, but each message goes through
    /// [`ReliableNet::send_reliable`]. `dest_alive[d]` marks crashed
    /// devices; sends addressed to them exhaust their budget and come back
    /// in `failures`.
    #[allow(clippy::too_many_arguments)]
    pub fn exchange_reliable(
        &self,
        st: &mut NetState,
        rst: &mut ReliableState,
        device_clock: &[SimTime],
        sends: &[SendDesc],
        dest_alive: &[bool],
        counters: &mut FaultCounters,
        events: &mut Vec<LinkEvent>,
        mut trace: Option<&mut Vec<MessageTrace>>,
    ) -> ReliableExchange {
        let p = self.net.platform().num_devices() as usize;
        let h = self.net.platform().num_hosts() as usize;
        let mut device_done: Vec<SimTime> = device_clock.to_vec();
        let mut host_send_done: Vec<SimTime> = (0..h)
            .map(|i| host_work_floor(self.net.platform(), device_clock, i as u32))
            .collect();
        let mut host_last_arrival: Vec<SimTime> = vec![SimTime::ZERO; h];
        let mut sender_free: Vec<SimTime> = device_clock.to_vec();
        let mut total_bytes = 0u64;
        let mut delivered = vec![false; sends.len()];
        let mut failures = Vec::new();

        // Deterministic service order, identical to the raw exchange.
        let mut order: Vec<usize> = (0..sends.len()).collect();
        order.sort_by_key(|&i| (sends[i].depart, sends[i].from, sends[i].to));

        for i in order {
            let msg = sends[i];
            let v = self.send_reliable(st, rst, msg, dest_alive[msg.to as usize], counters, events);
            total_bytes += v.wire_bytes;
            let hf = self.net.platform().host_of(msg.from) as usize;
            let ht = self.net.platform().host_of(msg.to) as usize;
            sender_free[msg.from as usize] = sender_free[msg.from as usize].max(v.sender_free);
            host_send_done[hf] = host_send_done[hf].max(v.host_send_done);
            match v.arrival {
                Some(arrival) => {
                    delivered[i] = true;
                    device_done[msg.to as usize] = device_done[msg.to as usize].max(arrival);
                    host_last_arrival[ht] = host_last_arrival[ht].max(arrival);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push(MessageTrace {
                            from: msg.from,
                            to: msg.to,
                            bytes: msg.bytes,
                            depart: msg.depart,
                            arrival,
                            pcie_out_queue: v.last.pcie_out_queue,
                            nic_queue: v.last.nic_queue,
                            pcie_in_queue: v.last.pcie_in_queue,
                        });
                    }
                }
                None => failures.push(Failure {
                    index: i,
                    from: msg.from,
                    to: msg.to,
                    gave_up_at: v.gave_up_at.expect("no arrival implies give-up"),
                }),
            }
        }
        for dev in 0..p {
            device_done[dev] = device_done[dev].max(sender_free[dev]);
        }
        let host_wait = (0..h)
            .map(|i| host_last_arrival[i].saturating_sub(host_send_done[i]))
            .collect();
        ReliableExchange {
            outcome: ExchangeOutcome {
                device_done,
                host_wait,
                sender_free,
                total_bytes,
                num_messages: sends.len() as u64,
            },
            delivered,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_gpusim::Platform;

    fn model(n: u32) -> NetModel {
        NetModel::new(Platform::bridges(n))
    }

    fn cross_sends(n: usize) -> Vec<SendDesc> {
        (0..n)
            .map(|i| SendDesc {
                from: (i % 2) as u32,
                to: 2 + (i % 2) as u32,
                bytes: 40_000 + (i as u64) * 1_000,
                depart: SimTime::from_secs_f64(i as f64 * 1e-5),
            })
            .collect()
    }

    #[test]
    fn no_faults_is_byte_identical_to_raw_exchange() {
        let m = model(4);
        let clocks = vec![
            SimTime::from_secs_f64(1e-3),
            SimTime::from_secs_f64(2e-3),
            SimTime::ZERO,
            SimTime::from_secs_f64(5e-4),
        ];
        let sends = cross_sends(12);

        let mut raw_st = m.new_state();
        let mut raw_trace = Vec::new();
        let raw = m.exchange_with(&mut raw_st, &clocks, &sends, Some(&mut raw_trace));

        let r = ReliableNet::new(&m, FaultPlan::none(), RetryConfig::default());
        let mut st = m.new_state();
        let mut rst = ReliableState::for_devices(4);
        let mut counters = FaultCounters::default();
        let mut events = Vec::new();
        let mut trace = Vec::new();
        let rel = r.exchange_reliable(
            &mut st,
            &mut rst,
            &clocks,
            &sends,
            &[true; 4],
            &mut counters,
            &mut events,
            Some(&mut trace),
        );

        assert_eq!(format!("{raw:?}"), format!("{:?}", rel.outcome));
        assert_eq!(raw_trace, trace);
        assert!(rel.delivered.iter().all(|&d| d));
        assert!(rel.failures.is_empty());
        assert!(!counters.any());
        assert!(events.is_empty());
        // Link occupancy evolved identically too.
        assert_eq!(format!("{raw_st:?}"), format!("{st:?}"));
    }

    #[test]
    fn drops_cause_retransmits_but_everything_arrives() {
        let m = model(4);
        let plan = FaultPlan::seeded(0xFA17).with_drop(0.3);
        let r = ReliableNet::new(&m, plan, RetryConfig::default());
        let mut st = m.new_state();
        let mut rst = ReliableState::for_devices(4);
        let mut counters = FaultCounters::default();
        let mut events = Vec::new();
        let sends = cross_sends(64);
        let rel = r.exchange_reliable(
            &mut st,
            &mut rst,
            &[SimTime::ZERO; 4],
            &sends,
            &[true; 4],
            &mut counters,
            &mut events,
            None,
        );
        assert!(counters.drops_injected > 0);
        assert_eq!(counters.retransmits, counters.drops_injected);
        assert!(
            rel.failures.is_empty(),
            "30% drop with 5 retries should deliver all 64 under this seed"
        );
        assert!(rel.delivered.iter().all(|&d| d));
        // Retransmitted attempts put extra bytes on the wire.
        let logical: u64 = sends.iter().map(|s| s.bytes).sum();
        assert!(rel.outcome.total_bytes > logical);
        assert!(events.iter().any(|e| e.kind == LinkEventKind::Retransmit));
        assert!(events.iter().any(|e| e.kind == LinkEventKind::Timeout));
    }

    #[test]
    fn dead_receiver_exhausts_the_budget() {
        let m = model(4);
        let retry = RetryConfig::default();
        let r = ReliableNet::new(&m, FaultPlan::none(), retry);
        let mut st = m.new_state();
        let mut rst = ReliableState::for_devices(4);
        let mut counters = FaultCounters::default();
        let mut events = Vec::new();
        let msg = SendDesc {
            from: 0,
            to: 2,
            bytes: 1_000,
            depart: SimTime::from_secs_f64(1e-3),
        };
        let v = r.send_reliable(&mut st, &mut rst, msg, false, &mut counters, &mut events);
        assert_eq!(v.arrival, None);
        assert_eq!(v.attempts, retry.max_retries + 1);
        let gave_up = v.gave_up_at.expect("must give up");
        // Detection happens after the whole backoff ladder.
        assert!(gave_up > msg.depart + retry.give_up_after());
        assert_eq!(counters.delivery_failures, 1);
        assert_eq!(counters.timeouts as u32, retry.max_retries + 1);
        assert_eq!(counters.retransmits as u32, retry.max_retries);
        // A dead receiver is not an "injected" drop.
        assert_eq!(counters.drops_injected, 0);
        assert!(events.iter().any(|e| e.kind == LinkEventKind::GiveUp));
    }

    #[test]
    fn duplicates_are_suppressed_and_charged() {
        let m = model(4);
        let plan = FaultPlan::seeded(7).with_duplicate(0.9);
        let r = ReliableNet::new(&m, plan, RetryConfig::default());
        let mut st = m.new_state();
        let mut rst = ReliableState::for_devices(4);
        let mut counters = FaultCounters::default();
        let mut events = Vec::new();
        let sends = cross_sends(16);
        let rel = r.exchange_reliable(
            &mut st,
            &mut rst,
            &[SimTime::ZERO; 4],
            &sends,
            &[true; 4],
            &mut counters,
            &mut events,
            None,
        );
        assert!(counters.duplicates_injected > 0);
        assert_eq!(counters.duplicates_suppressed, counters.duplicates_injected);
        // Every logical message delivered exactly once.
        assert!(rel.delivered.iter().all(|&d| d));
        let logical: u64 = sends.iter().map(|s| s.bytes).sum();
        assert!(rel.outcome.total_bytes > logical, "copies occupy the wire");
    }

    #[test]
    fn delay_spikes_push_arrivals_back() {
        let m = model(4);
        let delay = 3e-3;
        let plan = FaultPlan::seeded(3).with_delay(0.999, delay);
        let r = ReliableNet::new(&m, plan, RetryConfig::default());
        let msg = SendDesc {
            from: 0,
            to: 2,
            bytes: 1_000,
            depart: SimTime::ZERO,
        };
        let raw = m.send(&mut m.new_state(), msg);
        let mut st = m.new_state();
        let mut rst = ReliableState::for_devices(4);
        let mut counters = FaultCounters::default();
        let mut events = Vec::new();
        let v = r.send_reliable(&mut st, &mut rst, msg, true, &mut counters, &mut events);
        assert_eq!(
            v.arrival.unwrap(),
            raw.arrival + SimTime::from_secs_f64(delay)
        );
        assert_eq!(counters.delays_injected, 1);
    }

    #[test]
    fn sequence_numbers_advance_per_link() {
        let mut rst = ReliableState::for_devices(3);
        assert_eq!(rst.next_seq(0, 1), 0);
        assert_eq!(rst.next_seq(0, 1), 1);
        assert_eq!(rst.next_seq(1, 0), 0, "links are independent");
        assert_eq!(rst.next_seq(0, 2), 0);
        assert_eq!(rst.next_seq(0, 1), 2);
    }
}
