//! Dense bitsets for update tracking.
//!
//! D-IrGL "tracks updates to proxies and only synchronizes the updated
//! values" (§III-D2). On the GPU this is a device-resident bitset that is
//! prefix-scanned to extract the updated values; here it is a `u64`-word
//! bitset whose extraction *cost* is charged through
//! [`dirgl_gpusim::KernelModel::scan_time`].

use serde::{Deserialize, Serialize};

/// A fixed-capacity dense bitset.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBitset {
    words: Vec<u64>,
    len: u32,
}

impl DenseBitset {
    /// An all-zero bitset over `len` positions.
    pub fn new(len: u32) -> DenseBitset {
        DenseBitset {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Zeroes everything.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Read-only view of the backing words (64 positions per word, LSB
    /// first). Exposed for rank/intersection structures layered over
    /// bitsets (see `dirgl_comm::plan::ExtractIndex`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Ascending iterator over set bit positions.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi as u32 * 64;
            BitIter { word: w, base }
        })
    }

    /// Ascending iterator over positions set in both `self` and `other` —
    /// `a ∧ b` word by word, without materializing the intersection. The
    /// cost is proportional to the word count plus the number of common
    /// bits, never to the set sizes.
    pub fn intersect_iter<'a>(&'a self, other: &'a DenseBitset) -> impl Iterator<Item = u32> + 'a {
        assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| BitIter {
                word: a & b,
                base: wi as u32 * 64,
            })
    }

    /// Ascending iterator over set positions within `range` (clamped to
    /// the bitset's capacity). Touches only the words overlapping the
    /// range.
    pub fn iter_set_in_range(&self, range: std::ops::Range<u32>) -> impl Iterator<Item = u32> + '_ {
        let lo = range.start.min(self.len);
        let hi = range.end.min(self.len);
        let (w0, w1) = if lo >= hi {
            (0, 0)
        } else {
            ((lo / 64) as usize, (hi as usize).div_ceil(64))
        };
        self.words[w0..w1]
            .iter()
            .enumerate()
            .flat_map(move |(k, &w)| {
                let base = (w0 + k) as u32 * 64;
                BitIter {
                    word: mask_word(w, base, lo, hi),
                    base,
                }
            })
    }

    /// True when any bit is set within `range` (clamped to capacity).
    /// Word-level early exit — the cheap guard in front of a range
    /// iteration.
    pub fn any_in_range(&self, range: std::ops::Range<u32>) -> bool {
        let lo = range.start.min(self.len);
        let hi = range.end.min(self.len);
        if lo >= hi {
            return false;
        }
        let (w0, w1) = ((lo / 64) as usize, (hi as usize).div_ceil(64));
        self.words[w0..w1]
            .iter()
            .enumerate()
            .any(|(k, &w)| mask_word(w, (w0 + k) as u32 * 64, lo, hi) != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DenseBitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Size on the wire: the bitset header UO messages carry.
    pub fn wire_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// Masks `word` (whose bit 0 is position `base`) down to the positions in
/// `[lo, hi)`.
#[inline]
fn mask_word(word: u64, base: u32, lo: u32, hi: u32) -> u64 {
    let mut w = word;
    if lo > base {
        w &= !0u64 << (lo - base);
    }
    if hi < base + 64 {
        w &= (1u64 << (hi - base)) - 1;
    }
    w
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = DenseBitset::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
        b.clear_all();
        assert!(b.is_empty());
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut b = DenseBitset::new(200);
        let set = [0u32, 5, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<u32> = b.iter_set().collect();
        assert_eq!(got, set);
    }

    #[test]
    fn union() {
        let mut a = DenseBitset::new(100);
        let mut b = DenseBitset::new(100);
        a.set(3);
        b.set(70);
        a.union_with(&b);
        assert!(a.get(3) && a.get(70));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn wire_bytes_rounds_up_to_words() {
        assert_eq!(DenseBitset::new(1).wire_bytes(), 8);
        assert_eq!(DenseBitset::new(64).wire_bytes(), 8);
        assert_eq!(DenseBitset::new(65).wire_bytes(), 16);
    }

    #[test]
    fn intersect_iter_matches_filtered_iteration() {
        let mut a = DenseBitset::new(300);
        let mut b = DenseBitset::new(300);
        for i in (0..300).step_by(3) {
            a.set(i);
        }
        for i in (0..300).step_by(5) {
            b.set(i);
        }
        let fast: Vec<u32> = a.intersect_iter(&b).collect();
        let slow: Vec<u32> = a.iter_set().filter(|&i| b.get(i)).collect();
        assert_eq!(fast, slow);
        assert_eq!(fast, (0..300).step_by(15).collect::<Vec<u32>>());
    }

    #[test]
    fn range_iteration_masks_both_endpoints() {
        let mut b = DenseBitset::new(200);
        for i in [0u32, 5, 63, 64, 65, 100, 127, 128, 199] {
            b.set(i);
        }
        let in_range: Vec<u32> = b.iter_set_in_range(5..128).collect();
        assert_eq!(in_range, [5, 63, 64, 65, 100, 127]);
        // Sub-word range.
        assert_eq!(b.iter_set_in_range(64..66).collect::<Vec<u32>>(), [64, 65]);
        // Empty and inverted ranges.
        assert_eq!(b.iter_set_in_range(6..6).count(), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 10..5;
        assert_eq!(b.iter_set_in_range(inverted).count(), 0);
        // Range clamped to capacity.
        assert_eq!(b.iter_set_in_range(190..999).collect::<Vec<u32>>(), [199]);
    }

    #[test]
    fn any_in_range_agrees_with_iteration() {
        let mut b = DenseBitset::new(200);
        b.set(70);
        b.set(199);
        for lo in 0..20u32 {
            for hi in 0..210u32 {
                assert_eq!(
                    b.any_in_range(lo * 10..hi),
                    b.iter_set_in_range(lo * 10..hi).next().is_some()
                );
            }
        }
    }

    #[test]
    fn zero_length_bitset() {
        let b = DenseBitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_set().count(), 0);
        assert_eq!(b.wire_bytes(), 0);
    }
}
