//! Dense bitsets for update tracking.
//!
//! D-IrGL "tracks updates to proxies and only synchronizes the updated
//! values" (§III-D2). On the GPU this is a device-resident bitset that is
//! prefix-scanned to extract the updated values; here it is a `u64`-word
//! bitset whose extraction *cost* is charged through
//! [`dirgl_gpusim::KernelModel::scan_time`].

use serde::{Deserialize, Serialize};

/// A fixed-capacity dense bitset.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBitset {
    words: Vec<u64>,
    len: u32,
}

impl DenseBitset {
    /// An all-zero bitset over `len` positions.
    pub fn new(len: u32) -> DenseBitset {
        DenseBitset {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Zeroes everything.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Ascending iterator over set bit positions.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi as u32 * 64;
            BitIter { word: w, base }
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DenseBitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Size on the wire: the bitset header UO messages carry.
    pub fn wire_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = DenseBitset::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
        b.clear_all();
        assert!(b.is_empty());
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut b = DenseBitset::new(200);
        let set = [0u32, 5, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<u32> = b.iter_set().collect();
        assert_eq!(got, set);
    }

    #[test]
    fn union() {
        let mut a = DenseBitset::new(100);
        let mut b = DenseBitset::new(100);
        a.set(3);
        b.set(70);
        a.union_with(&b);
        assert!(a.get(3) && a.get(70));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn wire_bytes_rounds_up_to_words() {
        assert_eq!(DenseBitset::new(1).wire_bytes(), 8);
        assert_eq!(DenseBitset::new(64).wire_bytes(), 8);
        assert_eq!(DenseBitset::new(65).wire_bytes(), 16);
    }

    #[test]
    fn zero_length_bitset() {
        let b = DenseBitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_set().count(), 0);
        assert_eq!(b.wire_bytes(), 0);
    }
}
