//! Dense bitsets for update tracking.
//!
//! D-IrGL "tracks updates to proxies and only synchronizes the updated
//! values" (§III-D2). On the GPU this is a device-resident bitset that is
//! prefix-scanned to extract the updated values; here it is a `u64`-word
//! bitset whose extraction *cost* is charged through
//! [`dirgl_gpusim::KernelModel::scan_time`].

use serde::{Deserialize, Serialize};

/// A fixed-capacity dense bitset.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBitset {
    words: Vec<u64>,
    len: u32,
}

impl DenseBitset {
    /// An all-zero bitset over `len` positions.
    pub fn new(len: u32) -> DenseBitset {
        DenseBitset {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Zeroes everything.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets every bit — a word fill rather than `len` single-bit writes.
    /// The tail word is masked so no position past `len` is ever set;
    /// iteration and popcount invariants rely on that.
    pub fn set_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        let tail = self.len % 64;
        if tail != 0 {
            *self.words.last_mut().unwrap() = (1u64 << tail) - 1;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Read-only view of the backing words (64 positions per word, LSB
    /// first). Exposed for rank/intersection structures layered over
    /// bitsets (see `dirgl_comm::plan::ExtractIndex`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Ascending iterator over set bit positions.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi as u32 * 64;
            BitIter { word: w, base }
        })
    }

    /// Ascending iterator over positions set in both `self` and `other` —
    /// `a ∧ b` word by word, without materializing the intersection. The
    /// cost is proportional to the word count plus the number of common
    /// bits, never to the set sizes.
    pub fn intersect_iter<'a>(&'a self, other: &'a DenseBitset) -> impl Iterator<Item = u32> + 'a {
        assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| BitIter {
                word: a & b,
                base: wi as u32 * 64,
            })
    }

    /// Ascending iterator over set positions within `range` (clamped to
    /// the bitset's capacity). Touches only the words overlapping the
    /// range.
    pub fn iter_set_in_range(&self, range: std::ops::Range<u32>) -> impl Iterator<Item = u32> + '_ {
        let lo = range.start.min(self.len);
        let hi = range.end.min(self.len);
        let (w0, w1) = if lo >= hi {
            (0, 0)
        } else {
            ((lo / 64) as usize, (hi as usize).div_ceil(64))
        };
        self.words[w0..w1]
            .iter()
            .enumerate()
            .flat_map(move |(k, &w)| {
                let base = (w0 + k) as u32 * 64;
                BitIter {
                    word: mask_word(w, base, lo, hi),
                    base,
                }
            })
    }

    /// True when any bit is set within `range` (clamped to capacity).
    /// Word-level early exit — the cheap guard in front of a range
    /// iteration.
    pub fn any_in_range(&self, range: std::ops::Range<u32>) -> bool {
        let lo = range.start.min(self.len);
        let hi = range.end.min(self.len);
        if lo >= hi {
            return false;
        }
        let (w0, w1) = ((lo / 64) as usize, (hi as usize).div_ceil(64));
        self.words[w0..w1]
            .iter()
            .enumerate()
            .any(|(k, &w)| mask_word(w, (w0 + k) as u32 * 64, lo, hi) != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DenseBitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Size on the wire: the bitset header UO messages carry.
    pub fn wire_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// A bit-matrix frontier for K-lane multi-source execution: one `u64`
/// lane word per vertex, bit `l` meaning "vertex is on lane `l`'s
/// frontier". Where [`DenseBitset`] answers "is this vertex active?",
/// `LaneFrontier` answers "on which of up to 64 concurrent traversals?"
/// — the GraphBLAST framing of K batched sources as a bit-matrix mask,
/// combined word-at-a-time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneFrontier {
    words: Vec<u64>,
    live: u64,
}

impl LaneFrontier {
    /// Maximum number of lanes packable into one vertex word.
    pub const MAX_LANES: u32 = 64;

    /// An all-empty frontier over `len` vertices and `lanes` live lanes
    /// (1 ..= 64).
    pub fn new(len: u32, lanes: u32) -> LaneFrontier {
        assert!(
            (1..=Self::MAX_LANES).contains(&lanes),
            "lanes must be 1..=64, got {lanes}"
        );
        LaneFrontier {
            words: vec![0; len as usize],
            live: live_mask(lanes),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// True when no vertex is on any lane's frontier.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The live-lane mask (low `lanes` bits set).
    #[inline]
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Vertex `v`'s lane word.
    #[inline]
    pub fn word(&self, v: u32) -> u64 {
        self.words[v as usize]
    }

    /// ORs `mask` (clamped to live lanes) into vertex `v`'s word.
    #[inline]
    pub fn or_word(&mut self, v: u32, mask: u64) {
        self.words[v as usize] |= mask & self.live;
    }

    /// Replaces vertex `v`'s word (clamped to live lanes).
    #[inline]
    pub fn set_word(&mut self, v: u32, mask: u64) {
        self.words[v as usize] = mask & self.live;
    }

    /// Puts vertex `v` on lane `l`'s frontier.
    #[inline]
    pub fn set(&mut self, v: u32, l: u32) {
        debug_assert!(1u64 << l & self.live != 0, "lane {l} not live");
        self.words[v as usize] |= 1u64 << l;
    }

    /// True when vertex `v` is on lane `l`'s frontier.
    #[inline]
    pub fn get(&self, v: u32, l: u32) -> bool {
        self.words[v as usize] >> l & 1 == 1
    }

    /// Zeroes every word.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Total (vertex, lane) memberships — the aggregated K-lane frontier
    /// size that drives the batched push/pull direction choice.
    pub fn weight(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Frontier size of one lane (column popcount).
    pub fn lane_weight(&self, l: u32) -> u64 {
        self.words.iter().filter(|&&w| w >> l & 1 == 1).count() as u64
    }

    /// Vertices active on *any* lane, in ascending order.
    pub fn iter_active(&self) -> impl Iterator<Item = u32> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(v, _)| v as u32)
    }

    /// Extracts lane `l`'s frontier as a plain [`DenseBitset`] column.
    pub fn column(&self, l: u32) -> DenseBitset {
        let mut out = DenseBitset::new(self.len());
        for (v, &w) in self.words.iter().enumerate() {
            if w >> l & 1 == 1 {
                out.set(v as u32);
            }
        }
        out
    }

    /// In-place word-at-a-time union.
    pub fn union_with(&mut self, other: &LaneFrontier) {
        assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place word-at-a-time intersection.
    pub fn intersect_with(&mut self, other: &LaneFrontier) {
        assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }
}

/// The low-`lanes` live mask shared by every K-lane structure
/// (`lanes == 64` must not overflow the shift).
#[inline]
pub fn live_mask(lanes: u32) -> u64 {
    debug_assert!((1..=64).contains(&lanes));
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Masks `word` (whose bit 0 is position `base`) down to the positions in
/// `[lo, hi)`.
#[inline]
fn mask_word(word: u64, base: u32, lo: u32, hi: u32) -> u64 {
    let mut w = word;
    if lo > base {
        w &= !0u64 << (lo - base);
    }
    if hi < base + 64 {
        w &= (1u64 << (hi - base)) - 1;
    }
    w
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = DenseBitset::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
        b.clear_all();
        assert!(b.is_empty());
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut b = DenseBitset::new(200);
        let set = [0u32, 5, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<u32> = b.iter_set().collect();
        assert_eq!(got, set);
    }

    #[test]
    fn set_all_fills_exactly_len_bits() {
        for len in [0u32, 1, 63, 64, 65, 130] {
            let mut b = DenseBitset::new(len);
            b.set_all();
            assert_eq!(b.count_ones(), len, "len {len}");
            let got: Vec<u32> = b.iter_set().collect();
            let want: Vec<u32> = (0..len).collect();
            assert_eq!(got, want, "len {len}");
        }
    }

    #[test]
    fn union() {
        let mut a = DenseBitset::new(100);
        let mut b = DenseBitset::new(100);
        a.set(3);
        b.set(70);
        a.union_with(&b);
        assert!(a.get(3) && a.get(70));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn wire_bytes_rounds_up_to_words() {
        assert_eq!(DenseBitset::new(1).wire_bytes(), 8);
        assert_eq!(DenseBitset::new(64).wire_bytes(), 8);
        assert_eq!(DenseBitset::new(65).wire_bytes(), 16);
    }

    #[test]
    fn intersect_iter_matches_filtered_iteration() {
        let mut a = DenseBitset::new(300);
        let mut b = DenseBitset::new(300);
        for i in (0..300).step_by(3) {
            a.set(i);
        }
        for i in (0..300).step_by(5) {
            b.set(i);
        }
        let fast: Vec<u32> = a.intersect_iter(&b).collect();
        let slow: Vec<u32> = a.iter_set().filter(|&i| b.get(i)).collect();
        assert_eq!(fast, slow);
        assert_eq!(fast, (0..300).step_by(15).collect::<Vec<u32>>());
    }

    #[test]
    fn range_iteration_masks_both_endpoints() {
        let mut b = DenseBitset::new(200);
        for i in [0u32, 5, 63, 64, 65, 100, 127, 128, 199] {
            b.set(i);
        }
        let in_range: Vec<u32> = b.iter_set_in_range(5..128).collect();
        assert_eq!(in_range, [5, 63, 64, 65, 100, 127]);
        // Sub-word range.
        assert_eq!(b.iter_set_in_range(64..66).collect::<Vec<u32>>(), [64, 65]);
        // Empty and inverted ranges.
        assert_eq!(b.iter_set_in_range(6..6).count(), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 10..5;
        assert_eq!(b.iter_set_in_range(inverted).count(), 0);
        // Range clamped to capacity.
        assert_eq!(b.iter_set_in_range(190..999).collect::<Vec<u32>>(), [199]);
    }

    #[test]
    fn any_in_range_agrees_with_iteration() {
        let mut b = DenseBitset::new(200);
        b.set(70);
        b.set(199);
        for lo in 0..20u32 {
            for hi in 0..210u32 {
                assert_eq!(
                    b.any_in_range(lo * 10..hi),
                    b.iter_set_in_range(lo * 10..hi).next().is_some()
                );
            }
        }
    }

    #[test]
    fn lane_frontier_words_and_columns_agree() {
        let mut lf = LaneFrontier::new(100, 3);
        lf.set(5, 0);
        lf.set(5, 2);
        lf.set(70, 1);
        lf.or_word(70, 0b101);
        assert_eq!(lf.word(5), 0b101);
        assert_eq!(lf.word(70), 0b111);
        assert!(lf.get(5, 0) && !lf.get(5, 1) && lf.get(5, 2));
        assert_eq!(lf.weight(), 5);
        assert_eq!(lf.lane_weight(0), 2);
        assert_eq!(lf.lane_weight(1), 1);
        assert_eq!(lf.iter_active().collect::<Vec<u32>>(), [5, 70]);
        let col0 = lf.column(0);
        assert!(col0.get(5) && col0.get(70) && !col0.get(6));
        assert_eq!(col0.count_ones(), 2);
    }

    #[test]
    fn lane_frontier_clamps_to_live_lanes() {
        let mut lf = LaneFrontier::new(10, 2);
        lf.or_word(3, u64::MAX);
        assert_eq!(lf.word(3), 0b11);
        lf.set_word(3, 0b1000_0001);
        assert_eq!(lf.word(3), 0b01);
        assert_eq!(LaneFrontier::new(10, 64).live(), u64::MAX);
        assert_eq!(LaneFrontier::new(10, 1).live(), 1);
    }

    #[test]
    fn lane_frontier_set_algebra() {
        let mut a = LaneFrontier::new(8, 64);
        let mut b = LaneFrontier::new(8, 64);
        a.or_word(1, 0b0110);
        b.or_word(1, 0b0011);
        b.or_word(2, 0b1000);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.word(1), 0b0111);
        assert_eq!(u.word(2), 0b1000);
        a.intersect_with(&b);
        assert_eq!(a.word(1), 0b0010);
        assert_eq!(a.word(2), 0);
        assert!(!u.is_empty());
        u.clear_all();
        assert!(u.is_empty());
    }

    #[test]
    fn live_mask_covers_full_range() {
        assert_eq!(live_mask(1), 1);
        assert_eq!(live_mask(3), 0b111);
        assert_eq!(live_mask(64), u64::MAX);
    }

    #[test]
    fn zero_length_bitset() {
        let b = DenseBitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_set().count(), 0);
        assert_eq!(b.wire_bytes(), 0);
    }
}
