//! Gluon-style communication substrate (§III-D of the paper).
//!
//! Responsibilities:
//!
//! * [`clock`] — deterministic virtual time ([`SimTime`]);
//! * [`bitset`] — dense update-tracking bitsets (the UO optimization's
//!   data structure) with a modelled GPU prefix-scan extraction cost;
//! * [`message`] — message size accounting for the AS (all-shared) and UO
//!   (updated-only) modes, including the memoized-order encoding that
//!   elides global ids (§III-D2);
//! * [`plan`] — the synchronization planner: which link entries
//!   participate in the mirror→master *reduce* and master→mirror
//!   *broadcast*, derived purely from the partition's structure so the
//!   paper's per-policy elisions (OEC skips broadcast, IEC skips reduce,
//!   CVC stays inside grid rows/columns) emerge rather than being
//!   special-cased;
//! * [`net`] — the virtual-time transport simulator producing the
//!   Max Compute / Min Wait / Device Comm. decomposition of Figs. 4–6/8–9;
//! * [`faults`] — seeded, deterministic fault schedules (link drop /
//!   duplication / delay, device crash / straggler);
//! * [`reliable`] — retry/ack reliable delivery layered over [`net`]:
//!   per-link sequence numbers, exponential-backoff retransmission with a
//!   bounded budget, duplicate suppression. Byte-identical to the raw
//!   transport when no faults are scheduled.

pub mod bitset;
pub mod clock;
pub mod faults;
pub mod message;
pub mod net;
pub mod plan;
pub mod reliable;

pub use bitset::{live_mask, DenseBitset, LaneFrontier};
pub use clock::SimTime;
pub use faults::{
    CrashSpec, FaultCounters, FaultInjector, FaultPlan, LinkFate, RetryConfig, StragglerSpec,
};
pub use message::{as_message_bytes, message_bytes_sized, uo_message_bytes, CommMode, VAL_BYTES};
pub use net::{Delivery, ExchangeOutcome, MessageTrace, NetModel, NetState, SendDesc};
pub use plan::{ExtractIndex, SyncPlan};
pub use reliable::{
    Failure, LinkEvent, LinkEventKind, ReliableExchange, ReliableNet, ReliableState, SendVerdict,
};
