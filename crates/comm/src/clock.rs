//! Deterministic virtual time.
//!
//! All simulated durations are tracked in integer nanoseconds so event
//! ordering in the BASP discrete-event driver is exact and reproducible
//! across runs and platforms (no float accumulation drift in comparisons).

use serde::{Deserialize, Serialize};

/// A point (or span) of simulated time, nanosecond resolution.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from seconds (rounds to nanoseconds; negatives clamp to 0).
    pub fn from_secs_f64(s: f64) -> SimTime {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// As floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_arithmetic() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(t + SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(2.0));
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime(5).saturating_sub(SimTime(9)), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_secs_f64(1e-9);
        let b = SimTime::from_secs_f64(2e-9);
        assert!(a < b);
        let s: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(s, SimTime(5));
    }
}
