//! Virtual-time transport.
//!
//! Every message between two devices follows the path the paper describes
//! (§III-D): sender GPU → sender host over PCIe, sender host → receiver
//! host over the network (hosts "act as a router for the device"), receiver
//! host → receiver GPU over PCIe. Links serialize: a device's PCIe lane and
//! a host's NIC process one message at a time, which is what makes partner
//! count (and therefore CVC's restricted partner sets) matter beyond raw
//! volume.
//!
//! The optional [`NetModel::direct_device`] flag models the paper's
//! conclusion-section recommendation — NVIDIA GPUDirect — by skipping the
//! host staging hops; an ablation benchmark quantifies its effect.

use serde::{Deserialize, Serialize};

use dirgl_gpusim::Platform;

use crate::clock::SimTime;

/// One message to be injected into the network.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SendDesc {
    /// Sending device.
    pub from: u32,
    /// Receiving device.
    pub to: u32,
    /// Wire size in (paper-equivalent) bytes.
    pub bytes: u64,
    /// Virtual time at which the sender device has the payload ready.
    pub depart: SimTime,
}

/// Mutable link-occupancy state, persistent across rounds.
#[derive(Clone, Debug)]
pub struct NetState {
    pcie_out_free: Vec<SimTime>,
    pcie_in_free: Vec<SimTime>,
    nic_free: Vec<SimTime>,
}

impl NetState {
    /// Fresh idle state for `num_devices` devices on `num_hosts` hosts.
    pub fn new(num_devices: u32, num_hosts: u32) -> NetState {
        NetState {
            pcie_out_free: vec![SimTime::ZERO; num_devices as usize],
            pcie_in_free: vec![SimTime::ZERO; num_devices as usize],
            nic_free: vec![SimTime::ZERO; num_hosts as usize],
        }
    }
}

/// Result of delivering one message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// When the payload is applied on the receiving device.
    pub arrival: SimTime,
    /// When the sending *device* is done with its part (PCIe upload done) —
    /// the device is free to compute again after this.
    pub sender_free: SimTime,
    /// When the sending *host* finished pushing the message into the
    /// network (NIC occupancy end).
    pub host_send_done: SimTime,
}

/// Timing model bound to one platform.
#[derive(Clone, Debug)]
pub struct NetModel {
    platform: Platform,
    /// Model GPUDirect: device↔device transfers bypass host staging.
    pub direct_device: bool,
}

/// Aggregate outcome of a whole exchange phase (BSP use).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExchangeOutcome {
    /// Per device: when all its inbound payloads are applied (its own clock
    /// if it receives nothing).
    pub device_done: Vec<SimTime>,
    /// Per host: blocked time between finishing its sends and the last
    /// inbound arrival.
    pub host_wait: Vec<SimTime>,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Number of messages.
    pub num_messages: u64,
}

impl NetModel {
    /// Creates the model (host-staged transfers, as all frameworks in the
    /// paper do).
    pub fn new(platform: Platform) -> NetModel {
        NetModel { platform, direct_device: false }
    }

    /// The platform this model times.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Fresh link state for this platform.
    pub fn new_state(&self) -> NetState {
        NetState::new(self.platform.num_devices(), self.platform.num_hosts())
    }

    /// Delivers one message, updating link occupancy.
    pub fn send(&self, st: &mut NetState, msg: SendDesc) -> Delivery {
        let c = &self.platform.cluster;
        let pcie = |bytes: u64| SimTime::from_secs_f64(c.pcie_latency + bytes as f64 / c.pcie_bandwidth);
        let (hf, ht) = (self.platform.host_of(msg.from), self.platform.host_of(msg.to));

        if self.direct_device {
            // GPUDirect P2P / RDMA: one hop, no host staging.
            if hf == ht {
                let arrival = msg.depart + pcie(msg.bytes);
                return Delivery { arrival, sender_free: arrival, host_send_done: arrival };
            }
            let nic = &mut st.nic_free[hf as usize];
            let start = msg.depart.max(*nic);
            let done = start
                + SimTime::from_secs_f64(c.msg_overhead + msg.bytes as f64 / c.net_bandwidth);
            *nic = done;
            let arrival = done + SimTime::from_secs_f64(c.net_latency);
            return Delivery { arrival, sender_free: done, host_send_done: done };
        }

        // Hop 1: device -> host over the sender's PCIe lane.
        let out = &mut st.pcie_out_free[msg.from as usize];
        let up_start = msg.depart.max(*out);
        let up_done = up_start + pcie(msg.bytes);
        *out = up_done;

        // Hop 2: host -> host (skipped within a host: staged in pinned
        // host memory, which hop 1/3 already price).
        let (at_recv_host, host_send_done) = if hf == ht {
            (up_done, up_done)
        } else {
            let nic = &mut st.nic_free[hf as usize];
            let start = up_done.max(*nic);
            let done = start
                + SimTime::from_secs_f64(c.msg_overhead + msg.bytes as f64 / c.net_bandwidth);
            *nic = done;
            (done + SimTime::from_secs_f64(c.net_latency), done)
        };

        // Hop 3: host -> device over the receiver's PCIe lane.
        let inl = &mut st.pcie_in_free[msg.to as usize];
        let down_start = at_recv_host.max(*inl);
        let down_done = down_start + pcie(msg.bytes);
        *inl = down_done;

        Delivery { arrival: down_done, sender_free: up_done, host_send_done }
    }

    /// Runs a whole barrier-style exchange (all messages known up front) and
    /// summarizes it per device/host — the BSP communication phase.
    pub fn exchange(&self, device_clock: &[SimTime], sends: &[SendDesc]) -> ExchangeOutcome {
        let p = self.platform.num_devices() as usize;
        let h = self.platform.num_hosts() as usize;
        let mut st = self.new_state();
        // Link state starts at each device's clock implicitly via depart.
        let mut device_done: Vec<SimTime> = device_clock.to_vec();
        let mut host_send_done: Vec<SimTime> =
            (0..h).map(|i| host_work_floor(&self.platform, device_clock, i as u32)).collect();
        let mut host_last_arrival: Vec<SimTime> = vec![SimTime::ZERO; h];
        let mut sender_free: Vec<SimTime> = device_clock.to_vec();
        let mut total_bytes = 0u64;

        // Deterministic service order: by departure, then endpoints.
        let mut order: Vec<&SendDesc> = sends.iter().collect();
        order.sort_by_key(|m| (m.depart, m.from, m.to));

        for msg in order {
            let d = self.send(&mut st, *msg);
            total_bytes += msg.bytes;
            let hf = self.platform.host_of(msg.from) as usize;
            let ht = self.platform.host_of(msg.to) as usize;
            device_done[msg.to as usize] = device_done[msg.to as usize].max(d.arrival);
            sender_free[msg.from as usize] = sender_free[msg.from as usize].max(d.sender_free);
            host_send_done[hf] = host_send_done[hf].max(d.host_send_done);
            host_last_arrival[ht] = host_last_arrival[ht].max(d.arrival);
        }
        // A sender is not "done" until its uploads finish even if it
        // receives nothing.
        for dev in 0..p {
            device_done[dev] = device_done[dev].max(sender_free[dev]);
        }
        let host_wait = (0..h)
            .map(|i| host_last_arrival[i].saturating_sub(host_send_done[i]))
            .collect();
        ExchangeOutcome {
            device_done,
            host_wait,
            total_bytes,
            num_messages: sends.len() as u64,
        }
    }
}

/// The earliest a host can be considered "done with its own work": the
/// latest compute-finish among its devices.
fn host_work_floor(platform: &Platform, device_clock: &[SimTime], host: u32) -> SimTime {
    (0..platform.num_devices())
        .filter(|&d| platform.host_of(d) == host)
        .map(|d| device_clock[d as usize])
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: u32) -> NetModel {
        NetModel::new(Platform::bridges(n))
    }

    #[test]
    fn single_message_path_times_add_up() {
        let m = model(4);
        let mut st = m.new_state();
        let c = m.platform().cluster;
        // Cross-host: device 0 (host 0) -> device 2 (host 1).
        let d = m.send(
            &mut st,
            SendDesc { from: 0, to: 2, bytes: 1_000_000, depart: SimTime::ZERO },
        );
        let pcie = c.pcie_latency + 1e6 / c.pcie_bandwidth;
        let net = c.msg_overhead + 1e6 / c.net_bandwidth + c.net_latency;
        let expect = 2.0 * pcie + net;
        assert!((d.arrival.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn same_host_skips_the_nic() {
        let m = model(4);
        let mut st1 = m.new_state();
        let mut st2 = m.new_state();
        let same = m.send(
            &mut st1,
            SendDesc { from: 0, to: 1, bytes: 1_000_000, depart: SimTime::ZERO },
        );
        let cross = m.send(
            &mut st2,
            SendDesc { from: 0, to: 2, bytes: 1_000_000, depart: SimTime::ZERO },
        );
        assert!(same.arrival < cross.arrival);
    }

    #[test]
    fn nic_serializes_messages() {
        let m = model(8);
        let mut st = m.new_state();
        let a = m.send(&mut st, SendDesc { from: 0, to: 2, bytes: 10_000_000, depart: SimTime::ZERO });
        // Second message from the same host must queue behind the first on
        // the NIC even though it comes from the other device.
        let b = m.send(&mut st, SendDesc { from: 1, to: 4, bytes: 10_000_000, depart: SimTime::ZERO });
        assert!(b.host_send_done > a.host_send_done);
        assert!(b.arrival > a.arrival);
    }

    #[test]
    fn gpudirect_is_faster() {
        let mut m = model(4);
        let msg = SendDesc { from: 0, to: 2, bytes: 4_000_000, depart: SimTime::ZERO };
        let staged = m.send(&mut m.new_state(), msg);
        m.direct_device = true;
        let direct = m.send(&mut m.new_state(), msg);
        assert!(direct.arrival < staged.arrival);
    }

    #[test]
    fn exchange_reports_waits_and_volume() {
        let m = model(4);
        let clocks = vec![SimTime::ZERO; 4];
        let sends = vec![
            SendDesc { from: 0, to: 2, bytes: 1_000_000, depart: SimTime::ZERO },
            SendDesc { from: 2, to: 0, bytes: 8_000_000, depart: SimTime::ZERO },
        ];
        let out = m.exchange(&clocks, &sends);
        assert_eq!(out.total_bytes, 9_000_000);
        assert_eq!(out.num_messages, 2);
        // Host 0 receives the big message: it waits longer than host 1.
        assert!(out.host_wait[0] > out.host_wait[1]);
        assert!(out.device_done[0] > out.device_done[1]);
    }

    #[test]
    fn exchange_with_no_messages_is_instant() {
        let m = model(2);
        let clocks = vec![SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(2.0)];
        let out = m.exchange(&clocks, &[]);
        assert_eq!(out.device_done, clocks);
        assert_eq!(out.total_bytes, 0);
        assert!(out.host_wait.iter().all(|&w| w == SimTime::ZERO));
    }

    #[test]
    fn more_partners_cost_more_overhead_at_equal_volume() {
        // Same volume split over 1 vs 7 partners from one host: the
        // per-message overhead makes many partners slower.
        let m = model(16);
        let clocks = vec![SimTime::ZERO; 16];
        let one = m.exchange(
            &clocks,
            &[SendDesc { from: 0, to: 14, bytes: 700_000, depart: SimTime::ZERO }],
        );
        let many: Vec<SendDesc> = (1..8)
            .map(|i| SendDesc { from: 0, to: 2 * i + 1, bytes: 100_000, depart: SimTime::ZERO })
            .collect();
        let spread = m.exchange(&clocks, &many);
        let t1 = one.device_done.iter().max().unwrap().as_secs_f64();
        let t7 = spread.device_done.iter().max().unwrap().as_secs_f64();
        assert!(t7 > t1, "one={t1} seven={t7}");
    }
}
