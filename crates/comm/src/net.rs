//! Virtual-time transport.
//!
//! Every message between two devices follows the path the paper describes
//! (§III-D): sender GPU → sender host over PCIe, sender host → receiver
//! host over the network (hosts "act as a router for the device"), receiver
//! host → receiver GPU over PCIe. Links serialize: a device's PCIe lane and
//! a host's NIC process one message at a time, which is what makes partner
//! count (and therefore CVC's restricted partner sets) matter beyond raw
//! volume.
//!
//! The optional [`NetModel::direct_device`] flag models the paper's
//! conclusion-section recommendation — NVIDIA GPUDirect — by skipping the
//! host staging hops; an ablation benchmark quantifies its effect.

use serde::{Deserialize, Serialize};

use dirgl_gpusim::Platform;

use crate::clock::SimTime;

/// One message to be injected into the network.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SendDesc {
    /// Sending device.
    pub from: u32,
    /// Receiving device.
    pub to: u32,
    /// Wire size in (paper-equivalent) bytes.
    pub bytes: u64,
    /// Virtual time at which the sender device has the payload ready.
    pub depart: SimTime,
}

/// Mutable link-occupancy state.
///
/// Persistence is the *caller's* choice: the engines thread one `NetState`
/// through every exchange of a run (so a NIC still draining round `k`
/// delays round `k+1`, as real hardware does), while the stateless
/// [`NetModel::exchange`] convenience starts fresh each call for isolated
/// what-if timing. See `state_persists_across_exchanges` for the pinned
/// semantics.
#[derive(Clone, Debug)]
pub struct NetState {
    pcie_out_free: Vec<SimTime>,
    pcie_in_free: Vec<SimTime>,
    nic_free: Vec<SimTime>,
}

impl NetState {
    /// Fresh idle state for `num_devices` devices on `num_hosts` hosts.
    pub fn new(num_devices: u32, num_hosts: u32) -> NetState {
        NetState {
            pcie_out_free: vec![SimTime::ZERO; num_devices as usize],
            pcie_in_free: vec![SimTime::ZERO; num_devices as usize],
            nic_free: vec![SimTime::ZERO; num_hosts as usize],
        }
    }

    /// Shifts every link-free time forward by `dt`. Used when a
    /// checkpointed state is restored at a later point in simulated time:
    /// occupancy that was `x` seconds in the snapshot's future stays `x`
    /// seconds in the resumed run's future.
    pub fn shift(&mut self, dt: SimTime) {
        for t in self
            .pcie_out_free
            .iter_mut()
            .chain(self.pcie_in_free.iter_mut())
            .chain(self.nic_free.iter_mut())
        {
            *t += dt;
        }
    }
}

/// Result of delivering one message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// When the payload is applied on the receiving device.
    pub arrival: SimTime,
    /// When the sending *device* is done with its part (PCIe upload done) —
    /// the device is free to compute again after this.
    pub sender_free: SimTime,
    /// When the sending *host* finished pushing the message into the
    /// network (NIC occupancy end).
    pub host_send_done: SimTime,
    /// Time the message queued behind earlier traffic on the sender's PCIe
    /// lane before its upload started.
    pub pcie_out_queue: SimTime,
    /// Time the message queued behind earlier traffic on the sending
    /// host's NIC (zero for same-host transfers).
    pub nic_queue: SimTime,
    /// Time the message queued behind earlier traffic on the receiver's
    /// PCIe lane before its download started.
    pub pcie_in_queue: SimTime,
}

/// One message's full timing, reported by
/// [`NetModel::exchange_with`] when the caller asks for per-message
/// attribution — this is what lets a trace say *which link* a device's
/// wait time queued on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageTrace {
    /// Sending device.
    pub from: u32,
    /// Receiving device.
    pub to: u32,
    /// Wire bytes.
    pub bytes: u64,
    /// When the sender had the payload ready.
    pub depart: SimTime,
    /// When the payload was applied on the receiver.
    pub arrival: SimTime,
    /// Queueing delay on the sender's PCIe lane.
    pub pcie_out_queue: SimTime,
    /// Queueing delay on the sending host's NIC.
    pub nic_queue: SimTime,
    /// Queueing delay on the receiver's PCIe lane.
    pub pcie_in_queue: SimTime,
}

/// Timing model bound to one platform.
#[derive(Clone, Debug)]
pub struct NetModel {
    platform: Platform,
    /// Model GPUDirect: device↔device transfers bypass host staging.
    pub direct_device: bool,
}

/// Aggregate outcome of a whole exchange phase (BSP use).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExchangeOutcome {
    /// Per device: when all its inbound payloads are applied (its own clock
    /// if it receives nothing).
    pub device_done: Vec<SimTime>,
    /// Per host: blocked time between finishing its sends and the last
    /// inbound arrival.
    pub host_wait: Vec<SimTime>,
    /// Per device: when its last outbound upload left its PCIe lane (its
    /// own clock if it sends nothing). `device_done[d] - sender_free[d]`
    /// is the time device `d` spent blocked on *inbound* traffic.
    pub sender_free: Vec<SimTime>,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Number of messages.
    pub num_messages: u64,
}

impl ExchangeOutcome {
    /// The exchange's makespan: the latest per-device done time, or
    /// [`SimTime::ZERO`] when there are no devices. Callers used to take
    /// `device_done.iter().max().unwrap()`, which panics the whole process
    /// on a zero-device outcome — a resident server cannot afford that, so
    /// the empty case is defined here instead of unwrapped at every site.
    pub fn makespan(&self) -> SimTime {
        self.device_done
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

impl NetModel {
    /// Creates the model (host-staged transfers, as all frameworks in the
    /// paper do).
    pub fn new(platform: Platform) -> NetModel {
        NetModel {
            platform,
            direct_device: false,
        }
    }

    /// The platform this model times.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Fresh link state for this platform.
    pub fn new_state(&self) -> NetState {
        NetState::new(self.platform.num_devices(), self.platform.num_hosts())
    }

    /// Delivers one message, updating link occupancy.
    pub fn send(&self, st: &mut NetState, msg: SendDesc) -> Delivery {
        let c = &self.platform.cluster;
        let pcie =
            |bytes: u64| SimTime::from_secs_f64(c.pcie_latency + bytes as f64 / c.pcie_bandwidth);
        let (hf, ht) = (
            self.platform.host_of(msg.from),
            self.platform.host_of(msg.to),
        );

        if self.direct_device {
            // GPUDirect P2P / RDMA: one hop, no host staging.
            if hf == ht {
                let arrival = msg.depart + pcie(msg.bytes);
                return Delivery {
                    arrival,
                    sender_free: arrival,
                    host_send_done: arrival,
                    pcie_out_queue: SimTime::ZERO,
                    nic_queue: SimTime::ZERO,
                    pcie_in_queue: SimTime::ZERO,
                };
            }
            let nic = &mut st.nic_free[hf as usize];
            let start = msg.depart.max(*nic);
            let nic_queue = start.saturating_sub(msg.depart);
            let done =
                start + SimTime::from_secs_f64(c.msg_overhead + msg.bytes as f64 / c.net_bandwidth);
            *nic = done;
            let arrival = done + SimTime::from_secs_f64(c.net_latency);
            return Delivery {
                arrival,
                sender_free: done,
                host_send_done: done,
                pcie_out_queue: SimTime::ZERO,
                nic_queue,
                pcie_in_queue: SimTime::ZERO,
            };
        }

        // Hop 1: device -> host over the sender's PCIe lane.
        let out = &mut st.pcie_out_free[msg.from as usize];
        let up_start = msg.depart.max(*out);
        let pcie_out_queue = up_start.saturating_sub(msg.depart);
        let up_done = up_start + pcie(msg.bytes);
        *out = up_done;

        // Hop 2: host -> host (skipped within a host: staged in pinned
        // host memory, which hop 1/3 already price).
        let (at_recv_host, host_send_done, nic_queue) = if hf == ht {
            (up_done, up_done, SimTime::ZERO)
        } else {
            let nic = &mut st.nic_free[hf as usize];
            let start = up_done.max(*nic);
            let nic_queue = start.saturating_sub(up_done);
            let done =
                start + SimTime::from_secs_f64(c.msg_overhead + msg.bytes as f64 / c.net_bandwidth);
            *nic = done;
            (
                done + SimTime::from_secs_f64(c.net_latency),
                done,
                nic_queue,
            )
        };

        // Hop 3: host -> device over the receiver's PCIe lane.
        let inl = &mut st.pcie_in_free[msg.to as usize];
        let down_start = at_recv_host.max(*inl);
        let pcie_in_queue = down_start.saturating_sub(at_recv_host);
        let down_done = down_start + pcie(msg.bytes);
        *inl = down_done;

        Delivery {
            arrival: down_done,
            sender_free: up_done,
            host_send_done,
            pcie_out_queue,
            nic_queue,
            pcie_in_queue,
        }
    }

    /// Runs a whole barrier-style exchange with *fresh* link state — an
    /// isolated what-if measurement. The engines use
    /// [`NetModel::exchange_with`] instead so congestion carries across
    /// rounds.
    pub fn exchange(&self, device_clock: &[SimTime], sends: &[SendDesc]) -> ExchangeOutcome {
        self.exchange_with(&mut self.new_state(), device_clock, sends, None)
    }

    /// Runs a whole barrier-style exchange (all messages known up front)
    /// against *caller-owned* link state and summarizes it per device/host
    /// — the BSP communication phase. Link occupancy left in `st` by
    /// earlier exchanges delays this one and vice versa. When `trace` is
    /// given, one [`MessageTrace`] per send is appended, attributing each
    /// message's queueing to the PCIe lanes and NIC it crossed.
    pub fn exchange_with(
        &self,
        st: &mut NetState,
        device_clock: &[SimTime],
        sends: &[SendDesc],
        mut trace: Option<&mut Vec<MessageTrace>>,
    ) -> ExchangeOutcome {
        let p = self.platform.num_devices() as usize;
        let h = self.platform.num_hosts() as usize;
        let mut device_done: Vec<SimTime> = device_clock.to_vec();
        let mut host_send_done: Vec<SimTime> = (0..h)
            .map(|i| host_work_floor(&self.platform, device_clock, i as u32))
            .collect();
        let mut host_last_arrival: Vec<SimTime> = vec![SimTime::ZERO; h];
        let mut sender_free: Vec<SimTime> = device_clock.to_vec();
        let mut total_bytes = 0u64;

        // Deterministic service order: by departure, then endpoints.
        let mut order: Vec<&SendDesc> = sends.iter().collect();
        order.sort_by_key(|m| (m.depart, m.from, m.to));

        for msg in order {
            let d = self.send(st, *msg);
            total_bytes += msg.bytes;
            let hf = self.platform.host_of(msg.from) as usize;
            let ht = self.platform.host_of(msg.to) as usize;
            device_done[msg.to as usize] = device_done[msg.to as usize].max(d.arrival);
            sender_free[msg.from as usize] = sender_free[msg.from as usize].max(d.sender_free);
            host_send_done[hf] = host_send_done[hf].max(d.host_send_done);
            host_last_arrival[ht] = host_last_arrival[ht].max(d.arrival);
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(MessageTrace {
                    from: msg.from,
                    to: msg.to,
                    bytes: msg.bytes,
                    depart: msg.depart,
                    arrival: d.arrival,
                    pcie_out_queue: d.pcie_out_queue,
                    nic_queue: d.nic_queue,
                    pcie_in_queue: d.pcie_in_queue,
                });
            }
        }
        // A sender is not "done" until its uploads finish even if it
        // receives nothing.
        for dev in 0..p {
            device_done[dev] = device_done[dev].max(sender_free[dev]);
        }
        let host_wait = (0..h)
            .map(|i| host_last_arrival[i].saturating_sub(host_send_done[i]))
            .collect();
        ExchangeOutcome {
            device_done,
            host_wait,
            sender_free,
            total_bytes,
            num_messages: sends.len() as u64,
        }
    }
}

/// The earliest a host can be considered "done with its own work": the
/// latest compute-finish among its devices.
pub(crate) fn host_work_floor(platform: &Platform, device_clock: &[SimTime], host: u32) -> SimTime {
    (0..platform.num_devices())
        .filter(|&d| platform.host_of(d) == host)
        .map(|d| device_clock[d as usize])
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: u32) -> NetModel {
        NetModel::new(Platform::bridges(n))
    }

    #[test]
    fn single_message_path_times_add_up() {
        let m = model(4);
        let mut st = m.new_state();
        let c = m.platform().cluster;
        // Cross-host: device 0 (host 0) -> device 2 (host 1).
        let d = m.send(
            &mut st,
            SendDesc {
                from: 0,
                to: 2,
                bytes: 1_000_000,
                depart: SimTime::ZERO,
            },
        );
        let pcie = c.pcie_latency + 1e6 / c.pcie_bandwidth;
        let net = c.msg_overhead + 1e6 / c.net_bandwidth + c.net_latency;
        let expect = 2.0 * pcie + net;
        assert!((d.arrival.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn same_host_skips_the_nic() {
        let m = model(4);
        let mut st1 = m.new_state();
        let mut st2 = m.new_state();
        let same = m.send(
            &mut st1,
            SendDesc {
                from: 0,
                to: 1,
                bytes: 1_000_000,
                depart: SimTime::ZERO,
            },
        );
        let cross = m.send(
            &mut st2,
            SendDesc {
                from: 0,
                to: 2,
                bytes: 1_000_000,
                depart: SimTime::ZERO,
            },
        );
        assert!(same.arrival < cross.arrival);
    }

    #[test]
    fn nic_serializes_messages() {
        let m = model(8);
        let mut st = m.new_state();
        let a = m.send(
            &mut st,
            SendDesc {
                from: 0,
                to: 2,
                bytes: 10_000_000,
                depart: SimTime::ZERO,
            },
        );
        // Second message from the same host must queue behind the first on
        // the NIC even though it comes from the other device.
        let b = m.send(
            &mut st,
            SendDesc {
                from: 1,
                to: 4,
                bytes: 10_000_000,
                depart: SimTime::ZERO,
            },
        );
        assert!(b.host_send_done > a.host_send_done);
        assert!(b.arrival > a.arrival);
    }

    #[test]
    fn gpudirect_is_faster() {
        let mut m = model(4);
        let msg = SendDesc {
            from: 0,
            to: 2,
            bytes: 4_000_000,
            depart: SimTime::ZERO,
        };
        let staged = m.send(&mut m.new_state(), msg);
        m.direct_device = true;
        let direct = m.send(&mut m.new_state(), msg);
        assert!(direct.arrival < staged.arrival);
    }

    #[test]
    fn exchange_reports_waits_and_volume() {
        let m = model(4);
        let clocks = vec![SimTime::ZERO; 4];
        let sends = vec![
            SendDesc {
                from: 0,
                to: 2,
                bytes: 1_000_000,
                depart: SimTime::ZERO,
            },
            SendDesc {
                from: 2,
                to: 0,
                bytes: 8_000_000,
                depart: SimTime::ZERO,
            },
        ];
        let out = m.exchange(&clocks, &sends);
        assert_eq!(out.total_bytes, 9_000_000);
        assert_eq!(out.num_messages, 2);
        // Host 0 receives the big message: it waits longer than host 1.
        assert!(out.host_wait[0] > out.host_wait[1]);
        assert!(out.device_done[0] > out.device_done[1]);
    }

    #[test]
    fn exchange_with_no_messages_is_instant() {
        let m = model(2);
        let clocks = vec![SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(2.0)];
        let out = m.exchange(&clocks, &[]);
        assert_eq!(out.device_done, clocks);
        assert_eq!(out.total_bytes, 0);
        assert!(out.host_wait.iter().all(|&w| w == SimTime::ZERO));
    }

    #[test]
    fn state_persists_across_exchanges() {
        // Pinned semantics: `exchange_with` leaves link occupancy in the
        // caller's state, so a second exchange queues behind the first;
        // `exchange` starts fresh every call and never sees the backlog.
        let m = model(4);
        let clocks = vec![SimTime::ZERO; 4];
        let sends = vec![SendDesc {
            from: 0,
            to: 2,
            bytes: 50_000_000,
            depart: SimTime::ZERO,
        }];

        let mut st = m.new_state();
        let first = m.exchange_with(&mut st, &clocks, &sends, None);
        let second = m.exchange_with(&mut st, &clocks, &sends, None);
        assert!(
            second.device_done[2] > first.device_done[2],
            "second exchange must queue behind the first's link occupancy"
        );

        // The stateless convenience is unaffected by prior traffic.
        let isolated = m.exchange(&clocks, &sends);
        assert_eq!(isolated.device_done[2], first.device_done[2]);
        let again = m.exchange(&clocks, &sends);
        assert_eq!(again.device_done[2], first.device_done[2]);
    }

    #[test]
    fn exchange_reports_sender_free_and_inbound_wait() {
        let m = model(4);
        let clocks = vec![SimTime::ZERO; 4];
        // Device 0 sends a small message and receives a big one: its
        // inbound wait (device_done - sender_free) must be positive, and
        // its sender_free must come well before the big arrival.
        let sends = vec![
            SendDesc {
                from: 0,
                to: 2,
                bytes: 1_000,
                depart: SimTime::ZERO,
            },
            SendDesc {
                from: 2,
                to: 0,
                bytes: 20_000_000,
                depart: SimTime::ZERO,
            },
        ];
        let out = m.exchange(&clocks, &sends);
        let wait0 = out.device_done[0].saturating_sub(out.sender_free[0]);
        assert!(wait0 > SimTime::ZERO);
        assert!(out.sender_free[0] < out.device_done[0]);
        // A device that neither sends nor receives keeps its clock.
        assert_eq!(out.sender_free[1], SimTime::ZERO);
        assert_eq!(out.device_done[1], SimTime::ZERO);
    }

    #[test]
    fn message_trace_attributes_queueing_to_links() {
        let m = model(8);
        let clocks = vec![SimTime::ZERO; 8];
        // Two cross-host messages from the same host (devices 0 and 1
        // share host 0): the second queues on the shared NIC, not on its
        // own idle PCIe lane.
        let sends = vec![
            SendDesc {
                from: 0,
                to: 4,
                bytes: 10_000_000,
                depart: SimTime::ZERO,
            },
            SendDesc {
                from: 1,
                to: 6,
                bytes: 10_000_000,
                depart: SimTime::ZERO,
            },
        ];
        let mut trace = Vec::new();
        let mut st = m.new_state();
        let _ = m.exchange_with(&mut st, &clocks, &sends, Some(&mut trace));
        assert_eq!(trace.len(), 2);
        let a = trace.iter().find(|t| t.from == 0).unwrap();
        let b = trace.iter().find(|t| t.from == 1).unwrap();
        assert_eq!(a.nic_queue, SimTime::ZERO);
        assert!(
            b.nic_queue > SimTime::ZERO,
            "second message queues on the shared NIC"
        );
        assert_eq!(
            b.pcie_out_queue,
            SimTime::ZERO,
            "its own PCIe lane was idle"
        );
        assert_eq!(a.bytes, 10_000_000);
        assert!(b.arrival > a.arrival);
    }

    #[test]
    fn more_partners_cost_more_overhead_at_equal_volume() {
        // Same volume split over 1 vs 7 partners from one host: the
        // per-message overhead makes many partners slower.
        let m = model(16);
        let clocks = vec![SimTime::ZERO; 16];
        let one = m.exchange(
            &clocks,
            &[SendDesc {
                from: 0,
                to: 14,
                bytes: 700_000,
                depart: SimTime::ZERO,
            }],
        );
        let many: Vec<SendDesc> = (1..8)
            .map(|i| SendDesc {
                from: 0,
                to: 2 * i + 1,
                bytes: 100_000,
                depart: SimTime::ZERO,
            })
            .collect();
        let spread = m.exchange(&clocks, &many);
        let t1 = one.makespan().as_secs_f64();
        let t7 = spread.makespan().as_secs_f64();
        assert!(t7 > t1, "one={t1} seven={t7}");
    }

    #[test]
    fn makespan_of_an_empty_outcome_is_zero() {
        // A zero-device exchange must yield a value, not a panic.
        let empty = ExchangeOutcome::default();
        assert_eq!(empty.makespan(), SimTime::ZERO);
        let m = model(4);
        let out = m.exchange(&[SimTime::ZERO; 4], &[]);
        assert_eq!(out.makespan(), SimTime::ZERO);
    }
}
