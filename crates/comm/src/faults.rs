//! Deterministic fault injection: what can go wrong, and when.
//!
//! The paper's study assumes a perfectly healthy fabric; this module is the
//! other half of the story. A [`FaultPlan`] schedules *link faults*
//! (message drop, duplication, delay spikes) and *device faults* (a crash
//! at a given round with optional rejoin, a transient straggler window)
//! against the simulation, and a [`FaultInjector`] turns the plan into
//! per-message / per-round decisions.
//!
//! Everything is reproducible from the plan's single `u64` seed: link
//! fates are pure functions of `(seed, from, to, link sequence number,
//! attempt)` — a counter-based hash, not a stateful RNG — so the decision
//! for a message does not depend on the order in which the engine happens
//! to process other messages, and a rollback-and-replay run re-rolls fresh
//! fates for re-sent messages (their link sequence numbers keep advancing)
//! instead of deterministically re-hitting the same drop forever.

use crate::clock::SimTime;

/// What the injector decided for one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFate {
    /// The attempt reaches the receiver, possibly late, possibly twice.
    Deliver {
        /// Extra in-flight latency (a delay spike; `ZERO` normally).
        extra_delay: SimTime,
        /// The network duplicated the packet; the receiver must suppress
        /// the second copy.
        duplicated: bool,
    },
    /// The attempt is lost; the sender's ack timeout will fire.
    Drop,
}

/// A device crash scheduled at a specific round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashSpec {
    /// Device that dies.
    pub device: u32,
    /// Round at which it dies (global round under BSP, the device's local
    /// round ordinal under BASP).
    pub round: u32,
    /// `true`: the device restarts from the last checkpoint and execution
    /// replays (rollback recovery). `false`: the device stays dead and its
    /// partition is permanently re-homed onto a surviving device
    /// (graceful degradation).
    pub rejoin: bool,
}

/// A transient slowdown window on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerSpec {
    /// Device that slows down.
    pub device: u32,
    /// First affected round.
    pub from_round: u32,
    /// Number of affected rounds.
    pub rounds: u32,
    /// Compute-time multiplier while affected (e.g. `4.0` = 4× slower).
    pub factor: f64,
}

/// A complete, seeded fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed all link-fate decisions derive from.
    pub seed: u64,
    /// Per-attempt message drop probability in `[0, 1)`.
    pub drop: f64,
    /// Per-delivery duplication probability in `[0, 1)`.
    pub duplicate: f64,
    /// Per-delivery delay-spike probability in `[0, 1)`.
    pub delay: f64,
    /// Delay-spike magnitude in seconds.
    pub delay_secs: f64,
    /// Optional device crash.
    pub crash: Option<CrashSpec>,
    /// Optional straggler window.
    pub straggler: Option<StragglerSpec>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever. Running the retry/ack transport
    /// under this plan is guaranteed byte-identical to the raw transport.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_secs: 0.0,
            crash: None,
            straggler: None,
        }
    }

    /// An empty plan carrying `seed` (convenient base for builders).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// The same fault *schedule* under a different decision seed: crash,
    /// straggler window and probabilities carry over unchanged, only the
    /// link-fate draws re-roll. This is how a chaos harness sweeps one
    /// scenario across a seed matrix without re-describing it.
    pub fn reseeded(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..self.clone()
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.crash.is_none()
            && self.straggler.is_none()
    }

    /// Sets the drop probability (builder style).
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop = p;
        self
    }

    /// Sets the duplication probability (builder style).
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.duplicate = p;
        self
    }

    /// Sets the delay-spike probability and magnitude (builder style).
    pub fn with_delay(mut self, p: f64, secs: f64) -> FaultPlan {
        self.delay = p;
        self.delay_secs = secs;
        self
    }

    /// Schedules a crash (builder style).
    pub fn with_crash(mut self, device: u32, round: u32, rejoin: bool) -> FaultPlan {
        self.crash = Some(CrashSpec {
            device,
            round,
            rejoin,
        });
        self
    }

    /// Schedules a straggler window (builder style).
    pub fn with_straggler(
        mut self,
        device: u32,
        from_round: u32,
        rounds: u32,
        factor: f64,
    ) -> FaultPlan {
        self.straggler = Some(StragglerSpec {
            device,
            from_round,
            rounds,
            factor,
        });
        self
    }

    /// Parses a `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=42,drop=0.05,dup=0.01,delay=0.02,delay_ms=5,crash=3@5+rejoin
    /// seed=7,drop=0.2,crash=1@4,straggler=2@3:4x8
    /// ```
    ///
    /// * `seed=U` — decision seed (default 0);
    /// * `drop=P` / `dup=P` / `delay=P` — probabilities in `[0, 1)`;
    /// * `delay_ms=X` — delay-spike magnitude (default 5 ms);
    /// * `crash=DEV@ROUND[+rejoin]` — crash `DEV` at `ROUND`; with
    ///   `+rejoin` it restarts from the last checkpoint, without it its
    ///   masters are reassigned to a survivor;
    /// * `straggler=DEV@ROUND:NxF` — slow `DEV` by `F`× for `N` rounds
    ///   starting at `ROUND`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        plan.delay_secs = 0.005;
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item '{part}' is not key=value"))?;
            let prob = |what: &str, v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("{what} needs a number, got '{v}'"))?;
                if !(0.0..1.0).contains(&p) {
                    return Err(format!("{what} must be in [0, 1), got {p}"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed needs a u64, got '{value}'"))?;
                }
                "drop" => plan.drop = prob("drop", value)?,
                "dup" => plan.duplicate = prob("dup", value)?,
                "delay" => plan.delay = prob("delay", value)?,
                "delay_ms" => {
                    let ms: f64 = value
                        .parse()
                        .map_err(|_| format!("delay_ms needs a number, got '{value}'"))?;
                    if ms < 0.0 {
                        return Err(format!("delay_ms must be non-negative, got {ms}"));
                    }
                    plan.delay_secs = ms / 1e3;
                }
                "crash" => {
                    let (body, rejoin) = match value.strip_suffix("+rejoin") {
                        Some(b) => (b, true),
                        None => (value, false),
                    };
                    let (dev, round) = body
                        .split_once('@')
                        .ok_or_else(|| format!("crash needs DEV@ROUND[+rejoin], got '{value}'"))?;
                    plan.crash = Some(CrashSpec {
                        device: dev
                            .parse()
                            .map_err(|_| format!("crash device must be a u32, got '{dev}'"))?,
                        round: round
                            .parse()
                            .map_err(|_| format!("crash round must be a u32, got '{round}'"))?,
                        rejoin,
                    });
                }
                "straggler" => {
                    let err = || format!("straggler needs DEV@ROUND:NxF, got '{value}'");
                    let (dev, rest) = value.split_once('@').ok_or_else(err)?;
                    let (round, rest) = rest.split_once(':').ok_or_else(err)?;
                    let (n, factor) = rest.split_once('x').ok_or_else(err)?;
                    plan.straggler = Some(StragglerSpec {
                        device: dev.parse().map_err(|_| err())?,
                        from_round: round.parse().map_err(|_| err())?,
                        rounds: n.parse().map_err(|_| err())?,
                        factor: factor.parse().map_err(|_| err())?,
                    });
                }
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        Ok(plan)
    }
}

/// Retry policy of the reliable transport.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryConfig {
    /// Base ack timeout in seconds (first retransmission fires this long
    /// after the attempt left the sending host).
    pub timeout_secs: f64,
    /// Multiplier applied to the timeout per retry (exponential backoff).
    pub backoff: f64,
    /// Maximum number of retransmissions before the sender gives up and
    /// declares the peer unreachable.
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            // Well above the ~0.5 ms cross-host RTT of both modelled
            // clusters, well below any round's compute time at full scale.
            timeout_secs: 2e-3,
            backoff: 2.0,
            max_retries: 5,
        }
    }
}

impl RetryConfig {
    /// Total waiting time across the whole retry ladder — how long after
    /// the first attempt a sender declares the receiver dead. This is also
    /// the failure-detection latency charged when a device misses a BSP
    /// barrier entirely.
    pub fn give_up_after(&self) -> SimTime {
        let mut total = 0.0;
        let mut t = self.timeout_secs;
        for _ in 0..=self.max_retries {
            total += t;
            t *= self.backoff;
        }
        SimTime::from_secs_f64(total)
    }
}

/// Counters of everything the fault layer injected and the reliable
/// transport absorbed. Lives in the execution report so a run's resilience
/// story is visible next to its timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultCounters {
    /// Transmission attempts the injector dropped.
    pub drops_injected: u64,
    /// Deliveries the injector duplicated.
    pub duplicates_injected: u64,
    /// Deliveries the injector delayed.
    pub delays_injected: u64,
    /// Ack timeouts that fired on senders.
    pub timeouts: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Duplicate copies the receiver suppressed by sequence number.
    pub duplicates_suppressed: u64,
    /// Messages abandoned after the full retry budget (each one triggers
    /// recovery at the engine level).
    pub delivery_failures: u64,
}

impl FaultCounters {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.drops_injected += other.drops_injected;
        self.duplicates_injected += other.duplicates_injected;
        self.delays_injected += other.delays_injected;
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.delivery_failures += other.delivery_failures;
    }

    /// True when any fault was injected or absorbed.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }
}

/// Turns a [`FaultPlan`] into per-message and per-round decisions.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A uniform draw in `[0, 1)`, keyed by the message's identity — pure,
    /// order-independent, reproducible.
    fn unit(&self, tag: u64, from: u32, to: u32, seq: u64, attempt: u32) -> f64 {
        let mut h = mix64(self.plan.seed ^ tag);
        h = mix64(h ^ ((from as u64) << 32 | to as u64));
        h = mix64(h ^ seq);
        h = mix64(h ^ attempt as u64);
        // 53 mantissa bits -> [0, 1).
        (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Decides the fate of attempt `attempt` of message `seq` on the link
    /// `from → to`.
    pub fn link_fate(&self, from: u32, to: u32, seq: u64, attempt: u32) -> LinkFate {
        let p = &self.plan;
        if p.drop == 0.0 && p.duplicate == 0.0 && p.delay == 0.0 {
            return LinkFate::Deliver {
                extra_delay: SimTime::ZERO,
                duplicated: false,
            };
        }
        if p.drop > 0.0 && self.unit(0xD607, from, to, seq, attempt) < p.drop {
            return LinkFate::Drop;
        }
        let duplicated =
            p.duplicate > 0.0 && self.unit(0xD0B1, from, to, seq, attempt) < p.duplicate;
        let extra_delay = if p.delay > 0.0 && self.unit(0xDE1A, from, to, seq, attempt) < p.delay {
            SimTime::from_secs_f64(p.delay_secs)
        } else {
            SimTime::ZERO
        };
        LinkFate::Deliver {
            extra_delay,
            duplicated,
        }
    }

    /// True when `device` is scheduled to crash at `round`.
    pub fn crash_due(&self, device: u32, round: u32) -> bool {
        self.plan
            .crash
            .map(|c| c.device == device && c.round == round)
            .unwrap_or(false)
    }

    /// Compute-time multiplier for `device` at `round` (1.0 = healthy).
    pub fn slowdown(&self, device: u32, round: u32) -> f64 {
        match self.plan.straggler {
            Some(s)
                if s.device == device
                    && round >= s.from_round
                    && round < s.from_round.saturating_add(s.rounds) =>
            {
                s.factor
            }
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let inj = FaultInjector::new(plan);
        for seq in 0..100 {
            assert_eq!(
                inj.link_fate(0, 1, seq, 0),
                LinkFate::Deliver {
                    extra_delay: SimTime::ZERO,
                    duplicated: false
                }
            );
        }
    }

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::seeded(1).with_drop(0.3));
        let b = FaultInjector::new(FaultPlan::seeded(1).with_drop(0.3));
        let c = FaultInjector::new(FaultPlan::seeded(2).with_drop(0.3));
        let fates = |inj: &FaultInjector| -> Vec<LinkFate> {
            (0..256).map(|s| inj.link_fate(0, 1, s, 0)).collect()
        };
        assert_eq!(fates(&a), fates(&b), "same seed, same fates");
        assert_ne!(fates(&a), fates(&c), "different seed, different fates");
        let drops = fates(&a)
            .iter()
            .filter(|f| matches!(f, LinkFate::Drop))
            .count();
        // 30% of 256 with generous slack.
        assert!((40..120).contains(&drops), "drop count {drops}");
    }

    #[test]
    fn fresh_attempts_reroll_the_fate() {
        // A dropped attempt must not deterministically drop again on the
        // retransmission, or no retry budget would ever suffice.
        let inj = FaultInjector::new(FaultPlan::seeded(9).with_drop(0.5));
        let differs = (0..64).any(|seq| {
            let a = inj.link_fate(2, 3, seq, 0);
            let b = inj.link_fate(2, 3, seq, 1);
            a != b
        });
        assert!(differs);
    }

    #[test]
    fn crash_and_straggler_windows() {
        let inj = FaultInjector::new(
            FaultPlan::seeded(0)
                .with_crash(3, 5, true)
                .with_straggler(1, 2, 3, 4.0),
        );
        assert!(inj.crash_due(3, 5));
        assert!(!inj.crash_due(3, 4));
        assert!(!inj.crash_due(2, 5));
        assert_eq!(inj.slowdown(1, 1), 1.0);
        assert_eq!(inj.slowdown(1, 2), 4.0);
        assert_eq!(inj.slowdown(1, 4), 4.0);
        assert_eq!(inj.slowdown(1, 5), 1.0);
        assert_eq!(inj.slowdown(0, 3), 1.0);
    }

    #[test]
    fn parse_roundtrip_and_errors() {
        let p =
            FaultPlan::parse("seed=42,drop=0.05,dup=0.01,delay=0.02,delay_ms=7,crash=3@5+rejoin")
                .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.drop, 0.05);
        assert_eq!(p.duplicate, 0.01);
        assert_eq!(p.delay, 0.02);
        assert!((p.delay_secs - 7e-3).abs() < 1e-12);
        assert_eq!(
            p.crash,
            Some(CrashSpec {
                device: 3,
                round: 5,
                rejoin: true
            })
        );

        let p = FaultPlan::parse("crash=1@4,straggler=2@3:4x8").unwrap();
        assert_eq!(
            p.crash,
            Some(CrashSpec {
                device: 1,
                round: 4,
                rejoin: false
            })
        );
        assert_eq!(
            p.straggler,
            Some(StragglerSpec {
                device: 2,
                from_round: 3,
                rounds: 4,
                factor: 8.0
            })
        );

        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("crash=17").is_err());
        assert!(FaultPlan::parse("drop").is_err());
    }

    #[test]
    fn reseeding_keeps_the_schedule_but_rerolls_fates() {
        let base = FaultPlan::seeded(1)
            .with_drop(0.3)
            .with_crash(2, 4, false)
            .with_straggler(1, 3, 2, 4.0);
        let re = base.reseeded(99);
        assert_eq!(re.seed, 99);
        assert_eq!(re.crash, base.crash, "crash schedule must carry over");
        assert_eq!(re.straggler, base.straggler);
        assert_eq!(re.drop, base.drop);
        let fates = |p: &FaultPlan| -> Vec<LinkFate> {
            let inj = FaultInjector::new(p.clone());
            (0..256).map(|s| inj.link_fate(0, 1, s, 0)).collect()
        };
        assert_ne!(fates(&base), fates(&re), "new seed, new link fates");
    }

    #[test]
    fn retry_ladder_sums_the_backoff() {
        let r = RetryConfig {
            timeout_secs: 1e-3,
            backoff: 2.0,
            max_retries: 3,
        };
        // 1 + 2 + 4 + 8 ms.
        assert_eq!(r.give_up_after(), SimTime::from_secs_f64(15e-3));
    }
}
