//! The synchronization planner.
//!
//! A reduce (mirror→master) followed by a broadcast (master→mirror) always
//! suffices (§III-D1), but most of it can be elided: a mirror only needs to
//! be **reduced** if the program can have written it, and only needs the
//! **broadcast** if the program will read it. Where writes and reads happen
//! is a property of the operator (push programs read the edge source and
//! write the edge destination), and whether a given mirror has local
//! out-/in-edges is a property of the partition. Filtering the exchange
//! links by those two facts reproduces every optimization in the paper
//! without special cases:
//!
//! * **OEC** (+ push): mirrors never have out-edges → every broadcast list
//!   is empty → broadcast skipped;
//! * **IEC** (+ push): mirrors never have in-edges → reduce skipped;
//! * **CVC**: mirrors with in-edges share the master's grid column and
//!   mirrors with out-edges its grid row → reduce/broadcast partner sets
//!   collapse from all-to-all to one grid column/row.

use serde::{Deserialize, Serialize};

use dirgl_partition::Partition;

use crate::bitset::DenseBitset;

/// Per-link inverse index: local vertex → link entry, plus the participant
/// membership bitset, so Updated-Only extraction can iterate
/// `updated ∧ members` and touch only updated entries instead of probing
/// every link entry bit-by-bit.
///
/// The index exists only when the link's side array is strictly ascending
/// in local ids (which the partition builder guarantees — masters and
/// mirrors are laid out in ascending global-id order on both sides). Then
/// the entry index of a local vertex is its *rank* in the full-link
/// membership bitset, recoverable from per-word prefix popcounts without
/// storing a `local vertex → entry` vector. Hand-built links that violate
/// the ordering get no index ([`ExtractIndex::build`] returns `None`) and
/// fall back to the dense walk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExtractIndex {
    /// Local vertices that participate in this direction's exchange (the
    /// filtered entry subset, as a bitset over the device's local ids).
    members: DenseBitset,
    /// Local vertices appearing anywhere on this link's side array.
    all: DenseBitset,
    /// Per-word prefix popcounts of `all`: number of link entries whose
    /// local id is below `64 * w`.
    rank: Vec<u32>,
}

impl ExtractIndex {
    /// Builds the index for one link direction, or `None` when `side` is
    /// not strictly ascending (fallback to the dense walk).
    pub fn build(local_len: u32, side: &[u32], entries: &[u32]) -> Option<ExtractIndex> {
        if entries.is_empty() || side.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let mut all = DenseBitset::new(local_len);
        for &lv in side {
            all.set(lv);
        }
        let mut members = DenseBitset::new(local_len);
        for &e in entries {
            members.set(side[e as usize]);
        }
        let mut rank = Vec::with_capacity(all.words().len());
        let mut acc = 0u32;
        for &w in all.words() {
            rank.push(acc);
            acc += w.count_ones();
        }
        Some(ExtractIndex { members, all, rank })
    }

    /// Participant membership over local vertices.
    #[inline]
    pub fn members(&self) -> &DenseBitset {
        &self.members
    }

    /// Link entry index of participating local vertex `lv` (rank of `lv`
    /// in the full-link membership).
    #[inline]
    pub fn entry_of(&self, lv: u32) -> u32 {
        let w = (lv / 64) as usize;
        let below = self.all.words()[w] & ((1u64 << (lv % 64)) - 1);
        self.rank[w] + below.count_ones()
    }

    /// Word-batched extraction: calls `f(lv, entry)` for every local
    /// vertex set in both `frontier` and the participant membership, in
    /// ascending order. Equivalent to `frontier.intersect_iter(members)`
    /// followed by [`ExtractIndex::entry_of`] per hit, but the per-word
    /// rank and the full-link membership word are loaded once per 64
    /// positions instead of once per hit.
    pub fn for_each_entry(&self, frontier: &DenseBitset, mut f: impl FnMut(u32, u32)) {
        assert_eq!(frontier.len(), self.members.len());
        let all_words = self.all.words();
        for (wi, (&fw, &mw)) in frontier
            .words()
            .iter()
            .zip(self.members.words())
            .enumerate()
        {
            let mut hits = fw & mw;
            if hits == 0 {
                continue;
            }
            let base = wi as u32 * 64;
            let all_word = all_words[wi];
            let rank = self.rank[wi];
            while hits != 0 {
                let bit = hits.trailing_zeros();
                hits &= hits - 1;
                let entry = rank + (all_word & ((1u64 << bit) - 1)).count_ones();
                f(base + bit, entry);
            }
        }
    }
}

/// Precomputed participant sets for one (program, partition) pairing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyncPlan {
    num_devices: u32,
    /// For pair `(holder, owner)` at `holder * P + owner`: indices into the
    /// pair's link entries whose mirror may be written — the reduce set.
    reduce_entries: Vec<Vec<u32>>,
    /// Same indexing: entries whose mirror is read — the broadcast set.
    bcast_entries: Vec<Vec<u32>>,
    /// Inverse indexes over the *holder's* local ids for each reduce set
    /// (mirror side extracts). `None` where the pair is empty or unsorted.
    #[serde(default)]
    reduce_index: Vec<Option<ExtractIndex>>,
    /// Inverse indexes over the *owner's* local ids for each broadcast set
    /// (master side extracts).
    #[serde(default)]
    bcast_index: Vec<Option<ExtractIndex>>,
}

impl SyncPlan {
    /// Builds the plan for a program that reads at the edge source iff
    /// `read_at_src` and writes at the edge destination iff `write_at_dst`.
    /// (All five paper benchmarks read at source and write at destination,
    /// in both their push and pull formulations.)
    pub fn build(part: &Partition, read_at_src: bool, write_at_dst: bool) -> SyncPlan {
        let p = part.num_devices;
        let mut reduce_entries = Vec::with_capacity((p * p) as usize);
        let mut bcast_entries = Vec::with_capacity((p * p) as usize);
        let mut reduce_index = Vec::with_capacity((p * p) as usize);
        let mut bcast_index = Vec::with_capacity((p * p) as usize);
        for holder in 0..p {
            for owner in 0..p {
                let link = part.link(holder, owner);
                if holder == owner || link.is_empty() {
                    reduce_entries.push(Vec::new());
                    bcast_entries.push(Vec::new());
                    reduce_index.push(None);
                    bcast_index.push(None);
                    continue;
                }
                let red = link.written_entries(write_at_dst);
                let bc = link.read_entries(read_at_src);
                reduce_index.push(ExtractIndex::build(
                    part.locals[holder as usize].num_vertices(),
                    &link.mirror_side,
                    &red,
                ));
                bcast_index.push(ExtractIndex::build(
                    part.locals[owner as usize].num_vertices(),
                    &link.master_side,
                    &bc,
                ));
                reduce_entries.push(red);
                bcast_entries.push(bc);
            }
        }
        SyncPlan {
            num_devices: p,
            reduce_entries,
            bcast_entries,
            reduce_index,
            bcast_index,
        }
    }

    /// Reduce participant entries for `(holder, owner)`.
    #[inline]
    pub fn reduce(&self, holder: u32, owner: u32) -> &[u32] {
        &self.reduce_entries[(holder * self.num_devices + owner) as usize]
    }

    /// Broadcast participant entries for `(holder, owner)`.
    #[inline]
    pub fn bcast(&self, holder: u32, owner: u32) -> &[u32] {
        &self.bcast_entries[(holder * self.num_devices + owner) as usize]
    }

    /// Inverse index for the `(holder, owner)` reduce set, over the
    /// holder's local ids. `None` (dense-walk fallback) for empty pairs,
    /// unsorted hand-built links, or plans deserialized from an older
    /// format.
    #[inline]
    pub fn reduce_index(&self, holder: u32, owner: u32) -> Option<&ExtractIndex> {
        self.reduce_index
            .get((holder * self.num_devices + owner) as usize)?
            .as_ref()
    }

    /// Inverse index for the `(holder, owner)` broadcast set, over the
    /// owner's local ids.
    #[inline]
    pub fn bcast_index(&self, holder: u32, owner: u32) -> Option<&ExtractIndex> {
        self.bcast_index
            .get((holder * self.num_devices + owner) as usize)?
            .as_ref()
    }

    /// Total shared proxies the plan can ever move (both directions), for
    /// communication-buffer memory accounting on each device.
    pub fn buffer_entries_for_device(&self, dev: u32) -> u64 {
        let p = self.num_devices;
        let mut total = 0u64;
        for other in 0..p {
            if other == dev {
                continue;
            }
            // dev as mirror holder (sends reduce, receives broadcast)...
            total += self.reduce(dev, other).len() as u64;
            total += self.bcast(dev, other).len() as u64;
            // ...and as master owner (receives reduce, sends broadcast).
            total += self.reduce(other, dev).len() as u64;
            total += self.bcast(other, dev).len() as u64;
        }
        total
    }

    /// True when no reduce message exists anywhere (e.g. IEC + push).
    pub fn reduce_is_elided(&self) -> bool {
        self.reduce_entries.iter().all(|e| e.is_empty())
    }

    /// True when no broadcast message exists anywhere (e.g. OEC + push).
    pub fn bcast_is_elided(&self) -> bool {
        self.bcast_entries.iter().all(|e| e.is_empty())
    }

    /// Distinct devices this device exchanges at least one message with.
    pub fn partner_count(&self, dev: u32) -> u32 {
        (0..self.num_devices)
            .filter(|&o| {
                o != dev
                    && (!self.reduce(dev, o).is_empty()
                        || !self.bcast(dev, o).is_empty()
                        || !self.reduce(o, dev).is_empty()
                        || !self.bcast(o, dev).is_empty())
            })
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_graph::RmatConfig;
    use dirgl_partition::Policy;

    fn graph() -> dirgl_graph::Csr {
        RmatConfig::new(10, 8).seed(11).generate()
    }

    #[test]
    fn oec_elides_broadcast_for_push() {
        let part = Partition::build(&graph(), Policy::Oec, 8, 0);
        let plan = SyncPlan::build(&part, true, true);
        assert!(plan.bcast_is_elided());
        assert!(!plan.reduce_is_elided());
    }

    #[test]
    fn iec_elides_reduce_for_push() {
        let part = Partition::build(&graph(), Policy::Iec, 8, 0);
        let plan = SyncPlan::build(&part, true, true);
        assert!(plan.reduce_is_elided());
        assert!(!plan.bcast_is_elided());
    }

    #[test]
    fn hvc_needs_both_directions() {
        let part = Partition::build(&graph(), Policy::Hvc, 8, 0);
        let plan = SyncPlan::build(&part, true, true);
        assert!(!plan.reduce_is_elided());
        assert!(!plan.bcast_is_elided());
    }

    #[test]
    fn cvc_partners_are_fewer_than_all_to_all() {
        let g = graph();
        let cvc = Partition::build(&g, Policy::Cvc, 16, 0);
        let hvc = Partition::build(&g, Policy::Hvc, 16, 0);
        let plan_cvc = SyncPlan::build(&cvc, true, true);
        let plan_hvc = SyncPlan::build(&hvc, true, true);
        // On a 4x4 grid each device talks to its row + column: <= 6 partners
        // versus up to 15 under an unstructured vertex cut.
        let max_cvc = (0..16).map(|d| plan_cvc.partner_count(d)).max().unwrap();
        let max_hvc = (0..16).map(|d| plan_hvc.partner_count(d)).max().unwrap();
        assert!(max_cvc <= 6, "cvc partners {max_cvc}");
        assert!(max_hvc > 10, "hvc partners {max_hvc}");
    }

    #[test]
    fn reduce_and_bcast_reference_valid_entries() {
        let part = Partition::build(&graph(), Policy::Cvc, 8, 0);
        let plan = SyncPlan::build(&part, true, true);
        for holder in 0..8 {
            for owner in 0..8 {
                let link = part.link(holder, owner);
                for &e in plan.reduce(holder, owner) {
                    assert!((e as usize) < link.len());
                    assert!(link.mirror_has_in[e as usize]);
                }
                for &e in plan.bcast(holder, owner) {
                    assert!((e as usize) < link.len());
                    assert!(link.mirror_has_out[e as usize]);
                }
            }
        }
    }

    #[test]
    fn extract_index_agrees_with_dense_walk() {
        // For every link direction with an index, iterating
        // `members ∧ full` must visit exactly the participant entries in
        // ascending entry order, and `entry_of` must invert the side
        // array.
        let part = Partition::build(&graph(), Policy::Hvc, 8, 0);
        let plan = SyncPlan::build(&part, true, true);
        let mut indexed_links = 0;
        for holder in 0..8 {
            for owner in 0..8 {
                let link = part.link(holder, owner);
                if let Some(idx) = plan.reduce_index(holder, owner) {
                    indexed_links += 1;
                    let via_index: Vec<u32> = idx
                        .members()
                        .iter_set()
                        .map(|lv| idx.entry_of(lv))
                        .collect();
                    assert_eq!(via_index, plan.reduce(holder, owner));
                    for &e in plan.reduce(holder, owner) {
                        assert_eq!(idx.entry_of(link.mirror_side[e as usize]), e);
                    }
                }
                if let Some(idx) = plan.bcast_index(holder, owner) {
                    let via_index: Vec<u32> = idx
                        .members()
                        .iter_set()
                        .map(|lv| idx.entry_of(lv))
                        .collect();
                    assert_eq!(via_index, plan.bcast(holder, owner));
                    for &e in plan.bcast(holder, owner) {
                        assert_eq!(idx.entry_of(link.master_side[e as usize]), e);
                    }
                }
            }
        }
        assert!(indexed_links > 0, "builder links must be ascending");
    }

    #[test]
    fn for_each_entry_matches_per_bit_extraction() {
        let part = Partition::build(&graph(), Policy::Hvc, 8, 0);
        let plan = SyncPlan::build(&part, true, true);
        let mut checked = 0;
        for holder in 0..8 {
            for owner in 0..8 {
                let Some(idx) = plan.reduce_index(holder, owner) else {
                    continue;
                };
                let len = idx.members().len();
                // A frontier hitting a scattered subset of the members
                // plus positions outside the membership.
                let mut frontier = DenseBitset::new(len);
                for (k, lv) in idx.members().iter_set().enumerate() {
                    if k % 3 != 1 {
                        frontier.set(lv);
                    }
                }
                for lv in (0..len).step_by(17) {
                    frontier.set(lv);
                }
                let want: Vec<(u32, u32)> = frontier
                    .intersect_iter(idx.members())
                    .map(|lv| (lv, idx.entry_of(lv)))
                    .collect();
                let mut got = Vec::new();
                idx.for_each_entry(&frontier, |lv, e| got.push((lv, e)));
                assert_eq!(got, want);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn extract_index_rejects_unsorted_sides() {
        assert!(ExtractIndex::build(10, &[3, 1, 5], &[0, 1]).is_none());
        assert!(ExtractIndex::build(10, &[3, 3, 5], &[0]).is_none());
        assert!(ExtractIndex::build(10, &[1, 3, 5], &[]).is_none());
        let idx = ExtractIndex::build(10, &[1, 3, 5], &[0, 2]).unwrap();
        assert_eq!(idx.entry_of(1), 0);
        assert_eq!(idx.entry_of(3), 1);
        assert_eq!(idx.entry_of(5), 2);
        assert!(idx.members().get(1) && !idx.members().get(3) && idx.members().get(5));
    }

    #[test]
    fn buffer_accounting_is_symmetric_in_total() {
        let part = Partition::build(&graph(), Policy::Cvc, 4, 0);
        let plan = SyncPlan::build(&part, true, true);
        let total: u64 = (0..4).map(|d| plan.buffer_entries_for_device(d)).sum();
        // Every entry is counted once on the holder side and once on the
        // owner side.
        let mut expect = 0u64;
        for h in 0..4 {
            for o in 0..4 {
                expect += 2 * (plan.reduce(h, o).len() + plan.bcast(h, o).len()) as u64;
            }
        }
        assert_eq!(total, expect);
    }
}
