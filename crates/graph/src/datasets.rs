//! The dataset catalog: scaled synthetic analogues of the paper's Table I.
//!
//! Each [`DatasetId`] carries the *published* properties of the real input
//! ([`PaperProps`]) and a scale divisor. [`DatasetId::load`] generates the
//! analogue: `|V|` and `|E|` divided by the divisor, maximum degrees divided
//! by the same divisor (preserving the degree-to-work ratios that drive the
//! paper's load-balancing results), and the approximate diameter kept at its
//! *paper value* (round counts — e.g. bfs on uk14 running >1000 rounds —
//! depend on diameter directly, so it must not shrink with the graph).
//!
//! Memory and communication-volume accounting elsewhere in the workspace
//! multiplies measured bytes by the divisor to report paper-equivalent GB;
//! see `DESIGN.md` §6.

use crate::compressed::CompressedCsr;
use crate::csr::Csr;
use crate::gen::rmat::RmatConfig;
use crate::gen::social::SocialConfig;
use crate::gen::webcrawl::WebCrawlConfig;
use crate::weights::randomize_weights;

/// Size classes from §IV-A: small graphs run on the single-host platform,
/// medium and large on the multi-host cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Single-host multi-GPU experiments (up to 6 GPUs on Tuxedo).
    Small,
    /// Multi-host experiments on up to 64 GPUs.
    Medium,
    /// Multi-host experiments on 64 GPUs.
    Large,
}

/// The nine inputs of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// Randomized scale-free R-MAT graph (scale 23).
    Rmat23,
    /// Orkut social network.
    Orkut,
    /// Indochina 2004 web crawl.
    Indochina04,
    /// Twitter follower network (2010, 51M vertices).
    Twitter50,
    /// Friendster social network.
    Friendster,
    /// UK 2007 web crawl.
    Uk07,
    /// ClueWeb 2012 web crawl.
    Clueweb12,
    /// UK 2014 web crawl.
    Uk14,
    /// Web Data Commons 2014 hyperlink graph.
    Wdc14,
}

/// Published properties of a real input (the columns of Table I).
#[derive(Clone, Copy, Debug)]
pub struct PaperProps {
    /// |V| of the real dataset.
    pub num_vertices: u64,
    /// |E| of the real dataset.
    pub num_edges: u64,
    /// Maximum out-degree.
    pub max_out_degree: u64,
    /// Maximum in-degree.
    pub max_in_degree: u64,
    /// Approximate diameter.
    pub approx_diameter: u32,
    /// On-disk size in GB as reported by the paper.
    pub size_gb: f64,
}

/// A loaded dataset: the generated analogue plus its scaling metadata.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which Table I input this stands in for.
    pub id: DatasetId,
    /// The generated, weighted graph.
    pub graph: Csr,
    /// Scale divisor actually used (catalog divisor × any override factor).
    pub divisor: u64,
    /// Published properties of the real input.
    pub paper: PaperProps,
}

/// A dataset loaded through the streaming ingest path: the same analogue as
/// [`Dataset`], held as a [`CompressedCsr`] instead of a raw [`Csr`].
#[derive(Clone, Debug)]
pub struct CompressedDataset {
    /// Which Table I input this stands in for.
    pub id: DatasetId,
    /// The generated, weighted graph in compressed-adjacency form.
    pub graph: CompressedCsr,
    /// Scale divisor actually used (catalog divisor × any override factor).
    pub divisor: u64,
    /// Published properties of the real input.
    pub paper: PaperProps,
}

impl DatasetId {
    /// All nine inputs, in Table I order.
    pub const ALL: [DatasetId; 9] = [
        DatasetId::Rmat23,
        DatasetId::Orkut,
        DatasetId::Indochina04,
        DatasetId::Twitter50,
        DatasetId::Friendster,
        DatasetId::Uk07,
        DatasetId::Clueweb12,
        DatasetId::Uk14,
        DatasetId::Wdc14,
    ];

    /// The three small inputs (single-host experiments, Tables II/III).
    pub const SMALL: [DatasetId; 3] = [DatasetId::Rmat23, DatasetId::Orkut, DatasetId::Indochina04];

    /// The three medium inputs (Figures 3, 4, 5, 7, 8).
    pub const MEDIUM: [DatasetId; 3] =
        [DatasetId::Twitter50, DatasetId::Friendster, DatasetId::Uk07];

    /// The three large inputs (Figures 6, 9).
    pub const LARGE: [DatasetId; 3] = [DatasetId::Clueweb12, DatasetId::Uk14, DatasetId::Wdc14];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Rmat23 => "rmat23",
            DatasetId::Orkut => "orkut",
            DatasetId::Indochina04 => "indochina04",
            DatasetId::Twitter50 => "twitter50",
            DatasetId::Friendster => "friendster",
            DatasetId::Uk07 => "uk07",
            DatasetId::Clueweb12 => "clueweb12",
            DatasetId::Uk14 => "uk14",
            DatasetId::Wdc14 => "wdc14",
        }
    }

    /// Size class per §IV-A.
    pub fn size_class(self) -> SizeClass {
        match self {
            DatasetId::Rmat23 | DatasetId::Orkut | DatasetId::Indochina04 => SizeClass::Small,
            DatasetId::Twitter50 | DatasetId::Friendster | DatasetId::Uk07 => SizeClass::Medium,
            DatasetId::Clueweb12 | DatasetId::Uk14 | DatasetId::Wdc14 => SizeClass::Large,
        }
    }

    /// Published properties (Table I).
    pub fn paper_props(self) -> PaperProps {
        // rmat23's |E| is printed as 13.4M but its |E|/|V| row says 16;
        // 2^23 vertices x edge-factor 16 = 134M is the consistent reading
        // (Graph500-style generation), which we adopt.
        match self {
            DatasetId::Rmat23 => PaperProps {
                num_vertices: 8_300_000,
                num_edges: 134_000_000,
                max_out_degree: 350_000,
                max_in_degree: 9_776,
                approx_diameter: 3,
                size_gb: 1.1,
            },
            DatasetId::Orkut => PaperProps {
                num_vertices: 3_100_000,
                num_edges: 234_000_000,
                max_out_degree: 33_313,
                max_in_degree: 33_313,
                approx_diameter: 6,
                size_gb: 1.8,
            },
            DatasetId::Indochina04 => PaperProps {
                num_vertices: 7_400_000,
                num_edges: 194_000_000,
                max_out_degree: 6_985,
                max_in_degree: 256_425,
                approx_diameter: 2,
                size_gb: 1.6,
            },
            DatasetId::Twitter50 => PaperProps {
                num_vertices: 51_000_000,
                num_edges: 1_963_000_000,
                max_out_degree: 779_958,
                max_in_degree: 3_500_000,
                approx_diameter: 12,
                size_gb: 16.0,
            },
            DatasetId::Friendster => PaperProps {
                num_vertices: 66_000_000,
                num_edges: 1_806_000_000,
                max_out_degree: 5_214,
                max_in_degree: 5_214,
                approx_diameter: 21,
                size_gb: 28.0,
            },
            DatasetId::Uk07 => PaperProps {
                num_vertices: 106_000_000,
                num_edges: 3_739_000_000,
                max_out_degree: 15_402,
                max_in_degree: 975_418,
                approx_diameter: 115,
                size_gb: 29.0,
            },
            DatasetId::Clueweb12 => PaperProps {
                num_vertices: 978_000_000,
                num_edges: 42_574_000_000,
                max_out_degree: 7_447,
                max_in_degree: 75_000_000,
                approx_diameter: 501,
                size_gb: 325.0,
            },
            DatasetId::Uk14 => PaperProps {
                num_vertices: 788_000_000,
                num_edges: 47_615_000_000,
                max_out_degree: 16_365,
                max_in_degree: 8_600_000,
                approx_diameter: 2_498,
                size_gb: 361.0,
            },
            DatasetId::Wdc14 => PaperProps {
                num_vertices: 1_725_000_000,
                num_edges: 64_423_000_000,
                max_out_degree: 32_848,
                max_in_degree: 46_000_000,
                approx_diameter: 789,
                size_gb: 493.0,
            },
        }
    }

    /// Default catalog scale divisor: 256 for small inputs, 1024 for medium,
    /// 4096 for large.
    pub fn default_divisor(self) -> u64 {
        match self.size_class() {
            SizeClass::Small => 256,
            SizeClass::Medium => 1024,
            SizeClass::Large => 4096,
        }
    }

    /// Loads (generates) the analogue at the default divisor with randomized
    /// edge weights.
    pub fn load(self) -> Dataset {
        self.load_scaled(1)
    }

    /// Loads the undirected view used by cc/kcore: the analogue is
    /// generated at half the directed edge budget and then symmetrized, so
    /// the undirected closure matches Table I's |E| (the working set the
    /// paper's memory-bound runs are constrained by) instead of doubling
    /// it.
    pub fn load_undirected_scaled(self, extra_divisor: u64) -> Dataset {
        let directed = self.load_scaled(extra_divisor);
        let sym = half_edges(&directed.graph).symmetrize();
        Dataset {
            graph: sym,
            ..directed
        }
    }

    /// Loads at `default_divisor() * extra_divisor` — bench binaries expose
    /// this as `--scale` so the full sweep can be run quickly or at higher
    /// fidelity.
    pub fn load_scaled(self, extra_divisor: u64) -> Dataset {
        let ScaledParams {
            divisor,
            n,
            m,
            dout,
            din,
            seed,
        } = self.scaled_params(extra_divisor);
        let p = self.paper_props();
        let graph = match self {
            DatasetId::Rmat23 => {
                // Keep R-MAT generation native: pick the scale whose 2^s is
                // closest to the target vertex count.
                let scale = (n as f64).log2().round() as u32;
                let ef = (m / (1u64 << scale)).max(1) as u32;
                RmatConfig::new(scale, ef).seed(seed).generate()
            }
            DatasetId::Orkut | DatasetId::Twitter50 | DatasetId::Friendster => {
                SocialConfig::new(n, m, dout, din)
                    .diameter(p.approx_diameter.max(4))
                    .seed(seed)
                    .generate()
            }
            DatasetId::Indochina04
            | DatasetId::Uk07
            | DatasetId::Clueweb12
            | DatasetId::Uk14
            | DatasetId::Wdc14 => {
                // Diameter stays at the paper value (min 6 so the chain is
                // non-degenerate; Table I lists indochina04 as 2).
                let diam = p.approx_diameter.max(6).min(n / 8);
                WebCrawlConfig::new(n, m, dout, din, diam)
                    .seed(seed)
                    .generate()
            }
        };
        let graph = randomize_weights(&graph, crate::weights::DEFAULT_MAX_WEIGHT, seed ^ 0xFFFF);
        Dataset {
            id: self,
            graph,
            divisor,
            paper: p,
        }
    }

    /// Loads the same analogue [`DatasetId::load_scaled`] produces, but as a
    /// delta-gap varint [`CompressedCsr`] built through the streaming ingest
    /// path: the generator's raw edges flow through a `chunk_edges`-bounded
    /// external sort ([`crate::stream::EdgeSpill`]) and weights are drawn
    /// inline during the merge, so neither the full edge list nor the raw
    /// CSR is ever resident. Contract (pinned by tests):
    /// `load_scaled_compressed(x, c).graph.to_csr() == load_scaled(x).graph`
    /// for every `x`, `c`.
    ///
    /// The social analogues (orkut / twitter50 / friendster) fall back to
    /// in-memory generation + compression: their generator builds global
    /// degree plans that need the full vertex range anyway, so streaming
    /// would not reduce the peak.
    pub fn load_scaled_compressed(
        self,
        extra_divisor: u64,
        chunk_edges: usize,
    ) -> CompressedDataset {
        let ScaledParams {
            divisor,
            n,
            m,
            dout,
            din,
            seed,
        } = self.scaled_params(extra_divisor);
        let p = self.paper_props();
        let wseed = seed ^ 0xFFFF;
        let weights = Some((crate::weights::DEFAULT_MAX_WEIGHT, wseed));
        let graph = match self {
            DatasetId::Rmat23 => {
                let scale = (n as f64).log2().round() as u32;
                let ef = (m / (1u64 << scale)).max(1) as u32;
                let cfg = RmatConfig::new(scale, ef).seed(seed);
                crate::stream::compress_via_spill(1 << scale, chunk_edges, weights, |f| {
                    cfg.for_each_raw_edge(f)
                })
            }
            DatasetId::Orkut | DatasetId::Twitter50 | DatasetId::Friendster => {
                CompressedCsr::from_csr(&self.load_scaled(extra_divisor).graph)
            }
            DatasetId::Indochina04
            | DatasetId::Uk07
            | DatasetId::Clueweb12
            | DatasetId::Uk14
            | DatasetId::Wdc14 => {
                let diam = p.approx_diameter.max(6).min(n / 8);
                let cfg = WebCrawlConfig::new(n, m, dout, din, diam).seed(seed);
                crate::stream::compress_via_spill(n, chunk_edges, weights, |f| {
                    cfg.for_each_raw_edge(f)
                })
            }
        };
        CompressedDataset {
            id: self,
            graph,
            divisor,
            paper: p,
        }
    }

    /// Shared scale arithmetic for [`DatasetId::load_scaled`] and
    /// [`DatasetId::load_scaled_compressed`]: one computation, so the plain
    /// and streamed loaders cannot disagree on the generated analogue.
    fn scaled_params(self, extra_divisor: u64) -> ScaledParams {
        assert!(extra_divisor >= 1);
        let divisor = self.default_divisor() * extra_divisor;
        let p = self.paper_props();
        let n = (p.num_vertices / divisor).max(1024) as u32;
        let m = (p.num_edges / divisor).max(4096);
        ScaledParams {
            divisor,
            n,
            m,
            dout: clamp_degree((p.max_out_degree / divisor) as u32, n),
            din: clamp_degree((p.max_in_degree / divisor) as u32, n),
            seed: 0xD1_46_1B_00 ^ self as u64 ^ divisor.wrapping_shl(32),
        }
    }
}

/// Scale arithmetic shared by the plain and compressed loaders.
struct ScaledParams {
    divisor: u64,
    n: u32,
    m: u64,
    dout: u32,
    din: u32,
    seed: u64,
}

/// Degree-target clamp for scaled analogues: floor of 8 (so tiny analogues
/// keep some skew), capped at `n / 2` (so the target is realizable). The
/// floor is kept low because a larger one would inflate the paper-equivalent
/// degree (scaled degree × divisor) past the real maximum and manufacture
/// thread-block imbalance the real input does not have.
///
/// Ordering matters at extreme divisors: when `n / 2` drops below the floor,
/// the cap must win — `max(8).min(cap)` happened to resolve that way, but
/// only because of evaluation order; `clamp` would panic outright with
/// `min > max`. Making the floor `8.min(cap)` states the intent explicitly
/// and keeps the pair a valid clamp range for any `n`.
fn clamp_degree(raw: u32, n: u32) -> u32 {
    let cap = (n / 2).max(1);
    raw.clamp(8.min(cap), cap)
}

/// Deterministically keeps every other edge of each adjacency list (a
/// topology-preserving half-sample used by the undirected view).
fn half_edges(g: &Csr) -> Csr {
    let mut b =
        crate::csr::CsrBuilder::with_capacity(g.num_vertices(), g.num_edges() as usize / 2 + 1);
    for u in 0..g.num_vertices() {
        for (i, (v, w)) in g.edges(u).enumerate() {
            // Keep the first edge of every list (connectivity) and every
            // other edge after that.
            if i % 2 == 0 {
                b.add_weighted(u, v, w);
            }
        }
    }
    b.build()
}

impl Dataset {
    /// Paper-equivalent bytes for `measured` bytes on this dataset's scale.
    pub fn paper_equivalent_bytes(&self, measured: u64) -> u64 {
        measured * self.divisor
    }

    /// Paper-equivalent GB for `measured` bytes.
    pub fn paper_equivalent_gb(&self, measured: u64) -> f64 {
        self.paper_equivalent_bytes(measured) as f64 / 1e9
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn catalog_partitions_into_size_classes() {
        assert_eq!(DatasetId::ALL.len(), 9);
        let small = DatasetId::ALL
            .iter()
            .filter(|d| d.size_class() == SizeClass::Small)
            .count();
        let medium = DatasetId::ALL
            .iter()
            .filter(|d| d.size_class() == SizeClass::Medium)
            .count();
        let large = DatasetId::ALL
            .iter()
            .filter(|d| d.size_class() == SizeClass::Large)
            .count();
        assert_eq!((small, medium, large), (3, 3, 3));
    }

    #[test]
    fn small_analogues_match_paper_shape() {
        for id in DatasetId::SMALL {
            let ds = id.load_scaled(4); // extra-small for test speed
            let st = GraphStats::compute(&ds.graph);
            let p = id.paper_props();
            let target_ratio = p.num_edges as f64 / p.num_vertices as f64;
            assert!(
                st.avg_degree > 0.4 * target_ratio && st.avg_degree < 2.0 * target_ratio,
                "{id}: avg {} vs paper ratio {target_ratio}",
                st.avg_degree
            );
            assert!(ds.graph.is_weighted(), "{id}: weights missing");
        }
    }

    #[test]
    fn webcrawl_analogue_keeps_paper_diameter() {
        let ds = DatasetId::Uk07.load_scaled(8);
        let st = GraphStats::compute(&ds.graph);
        // uk07 approx diameter is 115; the analogue must be in that band,
        // not scaled down with the graph.
        assert!(
            st.approx_diameter >= 100 && st.approx_diameter <= 135,
            "diam={}",
            st.approx_diameter
        );
    }

    #[test]
    fn paper_equivalent_accounting() {
        let ds = DatasetId::Orkut.load_scaled(4);
        assert_eq!(ds.divisor, 1024);
        assert_eq!(ds.paper_equivalent_bytes(1000), 1_024_000);
        assert!((ds.paper_equivalent_gb(1_000_000) - 1.024).abs() < 1e-9);
    }

    #[test]
    fn undirected_view_matches_paper_edge_budget() {
        let directed = DatasetId::Uk07.load_scaled(8);
        let undirected = DatasetId::Uk07.load_undirected_scaled(8);
        // The symmetric closure stays close to the directed |E| budget
        // (half-sampled then doubled), not twice it.
        let e = undirected.graph.num_edges() as f64;
        let target = directed.graph.num_edges() as f64;
        assert!(
            e < 1.25 * target && e > 0.6 * target,
            "e={e} target={target}"
        );
        // And it is actually symmetric.
        assert_eq!(undirected.graph.symmetrize(), undirected.graph);
    }

    #[test]
    fn deterministic_loads() {
        let a = DatasetId::Rmat23.load_scaled(8);
        let b = DatasetId::Rmat23.load_scaled(8);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn degree_clamp_is_explicit_at_extreme_divisors() {
        // Normal regime: floor 8, cap n/2, raw value passes through.
        assert_eq!(clamp_degree(100, 1024), 100);
        assert_eq!(clamp_degree(3, 1024), 8);
        assert_eq!(clamp_degree(9_999, 1024), 512);
        // Tiny n: the cap drops below the 8-floor — the cap must win and
        // the pair must stay a valid clamp range (no panic).
        assert_eq!(clamp_degree(100, 10), 5);
        assert_eq!(clamp_degree(0, 10), 5);
        assert_eq!(clamp_degree(100, 4), 2);
        assert_eq!(clamp_degree(100, 1), 1);
        assert_eq!(clamp_degree(0, 0), 1);
    }

    #[test]
    fn extreme_divisor_load_hits_the_floors() {
        // A divisor far past the catalog range: |V| and |E| bottom out at
        // their floors (1024 / 4096) and the degree clamps stay consistent.
        let ds = DatasetId::Wdc14.load_scaled(1 << 20);
        assert_eq!(ds.graph.num_vertices(), 1024);
        assert!(ds.graph.num_edges() >= 1024);
        let max_out = (0..ds.graph.num_vertices())
            .map(|v| ds.graph.out_degree(v))
            .max()
            .unwrap();
        assert!(max_out <= 512 + 1, "max_out={max_out}"); // cap n/2 (+hub mesh slack)
    }

    #[test]
    fn compressed_loader_matches_plain_loader() {
        // Streamed external-sort ingest ≡ in-memory generation, for a
        // web-crawl analogue (native streaming), rmat (native streaming)
        // and a social analogue (compress-after-generate fallback).
        for id in [DatasetId::Uk07, DatasetId::Rmat23, DatasetId::Orkut] {
            let plain = id.load_scaled(32);
            // Small chunk to force multi-run merges on the streamed path.
            let comp = id.load_scaled_compressed(32, 8 * 1024);
            assert_eq!(comp.divisor, plain.divisor);
            assert_eq!(comp.graph.to_csr(), plain.graph, "{id}");
            // And the whole point: the compressed form is smaller.
            assert!(comp.graph.memory_bytes() < plain.graph.memory_bytes());
        }
    }
}
