//! Graph property measurement — the columns of the paper's Table I.

use crate::csr::{Csr, VertexId};

/// Measured properties of a graph, mirroring Table I of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// |V|.
    pub num_vertices: u32,
    /// |E|.
    pub num_edges: u64,
    /// |E| / |V|.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Approximate diameter via double-sweep BFS on the undirected view.
    pub approx_diameter: u32,
}

impl GraphStats {
    /// Computes all properties. `O(|V| + |E|)` except the diameter estimate
    /// which runs two BFS sweeps.
    pub fn compute(g: &Csr) -> GraphStats {
        let n = g.num_vertices();
        let mut in_deg = vec![0u32; n as usize];
        for &t in g.targets() {
            in_deg[t as usize] += 1;
        }
        let max_out = (0..n).map(|v| g.out_degree(v)).max().unwrap_or(0);
        let max_in = in_deg.into_iter().max().unwrap_or(0);
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
            approx_diameter: approx_diameter(g),
        }
    }
}

/// BFS levels from `src` over out-edges of `g` plus out-edges of `rev`
/// (i.e. the undirected view); returns `(levels, farthest, max_level)`.
fn bfs_levels(g: &Csr, rev: &Csr, src: VertexId) -> (Vec<u32>, VertexId, u32) {
    let n = g.num_vertices() as usize;
    let mut level = vec![u32::MAX; n];
    level[src as usize] = 0;
    let mut frontier = vec![src];
    let mut next = Vec::new();
    let mut depth = 0u32;
    let mut far = src;
    while !frontier.is_empty() {
        depth += 1;
        for &u in &frontier {
            for &v in g.neighbors(u).iter().chain(rev.neighbors(u)) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = depth;
                    far = v;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    let max_level = depth.saturating_sub(1);
    (level, far, max_level)
}

/// Double-sweep diameter estimate on the undirected view: BFS from the
/// max-out-degree vertex, then BFS again from the farthest vertex found.
/// A lower bound on the true diameter; the standard approximation the paper
/// (and Table I's "Approx. Diameter") relies on.
pub fn approx_diameter(g: &Csr) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    let rev = g.transpose();
    let start = g.max_out_degree_vertex();
    let (_, far, _) = bfs_levels(g, &rev, start);
    let (_, _, d2) = bfs_levels(g, &rev, far);
    d2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    #[test]
    fn path_graph_diameter() {
        let mut b = CsrBuilder::new(6);
        for i in 0..5 {
            b.add(i, i + 1);
        }
        let g = b.build();
        assert_eq!(approx_diameter(&g), 5);
        let st = GraphStats::compute(&g);
        assert_eq!(st.max_out_degree, 1);
        assert_eq!(st.max_in_degree, 1);
        assert_eq!(st.num_edges, 5);
        assert!((st.avg_degree - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_stats() {
        let mut b = CsrBuilder::new(5);
        for i in 1..5 {
            b.add(0, i);
        }
        let g = b.build();
        let st = GraphStats::compute(&g);
        assert_eq!(st.max_out_degree, 4);
        assert_eq!(st.max_in_degree, 1);
        assert_eq!(st.approx_diameter, 2); // leaf -> hub -> leaf, undirected
    }

    #[test]
    fn directed_cycle_uses_undirected_view() {
        let mut b = CsrBuilder::new(8);
        for i in 0..8 {
            b.add(i, (i + 1) % 8);
        }
        let g = b.build();
        // Undirected cycle of 8: diameter 4.
        assert_eq!(approx_diameter(&g), 4);
    }
}
