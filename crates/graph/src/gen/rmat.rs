//! R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos).
//!
//! The paper's `rmat23` input "is a randomized scale-free graph generated
//! using a rmat generator", so the analogue here is the same generator at a
//! smaller scale. Default probabilities are the Graph500 parameters
//! `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Csr, EdgeList};

/// Configuration for an R-MAT generation run.
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average directed edges per vertex requested (before dedup).
    pub edge_factor: u32,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
    /// Remove duplicate edges and self loops (default true).
    pub dedup: bool,
}

impl RmatConfig {
    /// Graph500 parameters at the given scale and edge factor.
    pub fn new(scale: u32, edge_factor: u32) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 1,
            dedup: true,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets quadrant probabilities `a`, `b`, `c` (`d = 1 - a - b - c`).
    pub fn quadrants(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a + b + c <= 1.0 + 1e-9);
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Streams the raw (pre-dedup) edge sequence without materializing it —
    /// the streaming ingest path feeds this straight into an external sort
    /// ([`crate::stream::EdgeSpill`]). [`RmatConfig::generate_edges`]
    /// collects the identical sequence, so the two paths cannot diverge.
    pub fn for_each_raw_edge(&self, f: &mut dyn FnMut(u32, u32)) {
        let n: u32 = 1 << self.scale;
        let m = (n as u64) * self.edge_factor as u64;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for _ in 0..m {
            let (mut lo_r, mut hi_r) = (0u32, n);
            let (mut lo_c, mut hi_c) = (0u32, n);
            while hi_r - lo_r > 1 {
                // Small per-level noise keeps the graph from being exactly
                // self-similar, as in the Graph500 reference implementation.
                let ab = self.a + self.b;
                let a_norm = self.a / ab;
                let c_norm = self.c / (1.0 - ab);
                let go_down = rng.gen::<f64>() > ab;
                let go_right = if go_down {
                    rng.gen::<f64>() > c_norm
                } else {
                    rng.gen::<f64>() > a_norm
                };
                let mid_r = (lo_r + hi_r) / 2;
                let mid_c = (lo_c + hi_c) / 2;
                if go_down {
                    lo_r = mid_r;
                } else {
                    hi_r = mid_r;
                }
                if go_right {
                    lo_c = mid_c;
                } else {
                    hi_c = mid_c;
                }
            }
            f(lo_r, lo_c);
        }
    }

    /// Generates the edge list.
    pub fn generate_edges(&self) -> EdgeList {
        let n: u32 = 1 << self.scale;
        let m = (n as u64) * self.edge_factor as u64;
        let mut el = EdgeList::new(n);
        el.edges.reserve(m as usize);
        self.for_each_raw_edge(&mut |u, v| el.edges.push((u, v)));
        if self.dedup {
            el.dedup();
        }
        el
    }

    /// Generates the CSR directly.
    pub fn generate(&self) -> Csr {
        self.generate_edges().into_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let g1 = RmatConfig::new(8, 4).seed(11).generate();
        let g2 = RmatConfig::new(8, 4).seed(11).generate();
        assert_eq!(g1, g2);
        let g3 = RmatConfig::new(8, 4).seed(12).generate();
        assert_ne!(g1, g3);
    }

    #[test]
    fn size_and_skew() {
        let g = RmatConfig::new(12, 8).seed(5).generate();
        assert_eq!(g.num_vertices(), 4096);
        // Dedup removes some of the 32768 generated edges but most survive.
        assert!(g.num_edges() > 20_000, "edges={}", g.num_edges());
        // Power-law: max degree far above the mean.
        let max_deg = (0..g.num_vertices())
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_deg as f64 > 8.0 * mean, "max={max_deg} mean={mean}");
    }

    #[test]
    fn no_self_loops_after_dedup() {
        let g = RmatConfig::new(8, 8).seed(3).generate();
        for u in 0..g.num_vertices() {
            assert!(!g.neighbors(u).contains(&u));
        }
    }
}
