//! Social-network generator (orkut / twitter50 / friendster analogues).
//!
//! Shape targets, from the paper's Table I:
//!
//! * power-law out-degrees with a controllable maximum (twitter50's max
//!   out-degree is 780k on 51M vertices — about 1.5% of |V|);
//! * power-law in-degrees, also heavy (twitter50 max in-degree 3.5M);
//! * very low approximate diameter (2–12): almost every vertex is a couple
//!   of hops from a hub;
//! * no id locality: vertex ids are randomly permuted after generation
//!   (crawl order of social networks carries little structure).
//!
//! Construction: draw out- and in-degree sequences from
//! `powerlaw_degrees`, then connect sources to
//! destinations sampled proportionally to in-degree (a configuration-model
//! variant). A sprinkle of hub back-edges keeps the graph's undirected
//! diameter tiny.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{powerlaw_degrees, random_permutation};
use crate::csr::{Csr, EdgeList, VertexId};

/// Configuration for a social-network generation run.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Target edge count (before dedup).
    pub num_edges: u64,
    /// Target maximum out-degree.
    pub max_out_degree: u32,
    /// Target maximum in-degree.
    pub max_in_degree: u32,
    /// Power-law exponent for the rank-degree curve.
    pub alpha: f64,
    /// Optional approximate diameter to plant via a chain of low-degree
    /// members hanging off the core (social networks have short but
    /// non-trivial diameters — friendster's is 21).
    pub target_diameter: Option<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl SocialConfig {
    /// A social network with the given size and degree ceilings.
    pub fn new(num_vertices: u32, num_edges: u64, max_out: u32, max_in: u32) -> Self {
        SocialConfig {
            num_vertices,
            num_edges,
            max_out_degree: max_out,
            max_in_degree: max_in,
            alpha: 0.75,
            target_diameter: None,
            seed: 1,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Plants an approximate diameter (builder style).
    pub fn diameter(mut self, d: u32) -> Self {
        self.target_diameter = Some(d);
        self
    }

    /// Generates the edge list.
    pub fn generate_edges(&self) -> EdgeList {
        let n = self.num_vertices;
        // Members forming the diameter chain are excluded from the core so
        // no random edge shortcuts the planted path.
        let chain_len = self
            .target_diameter
            .map(|d| d.saturating_sub(4).clamp(1, n / 4))
            .unwrap_or(0);
        let core_n = n - chain_len;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let out_degs = powerlaw_degrees(
            core_n,
            self.num_edges,
            self.max_out_degree,
            self.alpha,
            &mut rng,
        );
        let in_degs = powerlaw_degrees(
            core_n,
            self.num_edges,
            self.max_in_degree,
            self.alpha,
            &mut rng,
        );

        // Destination sampling table: cumulative in-degree weights. Alias
        // tables would be faster; a binary search over the prefix sums is
        // simple and O(log n) per edge.
        let mut in_prefix: Vec<u64> = Vec::with_capacity(n as usize + 1);
        in_prefix.push(0);
        for &d in &in_degs {
            in_prefix.push(in_prefix.last().unwrap() + d as u64);
        }
        let total_in = *in_prefix.last().unwrap();
        assert!(total_in > 0, "degenerate in-degree sequence");

        // Rank r generated the r-th highest degree; permute so ids carry no
        // locality, like crawled social graphs.
        let perm = random_permutation(n, self.seed.wrapping_mul(0x9e3779b97f4a7c15));

        let mut el = EdgeList::new(n);
        el.edges.reserve(self.num_edges as usize);
        for (rank, &d) in out_degs.iter().enumerate() {
            let src = perm[rank];
            for _ in 0..d {
                let ticket = rng.gen_range(0..total_in);
                let dst_rank = in_prefix.partition_point(|&p| p <= ticket) - 1;
                el.edges.push((src, perm[dst_rank]));
            }
        }
        // Hub mesh: connect the top-degree ranks to one another so the core
        // is strongly connected and its diameter stays tiny.
        let hubs = (core_n as usize).min(16);
        for i in 0..hubs {
            for j in 0..hubs {
                if i != j {
                    el.edges.push((perm[i], perm[j]));
                }
            }
        }
        // Diameter chain: a bidirectional path of fringe members hanging
        // off a mid-rank member (friend-of-friend tendrils).
        if chain_len > 0 {
            let anchor = perm[core_n as usize / 2];
            let chain = &perm[core_n as usize..];
            el.edges.push((anchor, chain[0]));
            el.edges.push((chain[0], anchor));
            for w in chain.windows(2) {
                el.edges.push((w[0], w[1]));
                el.edges.push((w[1], w[0]));
            }
        }
        el.dedup();
        el
    }

    /// Generates the CSR directly.
    pub fn generate(&self) -> Csr {
        self.generate_edges().into_csr()
    }
}

/// Connects each isolated (zero total degree) vertex to a random hub so
/// traversal benchmarks reach the whole graph. Returns the number patched.
pub fn patch_isolated(el: &mut EdgeList, seed: u64) -> u32 {
    let n = el.num_vertices;
    let mut deg = vec![0u32; n as usize];
    for &(s, d) in &el.edges {
        deg[s as usize] += 1;
        deg[d as usize] += 1;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut patched = 0;
    for v in 0..n {
        if deg[v as usize] == 0 {
            let hub: VertexId = rng.gen_range(0..n);
            el.edges.push((hub, v));
            patched += 1;
        }
    }
    patched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn hits_shape_targets() {
        let cfg = SocialConfig::new(20_000, 400_000, 3_000, 10_000).seed(9);
        let g = cfg.generate();
        let st = GraphStats::compute(&g);
        assert_eq!(g.num_vertices(), 20_000);
        // Dedup collapses some edges on the hot destinations; shape holds.
        assert!(st.num_edges > 250_000, "edges={}", st.num_edges);
        assert!(
            st.max_out_degree as f64 > 2_000.0,
            "dout={}",
            st.max_out_degree
        );
        assert!(
            st.max_in_degree as f64 > 6_000.0,
            "din={}",
            st.max_in_degree
        );
        assert!(st.max_in_degree > st.max_out_degree);
    }

    #[test]
    fn tiny_diameter() {
        let cfg = SocialConfig::new(5_000, 100_000, 1_000, 2_000).seed(4);
        let g = cfg.generate();
        let st = GraphStats::compute(&g);
        assert!(st.approx_diameter <= 8, "diam={}", st.approx_diameter);
    }

    #[test]
    fn planted_diameter() {
        let g = SocialConfig::new(10_000, 150_000, 800, 1_500)
            .diameter(21)
            .seed(11)
            .generate();
        let st = GraphStats::compute(&g);
        assert!(
            (18..=26).contains(&st.approx_diameter),
            "diam={}",
            st.approx_diameter
        );
    }

    #[test]
    fn deterministic() {
        let cfg = SocialConfig::new(2_000, 20_000, 200, 500).seed(42);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn patch_isolated_connects_everything() {
        let mut el = EdgeList::new(10);
        el.edges.extend([(0, 1), (1, 2)]);
        let patched = patch_isolated(&mut el, 1);
        assert_eq!(patched, 7);
        let mut deg = [0u32; 10];
        for &(s, d) in &el.edges {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d > 0));
    }
}
