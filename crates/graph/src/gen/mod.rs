//! Synthetic graph generators.
//!
//! The paper evaluates nine real inputs (Table I). Those datasets are
//! multi-hundred-GB downloads that cannot ship with this reproduction, so
//! each is replaced by a synthetic analogue whose *shape* matches the
//! published properties: |E|/|V| ratio, max in/out degree relative to |V|,
//! and approximate diameter. Three generator families cover the catalog:
//!
//! * [`rmat`] — the R-MAT recursive matrix generator (rmat23 itself was
//!   generated with R-MAT, so this analogue is exact in kind);
//! * [`social`] — social networks: heavy-tailed in *and* out degrees, tiny
//!   diameter, no id locality (orkut, twitter50, friendster);
//! * [`webcrawl`] — web crawls: host-locality blocks, extremely high max
//!   in-degree hub pages, and a long-tail chain component that produces the
//!   non-trivial diameters of uk14/wdc14.

pub mod rmat;
pub mod social;
pub mod webcrawl;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::VertexId;

/// Draws a power-law-ish degree sequence summing approximately to
/// `target_edges`, with maximum value close to `max_degree`.
///
/// Uses a Zipf-like rank-degree curve `deg(rank) ∝ (rank + s)^(-alpha)`
/// rescaled so the head hits `max_degree` and the total lands on
/// `target_edges`. Deterministic given the inputs except for per-vertex
/// rounding noise from `rng`.
pub(crate) fn powerlaw_degrees(
    n: u32,
    target_edges: u64,
    max_degree: u32,
    alpha: f64,
    rng: &mut SmallRng,
) -> Vec<u32> {
    assert!(n > 0);
    let n_us = n as usize;
    // Unnormalized curve.
    let mut raw: Vec<f64> = (0..n_us)
        .map(|r| 1.0 / ((r as f64) + 1.0).powf(alpha))
        .collect();
    // Scale head to max_degree.
    let head = raw[0];
    let head_scale = max_degree as f64 / head;
    for x in raw.iter_mut() {
        *x *= head_scale;
    }
    // Scale the tail mass so the sum approaches target_edges while keeping
    // the head pinned: blend between the curve and a uniform floor.
    let cur_sum: f64 = raw.iter().sum();
    let target = target_edges as f64;
    if cur_sum < target {
        let deficit = (target - cur_sum) / n_us as f64;
        for x in raw.iter_mut() {
            *x += deficit;
        }
    } else {
        // Shrink only the tail (preserve the head's max degree); the factor
        // accounts for the pinned head so the total still hits the target.
        let head_val = raw[0];
        let tail_sum = cur_sum - head_val;
        let shrink = if tail_sum > 0.0 {
            ((target - head_val) / tail_sum).max(0.0)
        } else {
            0.0
        };
        for x in raw.iter_mut().skip(1) {
            *x *= shrink;
        }
    }
    raw.iter()
        .map(|&x| {
            let base = x.floor();
            let frac = x - base;
            let extra = if rng.gen::<f64>() < frac { 1.0 } else { 0.0 };
            ((base + extra) as u64).min(u32::MAX as u64) as u32
        })
        .collect()
}

/// A random permutation of `0..n`, used to destroy id locality (social
/// networks) after generation.
pub(crate) fn random_permutation(n: u32, seed: u64) -> Vec<VertexId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p: Vec<VertexId> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powerlaw_degrees_hit_targets() {
        let mut rng = SmallRng::seed_from_u64(7);
        let degs = powerlaw_degrees(10_000, 200_000, 5_000, 0.8, &mut rng);
        assert_eq!(degs.len(), 10_000);
        let sum: u64 = degs.iter().map(|&d| d as u64).sum();
        let max = *degs.iter().max().unwrap();
        // Within 10% of requested totals.
        assert!(
            (sum as f64 - 200_000.0).abs() / 200_000.0 < 0.1,
            "sum={sum}"
        );
        assert!((max as f64 - 5_000.0).abs() / 5_000.0 < 0.1, "max={max}");
    }

    #[test]
    fn powerlaw_degrees_shrink_when_overfull() {
        let mut rng = SmallRng::seed_from_u64(7);
        // Tiny edge target relative to max degree: tail must shrink.
        let degs = powerlaw_degrees(1_000, 2_000, 1_500, 0.5, &mut rng);
        let sum: u64 = degs.iter().map(|&d| d as u64).sum();
        assert!(sum < 3_000, "sum={sum}");
        assert!(degs[0] >= 1_400);
    }

    #[test]
    fn permutation_is_bijective() {
        let p = random_permutation(1000, 3);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert_ne!(p[..10], (0..10).collect::<Vec<_>>()[..]);
    }
}
