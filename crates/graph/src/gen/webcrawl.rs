//! Web-crawl generator (indochina04 / uk07 / clueweb12 / uk14 / wdc14
//! analogues).
//!
//! Shape targets, from the paper's Table I and §IV-A:
//!
//! * **host locality**: pages cluster into sites; most links stay within a
//!   site and ids are crawl-ordered, so nearby ids are densely connected
//!   (this is what makes edge-cuts of web crawls communication-friendly);
//! * **extreme max in-degree**: a handful of hub pages are linked from a
//!   sizeable fraction of the whole crawl (clueweb12: 75M of 978M pages);
//! * **moderate max out-degree**: the largest directory page links to a few
//!   thousand pages (uk07: 15k of 106M);
//! * **long-tail diameter**: "large web-crawls like uk14 have a non-trivial
//!   diameter due to long tails" — modelled as a directed chain of
//!   `target_diameter` pages hanging off a hub (crawler-trap/calendar
//!   structure). The chain length is *not* scaled down with the graph,
//!   because the paper's round counts (bfs on uk14 runs >1000 rounds)
//!   depend on it directly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::powerlaw_degrees;
use crate::csr::{Csr, EdgeList};

/// Number of global hub pages.
const NUM_HUBS: usize = 16;

/// Configuration for a web-crawl generation run.
#[derive(Clone, Debug)]
pub struct WebCrawlConfig {
    /// Number of pages.
    pub num_vertices: u32,
    /// Target edge count.
    pub num_edges: u64,
    /// Target maximum out-degree (largest directory page).
    pub max_out_degree: u32,
    /// Target maximum in-degree (most-linked hub page).
    pub max_in_degree: u32,
    /// Approximate diameter to plant via the long-tail chain.
    pub target_diameter: u32,
    /// RNG seed.
    pub seed: u64,
}

impl WebCrawlConfig {
    /// A web crawl with the given size, degree ceilings and diameter.
    pub fn new(n: u32, m: u64, max_out: u32, max_in: u32, diameter: u32) -> Self {
        WebCrawlConfig {
            num_vertices: n,
            num_edges: m,
            max_out_degree: max_out,
            max_in_degree: max_in,
            target_diameter: diameter,
            seed: 1,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Streams the raw (pre-dedup) edge sequence without materializing it —
    /// the streaming ingest path feeds this straight into an external sort
    /// ([`crate::stream::EdgeSpill`]). [`WebCrawlConfig::generate_edges`]
    /// collects the identical sequence, so the two paths cannot diverge.
    pub fn for_each_raw_edge(&self, f: &mut dyn FnMut(u32, u32)) {
        /// Emission wrapper: the fill phase budgets against the number of
        /// edges emitted so far, which the in-memory path read off
        /// `el.edges.len()`.
        struct Emit<'a> {
            count: u64,
            f: &'a mut dyn FnMut(u32, u32),
        }
        impl Emit<'_> {
            #[inline]
            fn push(&mut self, e: (u32, u32)) {
                self.count += 1;
                (self.f)(e.0, e.1);
            }
        }
        let mut el = Emit { count: 0, f };

        let n = self.num_vertices;
        assert!(
            n as u64 > self.target_diameter as u64 + NUM_HUBS as u64 + 64,
            "graph too small for requested diameter"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);

        let chain_len = self.target_diameter.saturating_sub(3).max(1);
        let core_n = n - chain_len; // pages [core_n, n) form the tail chain
        let hubs: Vec<u32> = (0..NUM_HUBS as u32).collect();

        // --- Hub mesh: hubs link each other (strongly connected core). ---
        for &h in &hubs {
            for &g in &hubs {
                if h != g {
                    el.push((h, g));
                }
            }
        }

        // --- Sites: contiguous id ranges with power-law sizes. ---
        // The largest site's index page supplies the max out-degree.
        let mut site_of = vec![0u32; n as usize]; // site index page per vertex
        let mut site_starts: Vec<u32> = Vec::new();
        let mut start = NUM_HUBS as u32;
        let mut first_site = true;
        while start < core_n {
            let remaining = core_n - start;
            let size = if first_site {
                // Plant the max-out-degree directory page exactly once.
                first_site = false;
                (self.max_out_degree + 1).min(remaining)
            } else {
                // Mostly small sites, occasionally a big one.
                let base: u32 = if rng.gen::<f64>() < 0.02 {
                    rng.gen_range(256..=1024.min(self.max_out_degree.max(257)))
                } else {
                    rng.gen_range(8..64)
                };
                base.min(remaining)
            };
            site_starts.push(start);
            let index = start;
            for i in start..start + size {
                site_of[i as usize] = index;
            }
            // Directory page links every page of its site; pages link back
            // and chain to the next page (crawl-order locality).
            for i in start + 1..start + size {
                el.push((index, i));
                el.push((i, index));
                if i + 1 < start + size {
                    el.push((i, i + 1));
                }
            }
            // Every index page links a hub so the hub core is reachable
            // from anywhere and vice versa.
            let h = hubs[rng.gen_range(0..NUM_HUBS)];
            el.push((index, h));
            el.push((h, index));
            start += size;
        }

        // --- Hub in-links: drive hub 0 to the max in-degree target. ---
        // Zipf-ish shares over the hubs; page i links hub z with probability
        // chosen so hub 0 collects ~max_in_degree links.
        let shares: Vec<f64> = (0..NUM_HUBS).map(|r| 1.0 / (r + 1) as f64).collect();
        let share_sum: f64 = shares.iter().sum();
        let q = (self.max_in_degree as f64 * share_sum / (shares[0] * core_n as f64)).min(1.0);
        let mut hub_cum: Vec<f64> = Vec::with_capacity(NUM_HUBS);
        let mut acc = 0.0;
        for s in &shares {
            acc += s / share_sum;
            hub_cum.push(acc);
        }
        for i in NUM_HUBS as u32..core_n {
            if rng.gen::<f64>() < q {
                let t = rng.gen::<f64>();
                let z = hub_cum.partition_point(|&c| c < t).min(NUM_HUBS - 1);
                el.push((i, hubs[z]));
            }
        }

        // --- Long-tail chain: hub 0 -> core_n -> core_n+1 -> ... ---
        el.push((hubs[0], core_n));
        for i in core_n..n - 1 {
            el.push((i, i + 1));
            site_of[i as usize] = core_n;
        }
        site_of[n as usize - 1] = core_n;

        // --- Fill the remaining edge budget with locality-biased links. ---
        let structural = el.count;
        if self.num_edges > structural {
            let fill = self.num_edges - structural;
            // Source selection is skewed: busy pages link more.
            let out_degs = powerlaw_degrees(
                core_n,
                fill,
                (self.max_out_degree / 4).max(8),
                0.6,
                &mut rng,
            );
            'outer: for (v, &d) in out_degs.iter().enumerate() {
                let v = v as u32;
                if v < NUM_HUBS as u32 {
                    continue;
                }
                for _ in 0..d {
                    if el.count >= self.num_edges {
                        break 'outer;
                    }
                    let dst = if rng.gen::<f64>() < 0.8 {
                        // In-site link: near the source id.
                        let lo = site_of[v as usize];
                        let width = 512.min(core_n - lo);
                        lo + rng.gen_range(0..width.max(1))
                    } else {
                        rng.gen_range(NUM_HUBS as u32..core_n)
                    };
                    el.push((v, dst));
                }
            }
        }
    }

    /// Generates the edge list.
    pub fn generate_edges(&self) -> EdgeList {
        let mut el = EdgeList::new(self.num_vertices);
        el.edges
            .reserve(self.num_edges as usize + self.num_vertices as usize);
        self.for_each_raw_edge(&mut |u, v| el.edges.push((u, v)));
        el.dedup();
        el
    }

    /// Generates the CSR directly.
    pub fn generate(&self) -> Csr {
        self.generate_edges().into_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn hits_shape_targets() {
        let cfg = WebCrawlConfig::new(30_000, 750_000, 7_000, 1_000, 30).seed(2);
        let g = cfg.generate();
        let st = GraphStats::compute(&g);
        assert_eq!(g.num_vertices(), 30_000);
        assert!(
            st.num_edges as f64 > 0.75 * 750_000.0,
            "edges={}",
            st.num_edges
        );
        assert!(
            (st.max_out_degree as f64 - 7_000.0).abs() < 700.0,
            "dout={}",
            st.max_out_degree
        );
        assert!(
            st.max_in_degree as f64 > 0.7 * 1_000.0,
            "din={}",
            st.max_in_degree
        );
    }

    #[test]
    fn plants_requested_diameter() {
        let cfg = WebCrawlConfig::new(8_000, 100_000, 500, 400, 120).seed(6);
        let g = cfg.generate();
        let st = GraphStats::compute(&g);
        assert!(
            st.approx_diameter >= 110 && st.approx_diameter <= 140,
            "diam={}",
            st.approx_diameter
        );
    }

    #[test]
    fn everything_reachable_from_max_out_degree_vertex() {
        let cfg = WebCrawlConfig::new(5_000, 60_000, 300, 300, 20).seed(8);
        let g = cfg.generate();
        let src = g.max_out_degree_vertex();
        // BFS from the benchmark source must reach (almost) all pages.
        let mut seen = vec![false; g.num_vertices() as usize];
        let mut frontier = vec![src];
        seen[src as usize] = true;
        let mut reached = 1u32;
        while let Some(u) = frontier.pop() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    reached += 1;
                    frontier.push(v);
                }
            }
        }
        assert!(
            reached as f64 > 0.99 * g.num_vertices() as f64,
            "reached={reached}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = WebCrawlConfig::new(4_000, 40_000, 200, 200, 15).seed(77);
        assert_eq!(cfg.generate(), cfg.generate());
    }
}
