//! Graph serialization.
//!
//! Two formats:
//!
//! * a text edge list (`src dst [weight]` per line) for interop and small
//!   fixtures;
//! * a binary CSR dump, mirroring the paper's footnote that "in practice,
//!   graphs can be partitioned once, and in-memory representations of the
//!   partitions can be written to disk" and reloaded directly.

use std::io::{self, BufRead, BufWriter, Read, Write};

use crate::csr::{Csr, CsrBuilder, EdgeList};

const MAGIC: &[u8; 8] = b"DIRGLCSR";

/// Writes `g` as a binary CSR stream.
pub fn write_binary<W: Write>(g: &Csr, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&g.num_edges().to_le_bytes())?;
    w.write_all(&[g.is_weighted() as u8])?;
    for &o in g.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in g.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    if let Some(ws) = g.weights() {
        for &x in ws {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a binary CSR stream written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Csr> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let weighted = flag[0] != 0;

    let mut offsets = vec![0u64; n + 1];
    for o in offsets.iter_mut() {
        r.read_exact(&mut buf8)?;
        *o = u64::from_le_bytes(buf8);
    }
    let mut buf4 = [0u8; 4];
    let mut builder = CsrBuilder::with_capacity(n as u32, m);
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        targets.push(u32::from_le_bytes(buf4));
    }
    let mut weights = Vec::new();
    if weighted {
        weights.reserve(m);
        for _ in 0..m {
            r.read_exact(&mut buf4)?;
            weights.push(u32::from_le_bytes(buf4));
        }
    }
    for u in 0..n {
        for i in offsets[u] as usize..offsets[u + 1] as usize {
            if weighted {
                builder.add_weighted(u as u32, targets[i], weights[i]);
            } else {
                builder.add(u as u32, targets[i]);
            }
        }
    }
    Ok(builder.build())
}

/// Writes `g` as a text edge list (`src dst [weight]` per line).
pub fn write_edge_list<W: Write>(g: &Csr, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v, wt) in g.iter_all_edges() {
        if g.is_weighted() {
            writeln!(w, "{u} {v} {wt}")?;
        } else {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()
}

/// Parses a text edge list; `#`-prefixed lines are comments. The vertex
/// count is `max id + 1` unless `num_vertices` is given.
pub fn read_edge_list<R: BufRead>(r: R, num_vertices: Option<u32>) -> io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut weights: Option<Vec<u32>> = None;
    let mut max_id = 0u32;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed edge list line {}", lineno + 1),
            )
        };
        let s: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        max_id = max_id.max(s).max(d);
        if let Some(wtok) = it.next() {
            let wt: u32 = wtok.parse().map_err(|_| bad())?;
            weights.get_or_insert_with(|| vec![0; edges.len()]).push(wt);
        } else if let Some(ws) = weights.as_mut() {
            ws.push(0);
        }
        edges.push((s, d));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(EdgeList {
        num_vertices: n,
        edges,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatConfig;
    use crate::weights::randomize_weights;

    #[test]
    fn binary_roundtrip_unweighted() {
        let g = RmatConfig::new(8, 4).seed(1).generate();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let g = randomize_weights(&RmatConfig::new(7, 4).seed(2).generate(), 100, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(g, read_binary(&buf[..]).unwrap());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_binary(&b"NOTAGRPH########"[..]).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let g = randomize_weights(&RmatConfig::new(6, 3).seed(4).generate(), 10, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let el = read_edge_list(&buf[..], Some(g.num_vertices())).unwrap();
        assert_eq!(el.into_csr(), g);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1 5\n1 2 7\n";
        let el = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(el.weights, Some(vec![5, 7]));
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(read_edge_list("0 x\n".as_bytes(), None).is_err());
        assert!(read_edge_list("42\n".as_bytes(), None).is_err());
    }
}
