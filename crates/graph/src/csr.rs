//! Compressed-sparse-row graph storage.
//!
//! The CSR layout is the one every GPU graph framework in the paper uses:
//! an `offsets` array of length `n + 1` and a `targets` array of length `m`,
//! with an optional parallel `weights` array (the paper adds randomized edge
//! weights to every input for `sssp`).
//!
//! Vertex ids are `u32` — the largest scaled dataset stays far below
//! `u32::MAX` vertices — and edge offsets are `u64` so the builder is safe
//! for any edge count we can hold in memory.

use rayon::prelude::*;

/// A vertex identifier. Global and partition-local ids share this type.
pub type VertexId = u32;

/// Sentinel for "no vertex".
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// An edge list: `(src, dst)` pairs plus optional weights, the input to
/// [`CsrBuilder`] and the output of the synthetic generators.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    /// Number of vertices (ids must be `< num_vertices`).
    pub num_vertices: u32,
    /// `(src, dst)` pairs.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Optional per-edge weights, parallel to `edges`.
    pub weights: Option<Vec<u32>>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Removes duplicate edges and self-loops (keeping the first weight seen
    /// for a retained edge). Generators call this so the analogues match the
    /// simple-digraph inputs of the paper.
    pub fn dedup(&mut self) {
        let mut keyed: Vec<(u64, u32)> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, (s, d))| s != d)
            .map(|(i, (s, d))| (((*s as u64) << 32) | *d as u64, i as u32))
            .collect();
        keyed.par_sort_unstable();
        keyed.dedup_by_key(|(k, _)| *k);
        let weights = self.weights.take();
        let mut edges = Vec::with_capacity(keyed.len());
        let mut new_weights = weights.as_ref().map(|_| Vec::with_capacity(keyed.len()));
        for (k, i) in keyed {
            edges.push(((k >> 32) as u32, k as u32));
            if let (Some(nw), Some(w)) = (new_weights.as_mut(), weights.as_ref()) {
                nw.push(w[i as usize]);
            }
        }
        self.edges = edges;
        self.weights = new_weights;
    }

    /// Builds the CSR for this edge list.
    pub fn into_csr(self) -> Csr {
        let mut b = CsrBuilder::new(self.num_vertices);
        match self.weights {
            Some(ws) => {
                for ((s, d), w) in self.edges.into_iter().zip(ws) {
                    b.add_weighted(s, d, w);
                }
            }
            None => {
                for (s, d) in self.edges {
                    b.add(s, d);
                }
            }
        }
        b.build()
    }
}

/// Incremental CSR construction from individual edges.
///
/// Collects edges then performs a counting sort by source; `O(m)` time and
/// memory, no comparison sort.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    num_vertices: u32,
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    weights: Vec<u32>,
    weighted: bool,
}

impl CsrBuilder {
    /// New builder over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        CsrBuilder {
            num_vertices,
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: Vec::new(),
            weighted: false,
        }
    }

    /// Pre-reserves space for `m` edges.
    pub fn with_capacity(num_vertices: u32, m: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.srcs.reserve(m);
        b.dsts.reserve(m);
        b
    }

    /// Adds an unweighted edge.
    pub fn add(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!(src < self.num_vertices && dst < self.num_vertices);
        self.srcs.push(src);
        self.dsts.push(dst);
        if self.weighted {
            self.weights.push(0);
        }
    }

    /// Adds a weighted edge. Mixing with [`CsrBuilder::add`] gives the
    /// unweighted edges weight 0.
    pub fn add_weighted(&mut self, src: VertexId, dst: VertexId, w: u32) {
        if !self.weighted {
            self.weights = vec![0; self.srcs.len()];
            self.weighted = true;
        }
        self.srcs.push(src);
        self.dsts.push(dst);
        self.weights.push(w);
    }

    /// Finalizes into a [`Csr`] (counting sort by source; destination order
    /// within a vertex's adjacency list follows insertion order).
    pub fn build(self) -> Csr {
        let n = self.num_vertices as usize;
        let m = self.srcs.len();
        let mut offsets = vec![0u64; n + 1];
        for &s in &self.srcs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![INVALID_VERTEX; m];
        let mut weights = if self.weighted {
            vec![0u32; m]
        } else {
            Vec::new()
        };
        for i in 0..m {
            let s = self.srcs[i] as usize;
            let at = cursor[s] as usize;
            cursor[s] += 1;
            targets[at] = self.dsts[i];
            if self.weighted {
                weights[at] = self.weights[i];
            }
        }
        Csr {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            weights: if self.weighted {
                Some(weights.into_boxed_slice())
            } else {
                None
            },
        }
    }
}

/// A directed graph in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    offsets: Box<[u64]>,
    targets: Box<[VertexId]>,
    weights: Option<Box<[u32]>>,
}

impl Csr {
    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: u32) -> Self {
        Csr {
            offsets: vec![0u64; n as usize + 1].into_boxed_slice(),
            targets: Box::new([]),
            weights: None,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// The out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.edge_window(v).0
    }

    /// The out-edge window of `v`: its targets slice plus the parallel
    /// weights slice, which is empty when the graph is unweighted. One
    /// bounds check per vertex instead of one per edge — the accessor the
    /// engine hot loops iterate.
    #[inline]
    pub fn edge_window(&self, v: VertexId) -> (&[VertexId], &[u32]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        match self.weights.as_deref() {
            Some(w) => (&self.targets[lo..hi], &w[lo..hi]),
            None => (&self.targets[lo..hi], &[]),
        }
    }

    /// The weights parallel to [`Csr::neighbors`], or `None` if unweighted.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> Option<&[u32]> {
        self.weights.as_ref().map(|w| {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            &w[lo..hi]
        })
    }

    /// Neighbors of `v` zipped with weights (weight 0 when unweighted).
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        let ws = self.weights.as_deref();
        (lo..hi).map(move |i| (self.targets[i], ws.map_or(0, |w| w[i])))
    }

    /// True when the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Raw offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw targets array (length `m`).
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw weights array (length `m`) if present.
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Bytes used by the CSR arrays themselves; the quantity GPU memory
    /// accounting charges for a loaded graph partition.
    pub fn bytes(&self) -> u64 {
        self.bytes_with(true)
    }

    /// CSR bytes, optionally excluding the weight array (benchmarks that
    /// ignore weights — everything except sssp — do not load them).
    pub fn bytes_with(&self, with_weights: bool) -> u64 {
        let mut b = self.offsets.len() as u64 * 8 + self.targets.len() as u64 * 4;
        if with_weights && self.weights.is_some() {
            b += self.targets.len() as u64 * 4;
        }
        b
    }

    /// The reverse graph: edge `(u, v)` becomes `(v, u)`, weights preserved.
    ///
    /// Pull-style programs (pagerank in the paper) iterate in-edges, which
    /// the engines obtain from the transpose.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices() as usize;
        let m = self.targets.len();
        let mut offsets = vec![0u64; n + 1];
        for &t in self.targets.iter() {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![INVALID_VERTEX; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0u32; m]);
        for u in 0..n as u32 {
            let lo = self.offsets[u as usize] as usize;
            let hi = self.offsets[u as usize + 1] as usize;
            for i in lo..hi {
                let v = self.targets[i] as usize;
                let at = cursor[v] as usize;
                cursor[v] += 1;
                targets[at] = u;
                if let (Some(tw), Some(sw)) = (weights.as_mut(), self.weights.as_ref()) {
                    tw[at] = sw[i];
                }
            }
        }
        Csr {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            weights: weights.map(Vec::into_boxed_slice),
        }
    }

    /// The symmetric closure: for every edge `(u, v)` ensures `(v, u)` also
    /// exists (weights copied), then deduplicates. Undirected benchmarks
    /// (cc, kcore) run on this view, as in Galois/D-IrGL.
    pub fn symmetrize(&self) -> Csr {
        let n = self.num_vertices();
        let mut el = EdgeList::new(n);
        el.weights = self.weights.as_ref().map(|_| Vec::new());
        for u in 0..n {
            for (v, w) in self.edges(u) {
                el.edges.push((u, v));
                el.edges.push((v, u));
                if let Some(ws) = el.weights.as_mut() {
                    ws.push(w);
                    ws.push(w);
                }
            }
        }
        el.dedup();
        el.into_csr()
    }

    /// The vertex with the highest out-degree (ties broken by lowest id).
    ///
    /// The paper: "the vertex with the highest out-degree is used as the
    /// source vertex for bfs and sssp".
    pub fn max_out_degree_vertex(&self) -> VertexId {
        let n = self.num_vertices();
        let mut best = 0u32;
        let mut best_deg = 0u32;
        for v in 0..n {
            let d = self.out_degree(v);
            if d > best_deg {
                best_deg = d;
                best = v;
            }
        }
        best
    }

    /// Iterates all edges as `(src, dst, weight)` triples.
    pub fn iter_all_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u32)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Out-degree skew: max degree over mean degree (1.0 for regular
    /// graphs, large for power-law tails). Layout selection uses this to
    /// decide whether reordering a device-local graph is worth it; graphs
    /// with no edges report 1.0.
    pub fn degree_skew(&self) -> f64 {
        let n = self.num_vertices();
        let m = self.num_edges();
        if n == 0 || m == 0 {
            return 1.0;
        }
        let max = (0..n).map(|v| self.out_degree(v)).max().unwrap_or(0);
        max as f64 * n as f64 / m as f64
    }

    /// Rebuilds the CSR under a vertex renaming: new id `i` is old id
    /// `old_of_new[i]` and `new_of_old` is the inverse permutation. Rows
    /// are laid out in new-id order; each row keeps its old edge order
    /// with targets renamed and weights carried along.
    pub fn permute(&self, old_of_new: &[VertexId], new_of_old: &[VertexId]) -> Csr {
        let n = self.num_vertices() as usize;
        assert_eq!(old_of_new.len(), n, "permutation length mismatch");
        assert_eq!(new_of_old.len(), n, "inverse permutation length mismatch");
        let m = self.targets.len();
        let mut offsets = vec![0u64; n + 1];
        for new_u in 0..n {
            offsets[new_u + 1] = offsets[new_u] + self.out_degree(old_of_new[new_u]) as u64;
        }
        let mut targets = vec![INVALID_VERTEX; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0u32; m]);
        for new_u in 0..n {
            let at = offsets[new_u] as usize;
            let (ts, ws) = self.edge_window(old_of_new[new_u]);
            for (k, &t) in ts.iter().enumerate() {
                targets[at + k] = new_of_old[t as usize];
            }
            if let Some(nw) = weights.as_mut() {
                nw[at..at + ws.len()].copy_from_slice(ws);
            }
        }
        Csr {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            weights: weights.map(Vec::into_boxed_slice),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = CsrBuilder::new(4);
        b.add(0, 1);
        b.add(0, 2);
        b.add(1, 3);
        b.add(2, 3);
        b.build()
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert!(!g.is_weighted());
    }

    #[test]
    fn weighted_build_preserves_weights_through_sort() {
        let mut b = CsrBuilder::new(3);
        b.add_weighted(2, 0, 7);
        b.add_weighted(0, 1, 3);
        b.add_weighted(2, 1, 9);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edges(2).collect::<Vec<_>>(), vec![(0, 7), (1, 9)]);
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(1, 3)]);
    }

    #[test]
    fn mixed_weighted_unweighted_adds() {
        let mut b = CsrBuilder::new(2);
        b.add(0, 1);
        b.add_weighted(1, 0, 5);
        let g = b.build();
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(1, 0)]);
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(0, 5)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        let tt = t.transpose();
        assert_eq!(tt, g);
    }

    #[test]
    fn transpose_preserves_weights() {
        let mut b = CsrBuilder::new(3);
        b.add_weighted(0, 2, 11);
        b.add_weighted(1, 2, 13);
        let t = b.build().transpose();
        let mut edges: Vec<_> = t.edges(2).collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 11), (1, 13)]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_once() {
        let g = diamond().symmetrize();
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        // Symmetrizing twice is a fixpoint.
        assert_eq!(g.symmetrize(), g);
    }

    #[test]
    fn edge_list_dedup_removes_duplicates_and_loops() {
        let mut el = EdgeList::new(3);
        el.edges = vec![(0, 1), (1, 1), (0, 1), (2, 0)];
        el.weights = Some(vec![4, 5, 6, 7]);
        el.dedup();
        assert_eq!(el.edges, vec![(0, 1), (2, 0)]);
        let g = el.into_csr();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(0).next(), Some((1, 4)));
        assert_eq!(g.edges(2).next(), Some((0, 7)));
    }

    #[test]
    fn max_out_degree_vertex_picks_highest() {
        let g = diamond();
        assert_eq!(g.max_out_degree_vertex(), 0);
    }

    #[test]
    fn bytes_accounting() {
        let g = diamond();
        assert_eq!(g.bytes(), 5 * 8 + 4 * 4);
        let mut b = CsrBuilder::new(4);
        b.add_weighted(0, 1, 1);
        let gw = b.build();
        assert_eq!(gw.bytes(), 5 * 8 + 4 + 4);
    }

    #[test]
    fn edge_window_matches_neighbors_and_weights() {
        let g = diamond();
        let (ts, ws) = g.edge_window(0);
        assert_eq!(ts, &[1, 2]);
        assert!(ws.is_empty());
        let mut b = CsrBuilder::new(3);
        b.add_weighted(0, 1, 3);
        b.add_weighted(0, 2, 9);
        let gw = b.build();
        let (ts, ws) = gw.edge_window(0);
        assert_eq!(ts, &[1, 2]);
        assert_eq!(ws, &[3, 9]);
        assert!(gw.edge_window(2).0.is_empty());
    }

    #[test]
    fn degree_skew_regular_vs_star() {
        let g = diamond();
        // Degrees 2,1,1,0: max 2, mean 1 -> skew 2.
        assert!((g.degree_skew() - 2.0).abs() < 1e-12);
        let mut b = CsrBuilder::new(5);
        for v in 1..5 {
            b.add(0, v);
        }
        // Star: max 4, mean 4/5 -> skew 5.
        assert!((b.build().degree_skew() - 5.0).abs() < 1e-12);
        assert_eq!(Csr::empty(3).degree_skew(), 1.0);
    }

    #[test]
    fn permute_renames_and_preserves_row_order() {
        let mut b = CsrBuilder::new(4);
        b.add_weighted(0, 1, 10);
        b.add_weighted(0, 2, 20);
        b.add_weighted(1, 3, 30);
        b.add_weighted(2, 3, 40);
        let g = b.build();
        // Reverse the vertex order: new i = old 3 - i.
        let old_of_new: Vec<u32> = vec![3, 2, 1, 0];
        let new_of_old: Vec<u32> = vec![3, 2, 1, 0];
        let p = g.permute(&old_of_new, &new_of_old);
        assert_eq!(p.num_edges(), 4);
        // Old vertex 0 (edges to 1, 2 in that order) is new vertex 3, and
        // its targets rename to 2, 1 while keeping insertion order.
        assert_eq!(p.edges(3).collect::<Vec<_>>(), vec![(2, 10), (1, 20)]);
        assert_eq!(p.edges(2).collect::<Vec<_>>(), vec![(0, 30)]);
        // Identity permutation is a no-op.
        let id: Vec<u32> = (0..4).collect();
        assert_eq!(g.permute(&id, &id), g);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.max_out_degree_vertex(), 0);
    }
}
