//! Graph substrate for the `dirgl` workspace.
//!
//! Provides:
//!
//! * [`Csr`] — a compact compressed-sparse-row graph with optional edge
//!   weights, the storage format every other crate consumes;
//! * edge-list building, transposition and symmetrization;
//! * synthetic generators ([`gen`]) that reproduce the *shape* of the nine
//!   inputs in the paper's Table I (R-MAT, social networks, web crawls);
//! * the [`datasets`] catalog mapping each paper input to a scaled synthetic
//!   analogue with paper-equivalent size accounting;
//! * [`stats`] — degree distributions and approximate diameter, used to
//!   validate that generated analogues match the published properties.

pub mod compressed;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod stats;
pub mod stream;
pub mod weights;

pub use compressed::{CompressedCsr, CompressedCsrBuilder, GraphView};
pub use csr::{Csr, CsrBuilder, EdgeList, VertexId, INVALID_VERTEX};
pub use datasets::{CompressedDataset, Dataset, DatasetId, PaperProps, SizeClass};
pub use gen::rmat::RmatConfig;
pub use gen::social::SocialConfig;
pub use gen::webcrawl::WebCrawlConfig;
pub use stats::GraphStats;
pub use stream::{compress_via_spill, EdgeSource, EdgeSpill, SortedEdges};
