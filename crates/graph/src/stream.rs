//! Streaming edge ingest: bounded-memory external sort and the
//! [`EdgeSource`] abstraction the chunked partition builder consumes.
//!
//! The in-memory pipeline is `generator → EdgeList::dedup → into_csr`:
//! materialize every raw edge, sort, dedup. [`EdgeSpill`] replaces the
//! materialization with an external sort: raw edges accumulate in a
//! `--chunk-edges`-bounded buffer; each full buffer is sorted, deduped and
//! flushed to a spill file as one run; [`SortedEdges`] then k-way-merges the
//! runs with cross-run dedup. Because the generators emit *unweighted*
//! edges, `EdgeList::dedup`'s output is exactly the ascending unique
//! `(src, dst)` sequence with self-loops dropped — which is also exactly
//! what the merge yields, so the streaming path is bit-identical to the
//! in-memory one by construction (pinned by tests below and in
//! `tests/scale_determinism.rs`).
//!
//! Weights are drawn *inline* during the merge with the same RNG sequence
//! `randomize_weights` uses (per-edge in CSR order), so the streamed
//! [`CompressedCsr`] carries the identical weights without ever holding a
//! raw CSR.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::compressed::{CompressedCsr, CompressedCsrBuilder, GraphView};
use crate::csr::Csr;

/// One adjacency source the ingest path can stream, whatever its
/// representation. Implementations must yield the identical `(src, dst,
/// weight)` sequence on every call (CSR row order; weight 0 when
/// unweighted) — the chunked partition builder makes two passes.
pub trait EdgeSource {
    fn num_vertices(&self) -> u32;
    fn num_edges(&self) -> u64;
    fn is_weighted(&self) -> bool;
    fn for_each_edge(&self, f: &mut dyn FnMut(u32, u32, u32));
}

impl EdgeSource for Csr {
    fn num_vertices(&self) -> u32 {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Csr::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        Csr::is_weighted(self)
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(u32, u32, u32)) {
        for u in 0..Csr::num_vertices(self) {
            for (v, w) in self.edges(u) {
                f(u, v, w);
            }
        }
    }
}

impl EdgeSource for CompressedCsr {
    fn num_vertices(&self) -> u32 {
        CompressedCsr::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        CompressedCsr::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        CompressedCsr::is_weighted(self)
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(u32, u32, u32)) {
        CompressedCsr::for_each_edge(self, f)
    }
}

impl EdgeSource for GraphView {
    fn num_vertices(&self) -> u32 {
        GraphView::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        GraphView::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        GraphView::is_weighted(self)
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(u32, u32, u32)) {
        GraphView::for_each_edge(self, f)
    }
}

/// Process-unique spill file names (no wall-clock involved, so spill file
/// naming stays deterministic-friendly).
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temp-file path for spill data, usable by any crate that
/// streams through bounded disk (the chunked partition builder routes
/// per-device edges through these).
pub fn spill_file_path(tag: &str) -> PathBuf {
    let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dirgl-spill-{}-{tag}-{id}.bin", std::process::id()))
}

#[inline]
fn pack(u: u32, v: u32) -> u64 {
    (u64::from(u) << 32) | u64::from(v)
}

/// Bounded-memory accumulator for raw generator edges. Holds at most
/// `chunk_edges` packed edges; overflow is sorted, deduped and flushed to a
/// spill-file run.
pub struct EdgeSpill {
    num_vertices: u32,
    chunk_edges: usize,
    buf: Vec<u64>,
    runs: Vec<PathBuf>,
}

impl EdgeSpill {
    /// Default chunk budget: 8M edges ≈ 64 MB of spill buffer.
    pub const DEFAULT_CHUNK_EDGES: usize = 8 << 20;

    pub fn new(num_vertices: u32, chunk_edges: usize) -> Self {
        let chunk_edges = chunk_edges.max(1024);
        EdgeSpill {
            num_vertices,
            chunk_edges,
            buf: Vec::with_capacity(chunk_edges),
            runs: Vec::new(),
        }
    }

    /// Adds one raw edge; self-loops are dropped (matching
    /// `EdgeList::dedup`).
    #[inline]
    pub fn push(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.buf.push(pack(u, v));
        if self.buf.len() >= self.chunk_edges {
            self.flush_run();
        }
    }

    fn flush_run(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = spill_file_path("run");
        let file = File::create(&path).expect("create edge spill run");
        let mut w = BufWriter::new(file);
        for &e in &self.buf {
            w.write_all(&e.to_le_bytes()).expect("write edge spill run");
        }
        w.flush().expect("flush edge spill run");
        self.runs.push(path);
        self.buf.clear();
    }

    /// Seals the spill into a mergeable sorted-unique edge sequence. If
    /// everything fit in one chunk no file was ever written and the merge
    /// runs straight from memory.
    pub fn finish(mut self) -> SortedEdges {
        if self.runs.is_empty() {
            let mut buf = std::mem::take(&mut self.buf);
            buf.sort_unstable();
            buf.dedup();
            return SortedEdges {
                num_vertices: self.num_vertices,
                mem: buf,
                runs: Vec::new(),
            };
        }
        self.flush_run();
        SortedEdges {
            num_vertices: self.num_vertices,
            mem: Vec::new(),
            runs: std::mem::take(&mut self.runs),
        }
    }
}

impl Drop for EdgeSpill {
    fn drop(&mut self) {
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Sorted unique `(src, dst)` pairs, either in memory (single chunk) or as
/// spill-file runs merged on the fly. Each [`SortedEdges::for_each`] call
/// replays the identical ascending sequence.
pub struct SortedEdges {
    num_vertices: u32,
    mem: Vec<u64>,
    runs: Vec<PathBuf>,
}

struct RunReader {
    r: BufReader<File>,
    next: Option<u64>,
}

impl RunReader {
    fn open(path: &PathBuf) -> Self {
        let mut rr = RunReader {
            r: BufReader::new(File::open(path).expect("open edge spill run")),
            next: None,
        };
        rr.advance();
        rr
    }

    fn advance(&mut self) {
        let mut b = [0u8; 8];
        self.next = match self.r.read_exact(&mut b) {
            Ok(()) => Some(u64::from_le_bytes(b)),
            Err(_) => None,
        };
    }
}

impl SortedEdges {
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Streams the merged ascending unique edge sequence.
    pub fn for_each(&self, f: &mut dyn FnMut(u32, u32)) {
        if self.runs.is_empty() {
            for &e in &self.mem {
                f((e >> 32) as u32, e as u32);
            }
            return;
        }
        let mut readers: Vec<RunReader> = self.runs.iter().map(RunReader::open).collect();
        // Min-heap of (next value, reader index); runs are internally
        // sorted+unique, so global dedup only needs the last emitted key.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = readers
            .iter()
            .enumerate()
            .filter_map(|(i, rr)| rr.next.map(|e| std::cmp::Reverse((e, i))))
            .collect();
        let mut last: Option<u64> = None;
        while let Some(std::cmp::Reverse((e, i))) = heap.pop() {
            if last != Some(e) {
                f((e >> 32) as u32, e as u32);
                last = Some(e);
            }
            readers[i].advance();
            if let Some(n) = readers[i].next {
                heap.push(std::cmp::Reverse((n, i)));
            }
        }
    }

    /// Number of unique edges (streams once to count).
    pub fn count(&self) -> u64 {
        let mut c = 0u64;
        self.for_each(&mut |_, _| c += 1);
        c
    }
}

impl Drop for SortedEdges {
    fn drop(&mut self) {
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Builds a [`CompressedCsr`] from a raw edge emitter under a bounded chunk
/// budget. `weights: Some((max_weight, seed))` draws per-edge weights with
/// the identical RNG walk `randomize_weights` performs over the final CSR
/// order, so the result equals
/// `CompressedCsr::from_csr(&randomize_weights(&el.dedup().into_csr(), ..))`
/// without ever materializing the edge list or the raw CSR.
pub fn compress_via_spill(
    num_vertices: u32,
    chunk_edges: usize,
    weights: Option<(u32, u64)>,
    emit: impl FnOnce(&mut dyn FnMut(u32, u32)),
) -> CompressedCsr {
    let mut spill = EdgeSpill::new(num_vertices, chunk_edges);
    emit(&mut |u, v| spill.push(u, v));
    let sorted = spill.finish();
    let mut b = CompressedCsrBuilder::new(num_vertices, weights.is_some());
    match weights {
        Some((max_weight, seed)) => {
            assert!(max_weight >= 1);
            let mut rng = SmallRng::seed_from_u64(seed);
            sorted.for_each(&mut |u, v| b.push_edge(u, v, rng.gen_range(1..=max_weight)));
        }
        None => sorted.for_each(&mut |u, v| b.push_edge(u, v, 0)),
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::EdgeList;
    use crate::gen::rmat::RmatConfig;
    use crate::gen::webcrawl::WebCrawlConfig;
    use crate::weights::randomize_weights;

    #[test]
    fn spill_sort_matches_edge_list_dedup() {
        // Random raw edges with duplicates and self-loops, tiny chunk so
        // several spill runs are forced.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200u32;
        let raw: Vec<(u32, u32)> = (0..20_000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();

        let mut el = EdgeList::new(n);
        el.edges = raw.clone();
        el.dedup();

        let mut spill = EdgeSpill::new(n, 1024);
        for &(u, v) in &raw {
            spill.push(u, v);
        }
        let sorted = spill.finish();
        let mut merged = Vec::new();
        sorted.for_each(&mut |u, v| merged.push((u, v)));
        assert_eq!(merged, el.edges);
        assert_eq!(sorted.count(), el.edges.len() as u64);
        // Replays identically.
        let mut again = Vec::new();
        sorted.for_each(&mut |u, v| again.push((u, v)));
        assert_eq!(again, merged);
    }

    #[test]
    fn streamed_rmat_equals_in_memory_path() {
        let cfg = RmatConfig::new(9, 8).seed(13);
        let plain = randomize_weights(&cfg.generate(), 100, 99);
        let streamed =
            compress_via_spill(1 << 9, 2048, Some((100, 99)), |f| cfg.for_each_raw_edge(f));
        assert_eq!(streamed.to_csr(), plain);
    }

    #[test]
    fn streamed_webcrawl_equals_in_memory_path() {
        let cfg = WebCrawlConfig::new(4_000, 40_000, 200, 200, 15).seed(77);
        let plain = randomize_weights(&cfg.generate(), 100, 5);
        let streamed =
            compress_via_spill(4_000, 4096, Some((100, 5)), |f| cfg.for_each_raw_edge(f));
        assert_eq!(streamed.to_csr(), plain);
    }

    #[test]
    fn edge_source_is_representation_agnostic() {
        let g = randomize_weights(&RmatConfig::new(7, 6).seed(4).generate(), 100, 1);
        let c = CompressedCsr::from_csr(&g);
        let mut a = Vec::new();
        let mut b = Vec::new();
        EdgeSource::for_each_edge(&g, &mut |u, v, w| a.push((u, v, w)));
        EdgeSource::for_each_edge(&c, &mut |u, v, w| b.push((u, v, w)));
        assert_eq!(a, b);
        assert_eq!(EdgeSource::num_edges(&g), EdgeSource::num_edges(&c));
    }
}
