//! Randomized edge weights.
//!
//! The paper (§IV-A): "For all inputs, we add randomized edge-weights."
//! Weights are drawn uniformly from `[1, max_weight]`; `sssp` consumes them,
//! all other benchmarks ignore them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Csr;

/// Default weight ceiling, matching common Galois/Lonestar harnesses.
pub const DEFAULT_MAX_WEIGHT: u32 = 100;

/// Returns a copy of `g` with uniformly random weights in `[1, max_weight]`.
///
/// Deterministic in `(seed, graph topology)`: the i-th edge in CSR order
/// always receives the same weight for a given seed.
pub fn randomize_weights(g: &Csr, max_weight: u32, seed: u64) -> Csr {
    assert!(max_weight >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = crate::csr::CsrBuilder::with_capacity(g.num_vertices(), g.num_edges() as usize);
    for u in 0..g.num_vertices() {
        for &v in g.neighbors(u) {
            b.add_weighted(u, v, rng.gen_range(1..=max_weight));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    fn ring(n: u32) -> Csr {
        let mut b = CsrBuilder::new(n);
        for i in 0..n {
            b.add(i, (i + 1) % n);
        }
        b.build()
    }

    #[test]
    fn weights_in_range_and_deterministic() {
        let g = ring(100);
        let w1 = randomize_weights(&g, 50, 9);
        let w2 = randomize_weights(&g, 50, 9);
        assert_eq!(w1, w2);
        assert!(w1.is_weighted());
        for u in 0..w1.num_vertices() {
            for (_, w) in w1.edges(u) {
                assert!((1..=50).contains(&w));
            }
        }
        let w3 = randomize_weights(&g, 50, 10);
        assert_ne!(w1, w3);
    }

    #[test]
    fn topology_unchanged() {
        let g = ring(64);
        let w = randomize_weights(&g, 10, 3);
        assert_eq!(w.num_edges(), g.num_edges());
        for u in 0..g.num_vertices() {
            assert_eq!(w.neighbors(u), g.neighbors(u));
        }
    }
}
