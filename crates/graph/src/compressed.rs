//! Delta-gap varint-compressed adjacency (the WebGraph trick).
//!
//! [`CompressedCsr`] stores each vertex's neighbor list as zigzag-encoded
//! deltas: the first target is encoded relative to the row's own vertex id,
//! each subsequent target relative to its predecessor. Rows produced by the
//! generators are ascending, so gaps are small and most targets fit in one
//! or two bytes; web-crawl analogues (locality-heavy site blocks) compress
//! 2–5× against the raw 4-byte-per-target [`Csr`] arrays. Edge weights, when
//! present, are plain varints interleaved after the row's targets.
//!
//! The representation is lossless and order-preserving: `to_csr()` rebuilds
//! the exact [`Csr`] (same row order, same weights), which is what the
//! compressed-vs-plain determinism contracts in `tests/scale_determinism.rs`
//! pin. Decoding is row-at-a-time into caller-provided scratch
//! ([`CompressedCsr::decode_row_into`]), so steady-state consumers touch the
//! allocator only until the scratch grows to the maximum degree — the same
//! pooling discipline as the engine's `RoundScratch`.

use crate::csr::{Csr, CsrBuilder, VertexId};

/// Zigzag-encode a signed delta into an unsigned varint payload.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Number of bytes the LEB128 varint encoding of `z` occupies.
#[inline]
fn varint_len(z: u64) -> u64 {
    // ceil(bits/7) with a floor of 1 byte for z == 0.
    (64 - z.max(1).leading_zeros() as u64).div_ceil(7)
}

#[inline]
fn write_varint(buf: &mut Vec<u8>, mut z: u64) {
    while z >= 0x80 {
        buf.push((z as u8) | 0x80);
        z >>= 7;
    }
    buf.push(z as u8);
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut z = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        z |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            return z;
        }
        shift += 7;
    }
}

/// Varint bytes needed for one row's targets (and optionally weights),
/// without materializing anything. Shared by the encoder and by
/// [`Csr::compressed_bytes_with`] so size prediction and actual encoding
/// cannot drift apart.
#[inline]
fn row_target_bytes(v: VertexId, targets: &[VertexId]) -> u64 {
    let mut prev = v as i64;
    let mut bytes = 0u64;
    for &t in targets {
        bytes += varint_len(zigzag(t as i64 - prev));
        prev = t as i64;
    }
    bytes
}

/// CSR adjacency with per-vertex delta-gap + varint neighbor lists.
///
/// Row-for-row equivalent to the [`Csr`] it was built from: `out_degree`,
/// decoded targets and weights all match, in the same order.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedCsr {
    num_edges: u64,
    /// Byte offset of each row's encoded data (`n + 1` entries).
    offsets: Box<[u64]>,
    /// Out-degree per vertex; kept raw so degree probes stay O(1).
    degrees: Box<[u32]>,
    /// Concatenated per-row payloads: target gap varints, then (if
    /// weighted) one plain weight varint per edge.
    data: Box<[u8]>,
    weighted: bool,
}

impl CompressedCsr {
    /// Compresses an existing [`Csr`], preserving weights if present.
    pub fn from_csr(g: &Csr) -> Self {
        let n = g.num_vertices();
        let mut b = CompressedCsrBuilder::new(n, g.is_weighted());
        for v in 0..n {
            let (targets, weights) = g.edge_window(v);
            b.push_row(v, targets, weights);
        }
        b.build()
    }

    /// Rebuilds the exact plain [`Csr`] this was encoded from.
    pub fn to_csr(&self) -> Csr {
        let n = self.num_vertices();
        let mut b = CsrBuilder::with_capacity(n, self.num_edges as usize);
        let (mut ts, mut ws) = (Vec::new(), Vec::new());
        for v in 0..n {
            self.decode_row_into(v, &mut ts, &mut ws);
            if self.weighted {
                for (&t, &w) in ts.iter().zip(&ws) {
                    b.add_weighted(v, t, w);
                }
            } else {
                for &t in &ts {
                    b.add(v, t);
                }
            }
        }
        b.build()
    }

    pub fn num_vertices(&self) -> u32 {
        self.degrees.len() as u32
    }

    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    /// Bytes this representation occupies: offsets + degrees + payload.
    /// The raw-side counterpart is [`Csr::bytes_with`].
    pub fn memory_bytes(&self) -> u64 {
        8 * (self.offsets.len() as u64) + 4 * (self.degrees.len() as u64) + self.data.len() as u64
    }

    /// Decodes row `v` into the provided scratch buffers (cleared first).
    /// `weights` is left empty for unweighted graphs. Buffers grow to the
    /// maximum degree once and are then reused allocation-free.
    pub fn decode_row_into(&self, v: VertexId, targets: &mut Vec<u32>, weights: &mut Vec<u32>) {
        targets.clear();
        weights.clear();
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let mut pos = self.offsets[v as usize] as usize;
        let mut prev = v as i64;
        targets.reserve(deg);
        for _ in 0..deg {
            let t = prev + unzigzag(read_varint(&self.data, &mut pos));
            targets.push(t as u32);
            prev = t;
        }
        if self.weighted {
            weights.reserve(deg);
            for _ in 0..deg {
                weights.push(read_varint(&self.data, &mut pos) as u32);
            }
        }
    }

    /// Decode-into-scratch convenience returning `(targets, weights)` slices
    /// shaped like [`Csr::edge_window`] (empty weight slice when
    /// unweighted).
    pub fn decode_window<'a>(
        &self,
        v: VertexId,
        targets: &'a mut Vec<u32>,
        weights: &'a mut Vec<u32>,
    ) -> (&'a [u32], &'a [u32]) {
        self.decode_row_into(v, targets, weights);
        (targets, weights)
    }

    /// Streams every edge as `(src, dst, weight)` in row order (weight 0
    /// when unweighted) — the same order [`Csr::edges`] walks.
    pub fn for_each_edge(&self, f: &mut dyn FnMut(u32, u32, u32)) {
        let (mut ts, mut ws) = (Vec::new(), Vec::new());
        for v in 0..self.num_vertices() {
            self.decode_row_into(v, &mut ts, &mut ws);
            if self.weighted {
                for (&t, &w) in ts.iter().zip(&ws) {
                    f(v, t, w);
                }
            } else {
                for &t in &ts {
                    f(v, t, 0);
                }
            }
        }
    }
}

impl Csr {
    /// Bytes the raw representation occupies — alias of [`Csr::bytes`] under
    /// the name the memory-budget code pairs with
    /// [`CompressedCsr::memory_bytes`].
    pub fn memory_bytes(&self) -> u64 {
        self.bytes()
    }

    /// Bytes a [`CompressedCsr`] of this graph would occupy, measured
    /// without allocating the encoding. `with_weights` mirrors
    /// [`Csr::bytes_with`]: weight varints are counted only when the graph
    /// carries weights *and* the consumer needs them. Exact — the spill
    /// admission decision and the bytes actually charged are the same
    /// computation.
    pub fn compressed_bytes_with(&self, with_weights: bool) -> u64 {
        let n = self.num_vertices();
        let mut bytes = 8 * (n as u64 + 1) + 4 * n as u64;
        for v in 0..n {
            let (targets, weights) = self.edge_window(v);
            bytes += row_target_bytes(v, targets);
            if with_weights && self.is_weighted() {
                bytes += weights.iter().map(|&w| varint_len(w as u64)).sum::<u64>();
            }
        }
        bytes
    }
}

/// Incremental encoder: rows must arrive in ascending vertex order (gaps
/// are zero-degree rows). Used by [`CompressedCsr::from_csr`] and by the
/// streaming ingest path, which pushes edges straight off the external
/// sort-merge without ever materializing a raw CSR.
pub struct CompressedCsrBuilder {
    num_vertices: u32,
    num_edges: u64,
    offsets: Vec<u64>,
    degrees: Vec<u32>,
    data: Vec<u8>,
    weighted: bool,
    /// Row currently being accumulated by `push_edge`.
    cur: u32,
    cur_prev: i64,
    cur_deg: u32,
    /// Weight varints buffered until the row closes (targets precede
    /// weights in the payload).
    cur_weights: Vec<u8>,
}

impl CompressedCsrBuilder {
    pub fn new(num_vertices: u32, weighted: bool) -> Self {
        let mut offsets = Vec::with_capacity(num_vertices as usize + 1);
        offsets.push(0);
        CompressedCsrBuilder {
            num_vertices,
            num_edges: 0,
            offsets,
            degrees: Vec::with_capacity(num_vertices as usize),
            data: Vec::new(),
            weighted,
            cur: 0,
            cur_prev: 0,
            cur_deg: 0,
            cur_weights: Vec::new(),
        }
    }

    /// Encodes one whole row. `weights` may be empty for unweighted builds.
    pub fn push_row(&mut self, v: VertexId, targets: &[VertexId], weights: &[u32]) {
        self.close_rows_until(v);
        debug_assert_eq!(self.cur, v, "rows must arrive in ascending order");
        let mut prev = v as i64;
        for &t in targets {
            write_varint(&mut self.data, zigzag(t as i64 - prev));
            prev = t as i64;
        }
        if self.weighted {
            for &w in weights.iter().take(targets.len()) {
                write_varint(&mut self.data, w as u64);
            }
        }
        self.num_edges += targets.len() as u64;
        self.degrees.push(targets.len() as u32);
        self.offsets.push(self.data.len() as u64);
        self.cur = v + 1;
    }

    /// Appends one edge; sources must be non-decreasing (row-major order).
    pub fn push_edge(&mut self, u: VertexId, v: VertexId, w: u32) {
        if u != self.cur || self.cur_deg == 0 {
            self.close_rows_until(u);
        }
        debug_assert_eq!(self.cur, u, "edges must arrive in ascending source order");
        write_varint(&mut self.data, zigzag(v as i64 - self.cur_prev));
        self.cur_prev = v as i64;
        if self.weighted {
            write_varint(&mut self.cur_weights, w as u64);
        }
        self.cur_deg += 1;
        self.num_edges += 1;
    }

    /// Flushes the in-progress row (if any) and emits empty rows up to `v`.
    fn close_rows_until(&mut self, v: VertexId) {
        if self.cur_deg > 0 {
            self.data.extend_from_slice(&self.cur_weights);
            self.cur_weights.clear();
            self.degrees.push(self.cur_deg);
            self.offsets.push(self.data.len() as u64);
            self.cur_deg = 0;
            self.cur += 1;
        }
        while self.cur < v {
            self.degrees.push(0);
            self.offsets.push(self.data.len() as u64);
            self.cur += 1;
        }
        self.cur_prev = v as i64;
    }

    pub fn build(mut self) -> CompressedCsr {
        self.close_rows_until(self.num_vertices);
        debug_assert_eq!(self.degrees.len(), self.num_vertices as usize);
        CompressedCsr {
            num_edges: self.num_edges,
            offsets: self.offsets.into_boxed_slice(),
            degrees: self.degrees.into_boxed_slice(),
            data: self.data.into_boxed_slice(),
            weighted: self.weighted,
        }
    }
}

/// Either adjacency representation behind one accessor surface. Ingest-side
/// consumers (the chunked partition builder, footprint accounting, dataset
/// loaders) take a `GraphView` so the raw and compressed paths share code.
#[derive(Clone, Debug)]
pub enum GraphView {
    Plain(Csr),
    Compressed(CompressedCsr),
}

impl GraphView {
    pub fn num_vertices(&self) -> u32 {
        match self {
            GraphView::Plain(g) => g.num_vertices(),
            GraphView::Compressed(g) => g.num_vertices(),
        }
    }

    pub fn num_edges(&self) -> u64 {
        match self {
            GraphView::Plain(g) => g.num_edges(),
            GraphView::Compressed(g) => g.num_edges(),
        }
    }

    pub fn is_weighted(&self) -> bool {
        match self {
            GraphView::Plain(g) => g.is_weighted(),
            GraphView::Compressed(g) => g.is_weighted(),
        }
    }

    pub fn out_degree(&self, v: VertexId) -> u32 {
        match self {
            GraphView::Plain(g) => g.out_degree(v),
            GraphView::Compressed(g) => g.out_degree(v),
        }
    }

    /// Bytes this representation holds resident.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            GraphView::Plain(g) => g.memory_bytes(),
            GraphView::Compressed(g) => g.memory_bytes(),
        }
    }

    /// Streams `(src, dst, weight)` in row order — identical order for both
    /// representations of the same graph.
    pub fn for_each_edge(&self, f: &mut dyn FnMut(u32, u32, u32)) {
        match self {
            GraphView::Plain(g) => {
                for u in 0..g.num_vertices() {
                    for (v, w) in g.edges(u) {
                        f(u, v, w);
                    }
                }
            }
            GraphView::Compressed(g) => g.for_each_edge(f),
        }
    }

    /// Materializes the plain [`Csr`] (cheap clone for `Plain`).
    pub fn to_plain(&self) -> Csr {
        match self {
            GraphView::Plain(g) => g.clone(),
            GraphView::Compressed(g) => g.to_csr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatConfig;
    use crate::weights::randomize_weights;
    use proptest::prelude::*;

    fn rmat(scale: u32, ef: u32, seed: u64) -> Csr {
        RmatConfig::new(scale, ef).seed(seed).generate()
    }

    fn assert_round_trip(g: &Csr) {
        let c = CompressedCsr::from_csr(g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.is_weighted(), g.is_weighted());
        let (mut ts, mut ws) = (Vec::new(), Vec::new());
        for v in 0..g.num_vertices() {
            assert_eq!(c.out_degree(v), g.out_degree(v));
            let (targets, weights) = g.edge_window(v);
            let (cts, cws) = c.decode_window(v, &mut ts, &mut ws);
            assert_eq!(cts, targets);
            if g.is_weighted() {
                assert_eq!(cws, weights);
            } else {
                assert!(cws.is_empty());
            }
        }
        assert_eq!(&c.to_csr(), g);
        assert_eq!(c.memory_bytes(), g.compressed_bytes_with(true));
    }

    #[test]
    fn round_trip_unweighted_and_weighted() {
        let g = rmat(8, 8, 42);
        assert_round_trip(&g);
        assert_round_trip(&randomize_weights(&g, 100, 7));
    }

    #[test]
    fn round_trip_empty_and_degenerate() {
        assert_round_trip(&Csr::empty(0));
        assert_round_trip(&Csr::empty(17));
        let mut b = CsrBuilder::new(4);
        b.add(3, 0); // backward gap: first delta is negative
        b.add(3, 3); // self loop
        assert_round_trip(&b.build());
    }

    #[test]
    fn push_edge_matches_push_row() {
        let g = randomize_weights(&rmat(7, 6, 3), 100, 9);
        let by_row = CompressedCsr::from_csr(&g);
        let mut b = CompressedCsrBuilder::new(g.num_vertices(), true);
        for u in 0..g.num_vertices() {
            for (v, w) in g.edges(u) {
                b.push_edge(u, v, w);
            }
        }
        assert_eq!(b.build(), by_row);
    }

    #[test]
    fn size_prediction_is_exact() {
        let g = rmat(9, 12, 5);
        let gw = randomize_weights(&g, 100, 11);
        assert_eq!(
            CompressedCsr::from_csr(&g).memory_bytes(),
            g.compressed_bytes_with(false)
        );
        assert_eq!(
            CompressedCsr::from_csr(&gw).memory_bytes(),
            gw.compressed_bytes_with(true)
        );
        // Dropping weights from the prediction must shrink it by exactly
        // the weight-varint payload.
        assert!(gw.compressed_bytes_with(false) < gw.compressed_bytes_with(true));
        assert_eq!(
            gw.compressed_bytes_with(false),
            g.compressed_bytes_with(false)
        );
    }

    #[test]
    fn graph_view_agrees_across_representations() {
        let g = randomize_weights(&rmat(8, 10, 21), 100, 2);
        let plain = GraphView::Plain(g.clone());
        let comp = GraphView::Compressed(CompressedCsr::from_csr(&g));
        assert_eq!(plain.num_vertices(), comp.num_vertices());
        assert_eq!(plain.num_edges(), comp.num_edges());
        assert!(comp.memory_bytes() < plain.memory_bytes());
        let mut a = Vec::new();
        let mut b = Vec::new();
        plain.for_each_edge(&mut |u, v, w| a.push((u, v, w)));
        comp.for_each_edge(&mut |u, v, w| b.push((u, v, w)));
        assert_eq!(a, b);
        assert_eq!(comp.to_plain(), g);
    }

    #[test]
    fn varint_zigzag_edges() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            i64::from(u32::MAX),
            -(i64::from(u32::MAX)),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
            let mut buf = Vec::new();
            write_varint(&mut buf, zigzag(v));
            assert_eq!(buf.len() as u64, varint_len(zigzag(v)));
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), zigzag(v));
            assert_eq!(pos, buf.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// CompressedCsr ≡ Csr round-trip over R-MAT corpora: neighbors,
        /// weights, `edge_window`, `out_degree` all agree, and `to_csr`
        /// reproduces the input bit-for-bit.
        #[test]
        fn compressed_round_trips_rmat(
            scale in 4u32..9,
            ef in 1u32..12,
            seed in 0u64..1_000,
            weighted in 0u32..2,
        ) {
            let g = rmat(scale, ef, seed);
            let g = if weighted == 1 { randomize_weights(&g, 100, seed ^ 0xABCD) } else { g };
            assert_round_trip(&g);
        }
    }
}
