//! A Lux-like distributed multi-GPU baseline (Jia et al., VLDB 2017),
//! reproducing the design decisions the paper attributes Lux's behaviour
//! to (§III, §IV-B):
//!
//! * **IEC only** — Lux's in-built edge-balanced incoming edge-cut is its
//!   single partitioning policy ("we observed that it does not do dynamic
//!   repartitioning");
//! * **AS** — "Lux synchronizes all shared data in every round", no update
//!   tracking;
//! * **BSP only** — Legion-scheduled bulk-synchronous rounds; the Legion
//!   dynamic task mapping adds a per-round overhead that grows with the
//!   number of devices (this is what keeps Lux from scaling past 4 GPUs in
//!   Fig. 3, where "most of Lux's runtime is spent waiting" at ≥8 hosts);
//! * **TB computation** — each vertex's edges go to the threads of one
//!   thread block "irrespective of its degree";
//! * **static memory allocation** — a fixed framebuffer fraction is
//!   reserved at launch whatever the graph (the constant 5.85 GB column of
//!   Table III), and the run aborts when the working set exceeds it.
//!
//! Only `cc` and `pagerank` are exposed: "We use only cc and pr in Lux as
//! the others were incorrect or not available." Lux's pagerank "recomputes
//! the rank of each vertex in each round" and "does not have a run until
//! convergence option", so [`LuxRuntime::run_pagerank`] takes the round
//! count (the paper runs it for D-IrGL's round count).

pub mod pagerank;

use dirgl_apps::Cc;
use dirgl_comm::CommMode;
use dirgl_core::{ExecModel, RunConfig, RunError, RunOutput, Runtime, Variant};
use dirgl_gpusim::{Balancer, Platform};
use dirgl_graph::csr::Csr;
use dirgl_partition::Policy;

pub use pagerank::LuxPageRank;

/// Minimum fraction of each device's framebuffer Lux statically reserves
/// (12 GB K80 × 0.4875 = the 5.85 GB of Table III — the constant column
/// there because the small inputs never exceed this floor).
pub const STATIC_ALLOC_FRACTION: f64 = 0.4875;

/// Headroom Lux's launch-time estimate must add over the working set
/// (framebuffer + zero-copy regions are reserved whole; under-estimating
/// crashes the run, so users over-provision).
pub const STATIC_ALLOC_HEADROOM: f64 = 1.3;

/// Legion task launch/mapping overhead per round: a base cost plus a
/// per-device term for dynamic dependence analysis and mapping.
pub const LEGION_BASE_OVERHEAD: f64 = 400e-6;

/// Per-device component of the per-round Legion overhead.
pub const LEGION_PER_DEVICE_OVERHEAD: f64 = 150e-6;

/// The Lux framework simulator.
pub struct LuxRuntime {
    /// Devices and interconnect.
    pub platform: Platform,
    /// Paper-equivalence divisor of the dataset.
    pub scale_divisor: u64,
}

impl LuxRuntime {
    /// Creates a Lux runtime on `platform`.
    pub fn new(platform: Platform, scale_divisor: u64) -> LuxRuntime {
        LuxRuntime {
            platform,
            scale_divisor,
        }
    }

    fn config(&self) -> RunConfig {
        let mut cfg = RunConfig::new(
            Policy::Iec,
            Variant {
                balancer: Balancer::Tb,
                comm: CommMode::AllShared,
                model: ExecModel::Sync,
            },
        )
        .scale(self.scale_divisor);
        cfg.runtime_round_overhead_secs =
            LEGION_BASE_OVERHEAD + LEGION_PER_DEVICE_OVERHEAD * self.platform.num_devices() as f64;
        cfg
    }

    /// Runs a program under Lux's fixed configuration, applying the static
    /// memory model.
    fn run_app<P: dirgl_core::VertexProgram>(
        &self,
        graph: &Csr,
        program: &P,
    ) -> Result<RunOutput, RunError> {
        let rt = Runtime::new(self.platform.clone(), self.config());
        let mut out = rt.runner(graph, program).execute()?;
        // Static allocation: Lux reserves the framebuffer fraction up
        // front. A working set that does not fit the reservation is a
        // launch failure ("even with the maximum possible GPU memory ...
        // it did not run"), and the *reported* usage is the constant
        // reservation, not the working set.
        for (dev, need) in out.report.memory_per_device.iter_mut().enumerate() {
            let capacity = self.platform.gpus[dev].memory_bytes;
            let floor = (capacity as f64 * STATIC_ALLOC_FRACTION) as u64;
            let reserve = floor.max((*need as f64 * STATIC_ALLOC_HEADROOM) as u64);
            if reserve > capacity {
                return Err(RunError::Oom {
                    device: dev as u32,
                    err: dirgl_gpusim::OomError {
                        requested: reserve,
                        in_use: 0,
                        capacity,
                    },
                });
            }
            *need = reserve;
        }
        Ok(out)
    }

    /// Lux connected components (data-driven, per §IV-B).
    pub fn run_cc(&self, graph: &Csr) -> Result<RunOutput, RunError> {
        self.run_app(graph, &Cc)
    }

    /// Lux pagerank for a fixed number of rounds (no convergence option).
    pub fn run_pagerank(&self, graph: &Csr, rounds: u32) -> Result<RunOutput, RunError> {
        self.run_app(graph, &LuxPageRank::new(rounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_apps::reference;
    use dirgl_graph::RmatConfig;

    #[test]
    fn lux_cc_is_correct() {
        let g = RmatConfig::new(8, 6).seed(3).generate();
        let lux = LuxRuntime::new(Platform::bridges(4), 1);
        let out = lux.run_cc(&g).unwrap();
        let want = reference::cc(&g.symmetrize());
        for (got, want) in out.values.iter().zip(&want) {
            assert_eq!(*got, *want as f64);
        }
    }

    #[test]
    fn lux_memory_is_the_static_reservation() {
        let g = RmatConfig::new(8, 6).seed(3).generate();
        let lux = LuxRuntime::new(Platform::bridges(2), 1);
        let out = lux.run_cc(&g).unwrap();
        let expect = (16.0e9 * STATIC_ALLOC_FRACTION) as u64;
        assert!(out.report.memory_per_device.iter().all(|&m| m == expect));
    }

    #[test]
    fn lux_fails_when_working_set_exceeds_reservation() {
        let g = RmatConfig::new(10, 16).seed(3).generate();
        // Huge divisor inflates the paper-equivalent working set far past
        // the static reservation.
        let lux = LuxRuntime::new(Platform::bridges(2), 1 << 22);
        assert!(matches!(lux.run_cc(&g), Err(RunError::Oom { .. })));
    }

    #[test]
    fn lux_rounds_cost_more_than_dirgl_rounds() {
        let g = RmatConfig::new(9, 8).seed(4).generate();
        let lux = LuxRuntime::new(Platform::bridges(8), 1);
        let lux_out = lux.run_cc(&g).unwrap();
        let dirgl = Runtime::new(
            Platform::bridges(8),
            RunConfig::new(Policy::Iec, Variant::var1()),
        );
        let dirgl_out = dirgl.runner(&g, &Cc).execute().unwrap();
        assert!(
            lux_out.report.total_time > dirgl_out.report.total_time,
            "lux={} dirgl={}",
            lux_out.report.total_time,
            dirgl_out.report.total_time
        );
    }
}
