//! Lux's pagerank: plain power iteration, topology-driven pull, fixed
//! round count (§IV-B: "recomputes the rank of each vertex in each round"
//! and "does not have a run until convergence option").

use dirgl_core::{InitCtx, Style, VertexProgram};
use dirgl_graph::csr::VertexId;

/// Per-proxy state for Lux-style pagerank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LuxPrState {
    /// Rank of the previous iteration (what neighbors read).
    pub rank: f32,
    /// Sum pulled this iteration.
    pub acc: f32,
    /// Precomputed `α / outdeg` (0 for sinks).
    pub kappa: f32,
}

/// Power-iteration pagerank with a fixed round budget.
#[derive(Clone, Copy, Debug)]
pub struct LuxPageRank {
    /// Damping factor.
    pub alpha: f32,
    /// Iterations to run (no convergence check, as in Lux).
    pub rounds: u32,
}

impl LuxPageRank {
    /// `rounds` power iterations at α = 0.85.
    pub fn new(rounds: u32) -> LuxPageRank {
        LuxPageRank {
            alpha: 0.85,
            rounds,
        }
    }
}

impl VertexProgram for LuxPageRank {
    type State = LuxPrState;
    type Wire = f32;

    fn name(&self) -> &'static str {
        "pagerank(lux)"
    }

    fn style(&self) -> Style {
        Style::PullTopologyDriven
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> LuxPrState {
        let d = ctx.out_degrees[gv as usize];
        LuxPrState {
            rank: 1.0 / ctx.num_vertices as f32,
            acc: 0.0,
            kappa: if d == 0 { 0.0 } else { self.alpha / d as f32 },
        }
    }

    fn initially_active(&self, _gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        true
    }

    fn edge_msg(&self, _state: &LuxPrState, _weight: u32) -> Option<f32> {
        None
    }

    fn pull_contribution(&self, neighbor: &LuxPrState, _weight: u32) -> Option<f32> {
        let c = neighbor.rank * neighbor.kappa;
        (c != 0.0).then_some(c)
    }

    fn accumulate(&self, state: &mut LuxPrState, msg: f32) -> bool {
        if msg != 0.0 {
            state.acc += msg;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut LuxPrState) -> bool {
        // Full recomputation: rank_{t+1} = (1-α)/n-scaled base + pulled sum.
        // The (1-α) base is uniform; since every vertex recomputes each
        // round it is folded in here.
        state.rank = (1.0 - self.alpha) + state.acc;
        state.acc = 0.0;
        true // no convergence check: rounds are capped by max_rounds
    }

    fn take_delta(&self, state: &mut LuxPrState) -> f32 {
        let d = state.acc;
        state.acc = 0.0;
        d
    }

    fn canonical(&self, state: &LuxPrState) -> f32 {
        state.rank
    }

    fn set_canonical(&self, state: &mut LuxPrState, v: f32) -> bool {
        if state.rank != v {
            state.rank = v;
            true
        } else {
            false
        }
    }

    fn max_rounds(&self) -> u32 {
        self.rounds
    }

    fn output(&self, state: &LuxPrState) -> f64 {
        state.rank as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_core::{RunConfig, Runtime, Variant};
    use dirgl_gpusim::{Balancer, Platform};
    use dirgl_partition::Policy;

    #[test]
    fn runs_exactly_the_requested_rounds() {
        let g = dirgl_graph::RmatConfig::new(8, 4).seed(7).generate();
        let rt = Runtime::new(
            Platform::bridges(2),
            RunConfig::new(
                Policy::Iec,
                Variant {
                    balancer: Balancer::Tb,
                    comm: dirgl_comm::CommMode::AllShared,
                    model: dirgl_core::ExecModel::Sync,
                },
            ),
        );
        let out = rt.runner(&g, &LuxPageRank::new(25)).execute().unwrap();
        assert_eq!(out.report.rounds, 25);
    }

    #[test]
    fn hub_outranks_leaves() {
        let mut b = dirgl_graph::csr::CsrBuilder::new(6);
        for i in 1..6 {
            b.add(i, 0);
        }
        let g = b.build();
        let rt = Runtime::new(
            Platform::bridges(2),
            RunConfig::new(Policy::Iec, Variant::var1()),
        );
        let out = rt.runner(&g, &LuxPageRank::new(30)).execute().unwrap();
        assert!(out.values[0] > 2.0 * out.values[1]);
    }
}
