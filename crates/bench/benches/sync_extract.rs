//! Sync-extraction microbenchmark: cost of building reduce payloads on one
//! device of an R-MAT partition as a function of frontier density.
//!
//! Three series per density (0.1%, 1%, 10%, 100% of local vertices marked
//! updated):
//!
//! - `uo_indexed` — UO extraction through the sync plan's [`ExtractIndex`]
//!   (iterates `updated ∧ members`, sparsity-proportional);
//! - `uo_dense`   — UO extraction via the legacy dense per-entry walk
//!   (probes every link entry regardless of density);
//! - `as_dense`   — AS extraction (ships every entry; density-independent
//!   upper bound).
//!
//! The tentpole claim pinned here: at ≤1% density the indexed path beats
//! the dense walk by ≥5× (checked offline from the printed numbers; the
//! bench itself only measures).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dirgl_apps::Bfs;
use dirgl_comm::{CommMode, SyncPlan};
use dirgl_core::device::DeviceRun;
use dirgl_core::InitCtx;
use dirgl_gpusim::Platform;
use dirgl_graph::RmatConfig;
use dirgl_partition::{Partition, Policy};

const DEVICES: u32 = 8;
const DEV: u32 = 0;

/// (label, one-in-N vertices updated).
const DENSITIES: [(&str, u32); 4] = [("0.1%", 1000), ("1%", 100), ("10%", 10), ("100%", 1)];

fn bench_extract(c: &mut Criterion) {
    let g = RmatConfig::new(18, 16).seed(0xE5).generate();
    let part = Partition::build(&g, Policy::Hvc, DEVICES, 0);
    let plan = SyncPlan::build(&part, true, true);
    let program = Bfs::from_max_out_degree(&g);
    let out_degrees: Vec<u32> = (0..g.num_vertices()).map(|v| g.out_degree(v)).collect();
    let ctx = InitCtx::new(g.num_vertices(), &out_degrees);
    let platform = Platform::bridges(DEVICES);
    let mut dev = DeviceRun::new(
        part.locals[DEV as usize].clone(),
        platform.gpus[DEV as usize],
        &program,
        &ctx,
    );
    let n = dev.lg.num_vertices();

    let mut group = c.benchmark_group("sync_extract");
    group.sample_size(20);
    for (label, stride) in DENSITIES {
        dev.updated.clear_all();
        let mut lv = 0u32;
        while lv < n {
            dev.updated.set(lv);
            lv += stride;
        }

        // The optimized path: updated ∧ membership via the inverse index.
        group.bench_with_input(BenchmarkId::new("uo_indexed", label), &label, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for owner in 0..DEVICES {
                    if owner == DEV {
                        continue;
                    }
                    let entries = plan.reduce(DEV, owner);
                    if entries.is_empty() {
                        continue;
                    }
                    let (payload, bytes) = dev.build_reduce(
                        &program,
                        part.link(DEV, owner),
                        entries,
                        plan.reduce_index(DEV, owner),
                        CommMode::UpdatedOnly,
                        1,
                    );
                    acc += payload.len() as u64 + bytes;
                    dev.scratch.recycle(payload);
                }
                black_box(acc)
            })
        });

        // The legacy path: probe every link entry against the bitset.
        group.bench_with_input(BenchmarkId::new("uo_dense", label), &label, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for owner in 0..DEVICES {
                    if owner == DEV {
                        continue;
                    }
                    let entries = plan.reduce(DEV, owner);
                    if entries.is_empty() {
                        continue;
                    }
                    let (payload, bytes) = dev.build_reduce(
                        &program,
                        part.link(DEV, owner),
                        entries,
                        None,
                        CommMode::UpdatedOnly,
                        1,
                    );
                    acc += payload.len() as u64 + bytes;
                    dev.scratch.recycle(payload);
                }
                black_box(acc)
            })
        });

        // AS ships everything: the density-independent ceiling.
        group.bench_with_input(BenchmarkId::new("as_dense", label), &label, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for owner in 0..DEVICES {
                    if owner == DEV {
                        continue;
                    }
                    let entries = plan.reduce(DEV, owner);
                    if entries.is_empty() {
                        continue;
                    }
                    let (payload, bytes) = dev.build_reduce(
                        &program,
                        part.link(DEV, owner),
                        entries,
                        None,
                        CommMode::AllShared,
                        1,
                    );
                    acc += payload.len() as u64 + bytes;
                    dev.scratch.recycle(payload);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
