//! Criterion microbenchmarks for the substrate hot paths: CSR traversal,
//! update-bitset operations, the edge-to-thread-block schedulers, and the
//! streaming partitioner.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dirgl_comm::DenseBitset;
use dirgl_gpusim::sched::{distribute, Balancer};
use dirgl_graph::RmatConfig;
use dirgl_partition::{Partition, Policy};

fn bench_csr(c: &mut Criterion) {
    let g = RmatConfig::new(14, 16).seed(1).generate();
    c.bench_function("csr/full_traversal", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for u in 0..g.num_vertices() {
                for &v in g.neighbors(u) {
                    acc = acc.wrapping_add(v as u64);
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("csr/transpose", |b| {
        b.iter(|| black_box(g.transpose().num_edges()))
    });
}

fn bench_bitset(c: &mut Criterion) {
    let n = 1_000_000u32;
    let mut bs = DenseBitset::new(n);
    for i in (0..n).step_by(37) {
        bs.set(i);
    }
    c.bench_function("bitset/iter_sparse", |b| {
        b.iter(|| black_box(bs.iter_set().fold(0u64, |a, x| a + x as u64)))
    });
    c.bench_function("bitset/count_ones", |b| {
        b.iter(|| black_box(bs.count_ones()))
    });
    c.bench_function("bitset/set_clear_cycle", |b| {
        let mut w = DenseBitset::new(n);
        b.iter(|| {
            for i in (0..n).step_by(101) {
                w.set(i);
            }
            w.clear_all();
        })
    });
}

fn bench_sched(c: &mut Criterion) {
    // Power-law-ish active set: many small, one giant.
    let mut degs: Vec<u32> = (0..200_000).map(|i| 1 + (i % 64)).collect();
    degs.push(1_000_000);
    let mut group = c.benchmark_group("sched");
    for balancer in [Balancer::Twc, Balancer::Alb, Balancer::Lb, Balancer::Tb] {
        group.bench_with_input(
            BenchmarkId::from_parameter(balancer.name()),
            &balancer,
            |b, &bal| b.iter(|| black_box(distribute(bal, degs.iter().copied(), 1024, 112))),
        );
    }
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let g = RmatConfig::new(13, 8).seed(2).generate();
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for policy in [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| b.iter(|| black_box(Partition::build(&g, p, 16, 0).total_edges())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_csr,
    bench_bitset,
    bench_sched,
    bench_partitioner
);
criterion_main!(benches);
