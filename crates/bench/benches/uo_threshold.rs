//! The §V-B3 microbenchmark the paper recommends: "Sending only the
//! updated values is key to reducing the communication volume and time,
//! but there is a threshold below which the overhead of extracting the
//! updated values outweighs the benefits of volume reduction. This
//! threshold can be determined using microbenchmarking."
//!
//! For a fixed shared-proxy count, sweeps the update density and compares
//! the modelled end-to-end message cost (extraction + transfer) of AS vs
//! UO, exposing the crossover.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dirgl_comm::{as_message_bytes, uo_message_bytes, DenseBitset, VAL_BYTES};
use dirgl_gpusim::{GpuSpec, KernelModel};

/// Modelled cost (seconds) of one synchronization message of `bytes` over
/// PCIe + Omni-Path, including `pack` seconds of device-side preparation.
fn message_seconds(bytes: u64, pack: f64) -> f64 {
    let pcie = 12e-6 + bytes as f64 / 12e9;
    let net = 40e-6 + bytes as f64 / 12.5e9 + 10e-6;
    pack + 2.0 * pcie + net
}

fn uo_vs_as(c: &mut Criterion) {
    let entries: u64 = 500_000;
    let kernel = KernelModel::new(GpuSpec::p100());
    let mut group = c.benchmark_group("uo_threshold");
    // Also print the modelled crossover once, as harness documentation.
    println!("update-density sweep for {entries} shared proxies (modelled):");
    for pct in [0u64, 1, 2, 5, 10, 25, 50, 100] {
        let updated = entries * pct / 100;
        let as_cost = message_seconds(as_message_bytes(entries, VAL_BYTES), 0.0);
        let uo_cost = message_seconds(
            uo_message_bytes(entries, updated, VAL_BYTES),
            kernel.scan_time(entries),
        );
        println!(
            "  {pct:>3}% updated: AS {:.1}us vs UO {:.1}us -> {}",
            as_cost * 1e6,
            uo_cost * 1e6,
            if uo_cost < as_cost {
                "UO wins"
            } else {
                "AS wins"
            }
        );
    }
    // Measured: the actual bitset extraction work UO performs per message.
    for pct in [1u64, 10, 50] {
        let mut bs = DenseBitset::new(entries as u32);
        let step = (100 / pct).max(1) as usize;
        for i in (0..entries as u32).step_by(step) {
            bs.set(i);
        }
        group.bench_with_input(
            BenchmarkId::new("extract_updated", format!("{pct}pct")),
            &bs,
            |b, bs| {
                b.iter(|| {
                    // Extraction = scan the bitset and gather the values.
                    let vals: Vec<u32> = bs.iter_set().map(|i| i.wrapping_mul(7)).collect();
                    black_box(vals.len())
                })
            },
        );
    }
    group.bench_function("pack_all_shared", |b| {
        // AS packs positionally: a straight copy of every value.
        let src: Vec<u32> = (0..entries as u32).collect();
        b.iter(|| black_box(src.to_vec().len()))
    });
    group.finish();
}

criterion_group!(benches, uo_vs_as);
criterion_main!(benches);
