//! Committed-baseline regression checks for the `BENCH_*.json` files.
//!
//! The repo commits one JSON baseline per benchmark binary (hot path,
//! kernels, parallel, batch, faults, chaos, serve). This module gives the
//! `bench_gate` binary what it needs to keep them honest:
//!
//! * a dependency-free JSON parser ([`Json::parse`]) sized for the flat
//!   schemas those files use — objects, arrays, numbers, strings, bools;
//! * a dotted-path reader ([`Json::path`]) with `[]` array expansion, so
//!   a check can say `per_bench[].identical` and mean every row;
//! * the per-file check sets ([`check_file`]): correctness invariants
//!   (identity flags, availability floors) that must hold in both the
//!   committed file and a freshly regenerated one, plus wall-clock
//!   speedup floors and a committed-vs-fresh ratio gate that only engages
//!   when the two files were produced at the same `extra_scale` —
//!   cross-scale wall-clock comparisons are noise.

/// A parsed JSON value (no escapes beyond `\"` and `\\` — the baseline
/// files contain none).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (all baseline numerics fit f64 exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing garbage is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Resolves a dotted path like `per_bench[].identical`: each segment
    /// indexes an object member, and a `[]` suffix fans out over every
    /// element of an array member. Returns every leaf the path reaches
    /// (empty when any segment is missing).
    pub fn path<'a>(&'a self, path: &str) -> Vec<&'a Json> {
        let mut cur = vec![self];
        for seg in path.split('.') {
            let (key, fan_out) = match seg.strip_suffix("[]") {
                Some(k) => (k, true),
                None => (seg, false),
            };
            let mut next = Vec::new();
            for v in cur {
                let Some(m) = v.get(key) else { continue };
                if fan_out {
                    if let Json::Arr(items) = m {
                        next.extend(items.iter());
                    }
                } else {
                    next.push(m);
                }
            }
            cur = next;
        }
        cur
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *i += 1;
            let mut m = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, i);
                let Json::Str(k) = parse_value(b, i)? else {
                    return Err(format!("object key is not a string at byte {i}"));
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected `:` at byte {i}"));
                }
                *i += 1;
                m.push((k, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut a = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(a));
            }
            loop {
                a.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(a));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}")),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*i) {
                *i += 1;
                match c {
                    b'"' => return Ok(Json::Str(s)),
                    b'\\' => match b.get(*i) {
                        Some(&e @ (b'"' | b'\\' | b'/')) => {
                            s.push(e as char);
                            *i += 1;
                        }
                        Some(b'n') => {
                            s.push('\n');
                            *i += 1;
                        }
                        _ => return Err(format!("unsupported escape at byte {i}")),
                    },
                    _ => s.push(c as char),
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while b.get(*i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|t| t.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => {
            for (lit, v) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                if b[*i..].starts_with(lit.as_bytes()) {
                    *i += lit.len();
                    return Ok(v);
                }
            }
            Err(format!("unexpected byte at {i}"))
        }
    }
}

/// The committed baseline files the gate covers.
pub const BASELINE_FILES: [&str; 8] = [
    "BENCH_hotpath.json",
    "BENCH_kernels.json",
    "BENCH_parallel.json",
    "BENCH_batch.json",
    "BENCH_faults.json",
    "BENCH_chaos.json",
    "BENCH_serve.json",
    "BENCH_scale.json",
];

/// Fresh wall-clock speedups may drift this far below the committed
/// baseline before the gate fails; wall clocks on shared CI hosts are
/// noisy, so the ratio floor is deliberately loose — it catches "the
/// optimization stopped working", not "-3% today".
pub const RATIO_SLACK: f64 = 0.6;

fn require_true(j: &Json, path: &str, who: &str, problems: &mut Vec<String>) {
    let leaves = j.path(path);
    if leaves.is_empty() {
        problems.push(format!("{who}: `{path}` is missing"));
        return;
    }
    for (idx, v) in leaves.iter().enumerate() {
        if v.as_bool() != Some(true) {
            problems.push(format!("{who}: `{path}`[{idx}] is {v:?}, expected true"));
        }
    }
}

fn require_min(j: &Json, path: &str, floor: f64, who: &str, problems: &mut Vec<String>) {
    let leaves = j.path(path);
    if leaves.is_empty() {
        problems.push(format!("{who}: `{path}` is missing"));
        return;
    }
    for (idx, v) in leaves.iter().enumerate() {
        match v.as_f64() {
            Some(n) if n >= floor => {}
            other => problems.push(format!(
                "{who}: `{path}`[{idx}] = {:?}, expected >= {floor}",
                other.map_or_else(|| format!("{v:?}"), |n| n.to_string())
            )),
        }
    }
}

/// True when both files record the same `extra_scale` — the precondition
/// for comparing their wall clocks at all.
fn same_scale(committed: &Json, fresh: &Json) -> bool {
    let c = committed
        .path("extra_scale")
        .first()
        .and_then(|v| v.as_f64());
    let f = fresh.path("extra_scale").first().and_then(|v| v.as_f64());
    c.is_some() && c == f
}

/// Committed-vs-fresh ratio floor on one numeric path: the fresh value
/// must be at least [`RATIO_SLACK`] × the committed one. Skipped (with a
/// note) when the scales differ.
fn require_ratio(
    committed: &Json,
    fresh: &Json,
    path: &str,
    who: &str,
    problems: &mut Vec<String>,
) {
    if !same_scale(committed, fresh) {
        return;
    }
    let c = committed.path(path);
    let f = fresh.path(path);
    if c.len() != f.len() || c.is_empty() {
        problems.push(format!(
            "{who}: `{path}` shape mismatch (committed {} leaves, fresh {})",
            c.len(),
            f.len()
        ));
        return;
    }
    for (idx, (cv, fv)) in c.iter().zip(&f).enumerate() {
        match (cv.as_f64(), fv.as_f64()) {
            (Some(c), Some(f)) if f >= c * RATIO_SLACK => {}
            (Some(c), Some(f)) => problems.push(format!(
                "{who}: `{path}`[{idx}] regressed: fresh {f:.4} < {RATIO_SLACK} x committed {c:.4}"
            )),
            _ => problems.push(format!("{who}: `{path}`[{idx}] is not a number")),
        }
    }
}

/// Invariants that must hold in *any* copy of `file` (committed or
/// fresh, any scale).
fn check_invariants(file: &str, j: &Json, who: &str, problems: &mut Vec<String>) {
    match file {
        "BENCH_hotpath.json" => {
            require_true(j, "identical_reports", who, problems);
            require_true(j, "per_bench[].identical", who, problems);
            // The optimized path must never lose to the legacy one.
            require_min(j, "speedup", 1.0, who, problems);
        }
        "BENCH_kernels.json" => {
            require_true(j, "values_ok", who, problems);
            require_true(j, "per[].values_ok", who, problems);
            require_min(j, "skew_max", 1.0, who, problems);
        }
        "BENCH_parallel.json" => {
            require_true(j, "identical_reports", who, problems);
            require_true(j, "per_bench[].identical", who, problems);
        }
        "BENCH_batch.json" => {
            require_true(j, "runs[].identical_reports", who, problems);
        }
        "BENCH_faults.json" => {
            require_true(j, "zero_fault_overhead[].identical", who, problems);
        }
        "BENCH_chaos.json" => {
            // The no-chaos scenario must complete everything it admits.
            let ok = j.path("scenarios[]").iter().any(|s| {
                s.get("scenario").and_then(Json::as_str) == Some("baseline")
                    && s.get("availability").and_then(Json::as_f64) >= Some(0.999)
            });
            if !ok {
                problems.push(format!(
                    "{who}: baseline scenario missing or availability < 1"
                ));
            }
        }
        "BENCH_serve.json" => {
            // Cache hits must beat cold execution at every concurrency.
            for (idx, run) in j.path("runs[]").iter().enumerate() {
                let cold = run.path("cold.jobs_per_s").first().and_then(|v| v.as_f64());
                let hit = run
                    .path("cache_hit.jobs_per_s")
                    .first()
                    .and_then(|v| v.as_f64());
                match (cold, hit) {
                    (Some(c), Some(h)) if h > c => {}
                    _ => problems.push(format!(
                        "{who}: runs[{idx}] cache_hit.jobs_per_s does not beat cold"
                    )),
                }
            }
        }
        "BENCH_scale.json" => {
            // Wherever both ingestion paths fit the budget, the runs must
            // be byte-identical (the key absent at compressed-only steps).
            require_true(j, "steps[].values_ok", who, problems);
            // The out-of-core claims: the streamed-compressed path reaches
            // at least one 2x divisor step deeper than the plain path under
            // the same host budget, and the web-crawl analogue compresses
            // at least 2x at the deepest step it reached.
            require_min(j, "compressed_steps_deeper", 1.0, who, problems);
            require_min(j, "compression_ratio_deepest", 2.0, who, problems);
            // The measured ingest high-water mark must grow (weakly) as the
            // divisor shrinks, i.e. down the steps array — a shrinking peak
            // means the byte accounting or the sweep order broke. 10% slack
            // absorbs thread-interleaving wobble at clamped tiny scales.
            let peaks: Vec<f64> = j
                .path("steps[].compressed.ingest_peak_bytes")
                .iter()
                .filter_map(|v| v.as_f64())
                .collect();
            if peaks.is_empty() {
                problems.push(format!(
                    "{who}: `steps[].compressed.ingest_peak_bytes` is missing"
                ));
            }
            for (idx, w) in peaks.windows(2).enumerate() {
                if w[1] < w[0] * 0.9 {
                    problems.push(format!(
                        "{who}: compressed ingest peak shrank as the graph grew \
                         (step {idx}: {} -> step {}: {})",
                        w[0],
                        idx + 1,
                        w[1]
                    ));
                }
            }
        }
        other => problems.push(format!("unknown baseline file `{other}`")),
    }
}

/// Committed-only floors: the headline numbers the repo's history claims.
/// These protect the committed baseline from being quietly regenerated
/// with worse results.
fn check_committed_floors(file: &str, j: &Json, problems: &mut Vec<String>) {
    if file == "BENCH_hotpath.json" {
        // The hot-path optimization campaign's claims: pagerank >= 1.4x,
        // bfs >= 1.3x over the legacy round loop (measured ~1.5x / ~1.7x;
        // the floors leave wall-clock noise headroom).
        for row in j.path("per_bench[]") {
            let bench = row.get("bench").and_then(Json::as_str).unwrap_or("?");
            let floor = match bench {
                "pagerank" => 1.4,
                "bfs" => 1.3,
                _ => continue,
            };
            match row.get("speedup").and_then(Json::as_f64) {
                Some(s) if s >= floor => {}
                other => problems.push(format!(
                    "committed: per_bench {bench} speedup {other:?} below floor {floor}"
                )),
            }
        }
    }
}

/// Full check set for one baseline file. `fresh` is `None` when the gate
/// run did not regenerate this file; the committed copy is still checked.
pub fn check_file(file: &str, committed: &Json, fresh: Option<&Json>) -> Vec<String> {
    let mut problems = Vec::new();
    check_invariants(file, committed, "committed", &mut problems);
    check_committed_floors(file, committed, &mut problems);
    if let Some(f) = fresh {
        check_invariants(file, f, "fresh", &mut problems);
        if file == "BENCH_hotpath.json" {
            require_ratio(committed, f, "speedup", "fresh", &mut problems);
            require_ratio(committed, f, "per_bench[].speedup", "fresh", &mut problems);
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_shapes() {
        let j = Json::parse(r#"{"a": 1.5, "b": [true, "x", null], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(j.path("a")[0].as_f64(), Some(1.5));
        assert_eq!(j.path("c.d")[0].as_f64(), Some(-2000.0));
        let Json::Arr(b) = &j.path("b")[0] else {
            panic!()
        };
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1].as_str(), Some("x"));
        assert_eq!(b[2], Json::Null);
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn path_array_fanout() {
        let j = Json::parse(r#"{"rows": [{"ok": true}, {"ok": false}], "n": 3}"#).unwrap();
        let leaves = j.path("rows[].ok");
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].as_bool(), Some(true));
        assert_eq!(leaves[1].as_bool(), Some(false));
        assert!(j.path("rows[].missing").is_empty());
        assert!(j.path("nope").is_empty());
    }

    fn hotpath(scale: f64, speedup: f64, pr: f64, bfs: f64, identical: bool) -> Json {
        Json::parse(&format!(
            r#"{{"extra_scale": {scale}, "speedup": {speedup}, "identical_reports": {identical},
                "per_bench": [
                  {{"bench": "bfs", "speedup": {bfs}, "identical": {identical}}},
                  {{"bench": "pagerank", "speedup": {pr}, "identical": {identical}}}
                ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn hotpath_gate_passes_and_fails() {
        let committed = hotpath(1.0, 1.6, 1.5, 1.7, true);
        assert!(check_file("BENCH_hotpath.json", &committed, None).is_empty());

        // Identity flag broken in a fresh run.
        let bad = hotpath(1.0, 1.6, 1.5, 1.7, false);
        let p = check_file("BENCH_hotpath.json", &committed, Some(&bad));
        assert!(p.iter().any(|m| m.contains("identical")), "{p:?}");

        // Fresh speedup collapsed below the ratio floor at matched scale.
        let slow = hotpath(1.0, 0.5, 1.41, 1.31, true);
        let p = check_file("BENCH_hotpath.json", &committed, Some(&slow));
        assert!(p.iter().any(|m| m.contains("regressed")), "{p:?}");

        // Same collapse at a different scale: wall clocks not comparable,
        // only the >= 1.0 invariant fires.
        let slow_small = hotpath(64.0, 1.05, 1.41, 1.31, true);
        let p = check_file("BENCH_hotpath.json", &committed, Some(&slow_small));
        assert!(p.is_empty(), "{p:?}");

        // Committed floors protect the headline claims.
        let weak = hotpath(1.0, 1.2, 1.1, 1.2, true);
        let p = check_file("BENCH_hotpath.json", &weak, None);
        assert!(p.iter().any(|m| m.contains("below floor")), "{p:?}");
    }

    #[test]
    fn kernels_gate() {
        let good = Json::parse(
            r#"{"values_ok": true, "skew_max": 12.5,
                "per": [{"values_ok": true}, {"values_ok": true}]}"#,
        )
        .unwrap();
        assert!(check_file("BENCH_kernels.json", &good, Some(&good)).is_empty());
        let bad =
            Json::parse(r#"{"values_ok": false, "skew_max": 12.5, "per": [{"values_ok": false}]}"#)
                .unwrap();
        let p = check_file("BENCH_kernels.json", &good, Some(&bad));
        assert!(p.iter().any(|m| m.contains("fresh")), "{p:?}");
    }

    fn scale(steps_deeper: u64, ratio: f64, peaks: &[u64], values_ok: bool) -> Json {
        let steps: Vec<String> = peaks
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Last step mimics a compressed-only row: no values_ok key.
                if i + 1 == peaks.len() {
                    format!(r#"{{"compressed": {{"ingest_peak_bytes": {p}}}}}"#)
                } else {
                    format!(
                        r#"{{"compressed": {{"ingest_peak_bytes": {p}}}, "values_ok": {values_ok}}}"#
                    )
                }
            })
            .collect();
        Json::parse(&format!(
            r#"{{"compressed_steps_deeper": {steps_deeper},
                 "compression_ratio_deepest": {ratio},
                 "steps": [{}]}}"#,
            steps.join(", ")
        ))
        .unwrap()
    }

    #[test]
    fn scale_gate() {
        let good = scale(1, 3.2, &[1_000, 2_100, 4_500], true);
        assert!(check_file("BENCH_scale.json", &good, Some(&good)).is_empty());

        // No depth advantage over the plain path.
        let p = check_file(
            "BENCH_scale.json",
            &scale(0, 3.2, &[1_000, 2_100], true),
            None,
        );
        assert!(
            p.iter().any(|m| m.contains("compressed_steps_deeper")),
            "{p:?}"
        );

        // Compression collapsed below the 2x web-crawl floor.
        let p = check_file(
            "BENCH_scale.json",
            &scale(1, 1.4, &[1_000, 2_100], true),
            None,
        );
        assert!(
            p.iter().any(|m| m.contains("compression_ratio_deepest")),
            "{p:?}"
        );

        // Ingest peak shrank while the graph grew.
        let p = check_file(
            "BENCH_scale.json",
            &scale(1, 3.2, &[4_500, 2_100], true),
            None,
        );
        assert!(p.iter().any(|m| m.contains("peak shrank")), "{p:?}");

        // A diverged run at a both-paths step.
        let p = check_file(
            "BENCH_scale.json",
            &scale(1, 3.2, &[1_000, 2_100], false),
            None,
        );
        assert!(p.iter().any(|m| m.contains("values_ok")), "{p:?}");
    }

    #[test]
    fn committed_baselines_in_repo_pass() {
        // The gate must accept the actual committed files.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        for file in BASELINE_FILES {
            let path = root.join(file);
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                // Tolerate a baseline that has not been generated yet
                // (fresh clone mid-bootstrap); the gate binary reports it.
                Err(_) => continue,
            };
            let j = Json::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
            let problems = check_file(file, &j, None);
            assert!(problems.is_empty(), "{file}: {problems:?}");
        }
    }
}
