//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — input properties (generated analogue vs published) |
//! | `table2` | Table II — fastest framework times on Tuxedo |
//! | `table3` | Table III — max memory across 6 GPUs for cc |
//! | `table4` | Table IV — static/dynamic/memory load balance |
//! | `fig3`   | Fig. 3 — strong scaling of D-IrGL variants + Lux, medium graphs |
//! | `fig4`   | Fig. 4 — time breakdown of variants, medium graphs @ 32 GPUs |
//! | `fig5`   | Fig. 5 — breakdown Lux vs Var1 @ 4 GPUs |
//! | `fig6`   | Fig. 6 — breakdown of variants, large graphs @ 64 GPUs |
//! | `fig7`   | Fig. 7 — strong scaling by partitioning policy |
//! | `fig8`   | Fig. 8 — breakdown by policy, medium graphs @ 32 GPUs |
//! | `fig9`   | Fig. 9 — breakdown by policy, large graphs @ 64 GPUs |
//! | `abl_gpudirect` | §VII ablation — GPUDirect device↔device transfers |
//! | `abl_throttle`  | §VII ablation — throttled BASP |
//!
//! All binaries accept `--scale N` (extra divisor on top of the catalog
//! scale; default 1) and `--quick` (shorthand for `--scale 4` plus
//! trimmed sweeps) so the whole suite can run fast while iterating, plus
//! `--trace <path>` to stream per-round, per-device
//! [`dirgl_core::RoundRecord`]s as JSON lines while the figures run.

pub mod alloc;
pub mod baseline;
pub mod cli;

use std::collections::HashMap;

use cli::{ArgStream, CliError};
use dirgl_apps::{Bfs, Cc, KCore, PageRank, Sssp};
use dirgl_comm::SimTime;
use dirgl_core::{
    Backend, JsonLinesSink, MultiRunOutput, NoopSink, RunConfig, RunError, RunOutput, Runtime,
    TraceSink, Variant,
};
use dirgl_gpusim::Platform;
use dirgl_graph::{Csr, Dataset, DatasetId};
use dirgl_partition::{Partition, Policy};

/// The concrete sink type behind `--trace`: JSON lines into a buffered
/// file.
pub type TraceFileSink = JsonLinesSink<std::io::BufWriter<std::fs::File>>;

/// k for the kcore benchmark across the harness. The paper does not state
/// its threshold; the partitioning study it builds on (Gill et al., PVLDB
/// 2018) uses kcore-100, which triggers deep cascading peeling on every
/// input (average degrees are preserved by the scaling, so the cascade
/// shape is too).
pub const KCORE_K: u32 = 100;

/// Command-line options shared by every binary.
#[derive(Clone, Debug)]
pub struct Args {
    /// Extra scale divisor on top of the dataset catalog divisor.
    pub extra_scale: u64,
    /// Trim sweeps for fast iteration.
    pub quick: bool,
    /// Write per-round trace records (JSON lines) to this path.
    pub trace: Option<String>,
}

impl Args {
    /// Usage line shared by every figure/table binary.
    pub const USAGE: &'static str = "usage: [--scale N] [--quick] [--trace PATH]";

    /// Parses `--scale N`, `--quick` and `--trace <path>` from
    /// `std::env::args`; a bad flag prints usage and exits nonzero.
    pub fn parse() -> Args {
        cli::or_exit(Self::try_parse(ArgStream::from_env()), Self::USAGE)
    }

    /// The fallible parser behind [`Args::parse`].
    pub fn try_parse(mut it: ArgStream) -> Result<Args, CliError> {
        let mut args = Args {
            extra_scale: 1,
            quick: false,
            trace: None,
        };
        while let Some(a) = it.next_arg() {
            match a.as_str() {
                "--scale" => args.extra_scale = it.parsed("--scale", "a positive integer")?,
                "--quick" => {
                    args.quick = true;
                    args.extra_scale = args.extra_scale.max(4);
                }
                "--trace" => args.trace = Some(it.value("--trace")?),
                other => return Err(CliError::unknown_arg(other)),
            }
        }
        Ok(args)
    }

    /// Opens the `--trace` file as a JSON-lines sink (`Ok(None)` when the
    /// flag was not given).
    pub fn open_trace(&self) -> Result<Option<TraceFileSink>, CliError> {
        self.trace.as_deref().map(open_trace_file).transpose()
    }
}

/// Opens `path` as a JSON-lines trace sink. A missing parent directory is
/// the common mistake, so it gets a dedicated error naming the directory
/// (plain `File::create` reports only the full path and an OS code).
pub fn open_trace_file(path: &str) -> Result<TraceFileSink, CliError> {
    let parent = std::path::Path::new(path).parent();
    if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty() && !d.exists()) {
        return Err(CliError::new(format!(
            "cannot create --trace file {path}: parent directory `{}` does not exist",
            dir.display()
        )));
    }
    let f = std::fs::File::create(path)
        .map_err(|e| CliError::new(format!("cannot create --trace file {path}: {e}")))?;
    Ok(JsonLinesSink::new(std::io::BufWriter::new(f)))
}

/// The five benchmarks as harness-dispatchable ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchId {
    /// Breadth-first search.
    Bfs,
    /// Weakly connected components.
    Cc,
    /// k-core decomposition.
    Kcore,
    /// Residual pagerank.
    Pagerank,
    /// Single-source shortest paths.
    Sssp,
}

impl BenchId {
    /// Paper order.
    pub const ALL: [BenchId; 5] = [
        BenchId::Bfs,
        BenchId::Cc,
        BenchId::Kcore,
        BenchId::Pagerank,
        BenchId::Sssp,
    ];

    /// Name as printed by the paper.
    pub fn name(self) -> &'static str {
        match self {
            BenchId::Bfs => "bfs",
            BenchId::Cc => "cc",
            BenchId::Kcore => "kcore",
            BenchId::Pagerank => "pagerank",
            BenchId::Sssp => "sssp",
        }
    }

    /// True when the benchmark runs on the symmetrized view.
    pub fn symmetric(self) -> bool {
        matches!(self, BenchId::Cc | BenchId::Kcore)
    }
}

impl std::fmt::Display for BenchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dataset loaded once: the raw directed weighted analogue and its
/// symmetrized view for cc/kcore.
pub struct LoadedDataset {
    /// Catalog entry + generated graph.
    pub ds: Dataset,
    /// Extra scale divisor used.
    extra: u64,
    /// Undirected view for cc/kcore (half-sampled then symmetrized, so the
    /// closure matches Table I's |E| — see
    /// `DatasetId::load_undirected_scaled`). Built lazily.
    sym: std::cell::OnceCell<Csr>,
}

impl LoadedDataset {
    /// Generates the analogue at `catalog divisor × extra`.
    pub fn load(id: DatasetId, extra: u64) -> LoadedDataset {
        LoadedDataset {
            ds: id.load_scaled(extra),
            extra,
            sym: std::cell::OnceCell::new(),
        }
    }

    /// The graph a benchmark runs on.
    pub fn graph_for(&self, bench: BenchId) -> &Csr {
        if bench.symmetric() {
            self.sym
                .get_or_init(|| self.ds.id.load_undirected_scaled(self.extra).graph)
        } else {
            &self.ds.graph
        }
    }
}

/// Caches partitions so variants reuse the same partition, as the paper's
/// methodology does ("we modified D-IrGL to use the same partitions").
#[derive(Default)]
pub struct PartitionCache {
    map: HashMap<(DatasetId, Policy, u32, bool), Partition>,
}

impl PartitionCache {
    /// New empty cache.
    pub fn new() -> PartitionCache {
        Self::default()
    }

    /// Partition for `(dataset, policy, devices)`, building on first use.
    /// Returns a borrow: runs go through
    /// [`dirgl_core::Runner::partition`], which copies only the per-device
    /// local graphs, never the exchange links.
    pub fn get(
        &mut self,
        ld: &LoadedDataset,
        bench: BenchId,
        policy: Policy,
        devices: u32,
    ) -> &Partition {
        let key = (ld.ds.id, policy, devices, bench.symmetric());
        self.map
            .entry(key)
            .or_insert_with(|| Partition::build(ld.graph_for(bench), policy, devices, 0x5EED))
    }
}

/// Runs one D-IrGL configuration of `bench` on `ld`.
pub fn run_dirgl(
    bench: BenchId,
    ld: &LoadedDataset,
    cache: &mut PartitionCache,
    platform: &Platform,
    policy: Policy,
    variant: Variant,
) -> Result<RunOutput, RunError> {
    run_dirgl_cfg(bench, ld, cache, platform, {
        RunConfig::new(policy, variant).scale(ld.ds.divisor)
    })
}

/// [`run_dirgl`] with per-round trace emission into `sink`. When `sink`
/// is `None` this is exactly [`run_dirgl`]; when `Some`, `label` is
/// stamped into every emitted record's `"run"` field so one trace file
/// can hold many configurations.
#[allow(clippy::too_many_arguments)]
pub fn run_dirgl_maybe_traced(
    bench: BenchId,
    ld: &LoadedDataset,
    cache: &mut PartitionCache,
    platform: &Platform,
    policy: Policy,
    variant: Variant,
    sink: &mut Option<TraceFileSink>,
    label: &str,
) -> Result<RunOutput, RunError> {
    let cfg = RunConfig::new(policy, variant).scale(ld.ds.divisor);
    match sink {
        Some(s) => {
            s.set_label(label);
            run_dirgl_cfg_traced(bench, ld, cache, platform, cfg, s)
        }
        None => run_dirgl_cfg(bench, ld, cache, platform, cfg),
    }
}

/// Runs one D-IrGL configuration with a fully custom [`RunConfig`] (the
/// ablation binaries flip `gpudirect` etc.). The config's scale divisor is
/// forced to the dataset's.
pub fn run_dirgl_cfg(
    bench: BenchId,
    ld: &LoadedDataset,
    cache: &mut PartitionCache,
    platform: &Platform,
    cfg: RunConfig,
) -> Result<RunOutput, RunError> {
    run_dirgl_cfg_traced(bench, ld, cache, platform, cfg, &mut NoopSink)
}

/// [`run_dirgl_cfg`] with per-round trace emission into `sink`.
pub fn run_dirgl_cfg_traced(
    bench: BenchId,
    ld: &LoadedDataset,
    cache: &mut PartitionCache,
    platform: &Platform,
    mut cfg: RunConfig,
    sink: &mut dyn TraceSink,
) -> Result<RunOutput, RunError> {
    cfg.scale_divisor = ld.ds.divisor;
    let part = cache.get(ld, bench, cfg.policy, platform.num_devices());
    let g = ld.graph_for(bench);
    let rt = Runtime::new(platform.clone(), cfg);
    match bench {
        BenchId::Bfs => rt
            .runner(g, &Bfs::from_max_out_degree(&ld.ds.graph))
            .partition(part)
            .trace(sink)
            .execute(),
        BenchId::Cc => rt.runner(g, &Cc).partition(part).trace(sink).execute(),
        BenchId::Kcore => rt
            .runner(g, &KCore::new(KCORE_K))
            .partition(part)
            .trace(sink)
            .execute(),
        BenchId::Pagerank => rt
            .runner(g, &PageRank::new())
            .partition(part)
            .trace(sink)
            .execute(),
        BenchId::Sssp => rt
            .runner(g, &Sssp::from_max_out_degree(&ld.ds.graph))
            .partition(part)
            .trace(sink)
            .execute(),
    }
}

/// Runs `bench` from every source in `sources` under `backend`:
/// [`Backend::Scalar`] executes one engine pass per source;
/// [`Backend::Lanes`] packs up to 64 sources per pass into the K-lane
/// bit-matrix frontier. Only the traversal benchmarks carry a source —
/// the binaries reject `--sources` for the others at the CLI boundary,
/// and this panics on them.
pub fn run_dirgl_batch(
    bench: BenchId,
    ld: &LoadedDataset,
    cache: &mut PartitionCache,
    platform: &Platform,
    mut cfg: RunConfig,
    sources: &[u32],
    backend: Backend,
) -> Result<MultiRunOutput, RunError> {
    cfg.scale_divisor = ld.ds.divisor;
    let part = cache.get(ld, bench, cfg.policy, platform.num_devices());
    let g = ld.graph_for(bench);
    let rt = Runtime::new(platform.clone(), cfg);
    match bench {
        BenchId::Bfs => rt
            .runner(g, &Bfs::new(sources[0]))
            .partition(part)
            .backend(backend)
            .batch(sources)
            .execute(),
        BenchId::Sssp => rt
            .runner(g, &Sssp::new(sources[0]))
            .partition(part)
            .backend(backend)
            .batch(sources)
            .execute(),
        BenchId::Cc | BenchId::Kcore | BenchId::Pagerank => {
            panic!("{bench} takes no source; --sources supports bfs and sssp")
        }
    }
}

/// Formats a simulated time like the paper's tables (seconds).
pub fn fmt_time(t: SimTime) -> String {
    format!("{:.2}", t.as_secs_f64())
}

/// Formats paper-equivalent bytes as the paper's GB annotations.
pub fn fmt_gb(bytes: u64) -> String {
    let gb = bytes as f64 / 1e9;
    if gb < 0.95 {
        format!("{:.1}GB", gb)
    } else {
        format!("{:.0}GB", gb)
    }
}

/// Formats an OOM/err cell like the paper's missing points.
pub fn fmt_result(r: &Result<RunOutput, RunError>) -> String {
    match r {
        Ok(out) => fmt_time(out.report.total_time),
        Err(RunError::Oom { .. }) => "OOM".to_string(),
        Err(RunError::NoDevices | RunError::EmptyGraph) => "ERR".to_string(),
    }
}

/// Prints one row of a fixed-width table.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", c, width = w));
    }
    println!("{}", line.trim_end());
}

/// One bar of a breakdown figure.
pub struct Breakdown {
    /// Series label (Var1..Var4 / policy name / framework).
    pub label: String,
    /// The run (Err = the paper's missing bar).
    pub result: Result<RunOutput, RunError>,
}

/// Prints one breakdown chart (the bars of Figs. 4–6/8–9): total time,
/// the Max Compute / Min Wait / Device Comm. decomposition, and the
/// communication-volume annotation.
pub fn print_breakdown(title: &str, rows: &[Breakdown]) {
    println!("\n== {title} ==");
    let widths = [12, 9, 11, 9, 12, 9, 7, 12];
    print_row(
        &[
            "series",
            "total(s)",
            "compute(s)",
            "wait(s)",
            "devcomm(s)",
            "volume",
            "rounds",
            "workitems",
        ]
        .map(String::from),
        &widths,
    );
    for b in rows {
        match &b.result {
            Ok(out) => {
                let r = &out.report;
                print_row(
                    &[
                        b.label.clone(),
                        fmt_time(r.total_time),
                        fmt_time(r.max_compute()),
                        fmt_time(r.min_wait()),
                        fmt_time(r.device_comm()),
                        fmt_gb(r.comm_bytes),
                        r.rounds.to_string(),
                        format!("{:.1e}", r.work_items as f64),
                    ],
                    &widths,
                );
            }
            Err(_) => {
                print_row(
                    &[
                        b.label.clone(),
                        "OOM".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ],
                    &widths,
                );
            }
        }
    }
}

/// The GPU counts the paper sweeps on Bridges.
pub fn bridges_gpu_counts(quick: bool) -> Vec<u32> {
    if quick {
        vec![4, 16, 64]
    } else {
        vec![2, 4, 8, 16, 32, 64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_catalog() {
        assert_eq!(BenchId::ALL.len(), 5);
        assert!(BenchId::Cc.symmetric());
        assert!(BenchId::Kcore.symmetric());
        assert!(!BenchId::Bfs.symmetric());
    }

    #[test]
    fn partition_cache_reuses() {
        let ld = LoadedDataset::load(DatasetId::Rmat23, 64);
        let mut cache = PartitionCache::new();
        let a = cache.get(&ld, BenchId::Bfs, Policy::Cvc, 4).total_edges();
        let b = cache.get(&ld, BenchId::Bfs, Policy::Cvc, 4).total_edges();
        assert_eq!(a, b);
        assert_eq!(cache.map.len(), 1);
        let _ = cache.get(&ld, BenchId::Cc, Policy::Cvc, 4);
        assert_eq!(cache.map.len(), 2);
    }

    #[test]
    fn dirgl_runs_every_benchmark() {
        let ld = LoadedDataset::load(DatasetId::Rmat23, 64);
        let mut cache = PartitionCache::new();
        let platform = Platform::bridges(4);
        for bench in BenchId::ALL {
            let out = run_dirgl(
                bench,
                &ld,
                &mut cache,
                &platform,
                Policy::Cvc,
                Variant::var3(),
            )
            .unwrap();
            assert!(out.report.total_time.as_secs_f64() > 0.0, "{bench}");
        }
    }

    #[test]
    fn args_try_parse() {
        let a = Args::try_parse(cli::ArgStream::from_tokens(["--scale", "8", "--quick"])).unwrap();
        assert_eq!(a.extra_scale, 8);
        assert!(a.quick);
        let err = Args::try_parse(cli::ArgStream::from_tokens(["--wat"])).unwrap_err();
        assert!(err.message.contains("--wat"), "{}", err.message);
        let err = Args::try_parse(cli::ArgStream::from_tokens(["--scale", "x"])).unwrap_err();
        assert!(err.message.contains("--scale"), "{}", err.message);
    }

    #[test]
    fn trace_missing_parent_names_directory() {
        let err = match open_trace_file("/definitely/not/a/dir/trace.jsonl") {
            Ok(_) => panic!("open_trace_file succeeded on a missing parent"),
            Err(e) => e,
        };
        assert!(
            err.message.contains("/definitely/not/a/dir"),
            "{}",
            err.message
        );
        assert!(err.message.contains("parent directory"), "{}", err.message);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(SimTime::from_secs_f64(1.234)), "1.23");
        assert_eq!(fmt_gb(500_000_000), "0.5GB");
        assert_eq!(fmt_gb(21_400_000_000), "21GB");
    }
}
