//! Heap instrumentation shared by the harness binaries.
//!
//! [`TrackingAlloc`] wraps [`System`] and keeps three exact counters:
//! the number of allocator calls (`alloc` + `realloc`), the live heap
//! bytes, and the byte high-water mark. All three are logical layout
//! sizes, not OS pages, so the numbers are deterministic for a
//! deterministic program — good enough to gate "the streaming path's
//! peak stopped shrinking" in CI without RSS sampling noise.
//!
//! The `#[global_allocator]` attribute must live in each *binary*
//! (declaring it here would force the wrapper onto every consumer of the
//! library, unit tests included):
//!
//! ```ignore
//! use dirgl_bench::alloc::TrackingAlloc;
//!
//! #[global_allocator]
//! static GLOBAL: TrackingAlloc = TrackingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// [`System`] with call counting and live/peak byte accounting.
pub struct TrackingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Adds `bytes` to the live counter and folds the new total into the
/// high-water mark (CAS loop: concurrent growers may race, the max wins).
fn on_grow(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        on_grow(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let (old, new) = (layout.size() as u64, new_size as u64);
        if new >= old {
            on_grow(new - old);
        } else {
            LIVE.fetch_sub(old - new, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total `alloc` + `realloc` calls since process start.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Heap bytes currently live (sum of layout sizes, allocations minus
/// frees).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Byte high-water mark since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live footprint, so a phase
/// can be measured in isolation: `reset_peak(); work(); peak_bytes()`
/// is the peak the phase itself reached (including whatever was already
/// resident when it started).
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The library's test binary does not install TrackingAlloc as the
    // global allocator, so nothing else in this process touches the
    // counters — the deltas below are exact.
    #[test]
    fn counters_track_grow_shrink_and_peak() {
        let a = TrackingAlloc;
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let base_live = live_bytes();
        reset_peak();
        let base_peak = peak_bytes();
        assert_eq!(base_peak, base_live);

        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(live_bytes(), base_live + 4096);
            assert_eq!(peak_bytes(), base_live + 4096);

            // Shrinking realloc lowers live but not the peak.
            let p = a.realloc(p, layout, 1024);
            assert!(!p.is_null());
            assert_eq!(live_bytes(), base_live + 1024);
            assert_eq!(peak_bytes(), base_live + 4096);

            // Growing realloc past the old peak raises it.
            let small = Layout::from_size_align(1024, 8).unwrap();
            let p = a.realloc(p, small, 8192);
            assert!(!p.is_null());
            assert_eq!(live_bytes(), base_live + 8192);
            assert_eq!(peak_bytes(), base_live + 8192);

            let big = Layout::from_size_align(8192, 8).unwrap();
            a.dealloc(p, big);
        }
        assert_eq!(live_bytes(), base_live);
        assert_eq!(peak_bytes(), base_live + 8192);
        reset_peak();
        assert_eq!(peak_bytes(), base_live);
        assert!(alloc_count() >= 3);
    }
}
