//! Before/after wall-clock benchmark for the host worker pool: a
//! fig3-style 16-device run (twitter50, IEC, Var3) timed under a
//! 1-thread pool and under a multi-thread pool, asserting the two
//! produce byte-identical `ExecutionReport`s, then writing the numbers
//! to `BENCH_parallel.json`.
//!
//! ```sh
//! cargo run --release --bin bench_parallel -- [--scale N] [--threads N] [--out PATH]
//! ```

use std::time::Instant;

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::{run_dirgl, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use rayon::ThreadPoolBuilder;

const DEVICES: u32 = 16;
const BENCHES: [BenchId; 3] = [BenchId::Bfs, BenchId::Pagerank, BenchId::Cc];

const USAGE: &str = "usage: bench_parallel [--scale N] [--threads N] [--out PATH]";

struct Opts {
    extra_scale: u64,
    threads: usize,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2),
        out_path: "BENCH_parallel.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--threads" => o.threads = it.parsed("--threads", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

fn main() {
    let Opts {
        extra_scale,
        threads,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let platform = Platform::bridges(DEVICES);
    let mut cache = PartitionCache::new();
    // Warm the partition cache so both timed passes measure only the engine.
    for bench in BENCHES {
        cache.get(&ld, bench, Policy::Iec, DEVICES);
    }

    let seq_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let par_pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();

    println!(
        "bench_parallel: twitter50/IEC/Var3 @ {DEVICES} devices, 1 vs {threads} pool threads \
         (host cores: {host_cores})\n"
    );

    let mut rows = Vec::new();
    let (mut wall_seq, mut wall_par) = (0.0f64, 0.0f64);
    let mut identical = true;
    for bench in BENCHES {
        // Untimed warm-up: first contact with a workload pays allocator and
        // page-fault costs that would otherwise be billed to the 1-thread pass.
        seq_pool.install(|| {
            run_dirgl(
                bench,
                &ld,
                &mut cache,
                &platform,
                Policy::Iec,
                Variant::var3(),
            )
            .unwrap()
        });

        let t0 = Instant::now();
        let a = seq_pool.install(|| {
            run_dirgl(
                bench,
                &ld,
                &mut cache,
                &platform,
                Policy::Iec,
                Variant::var3(),
            )
            .unwrap()
        });
        let seq_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let b = par_pool.install(|| {
            run_dirgl(
                bench,
                &ld,
                &mut cache,
                &platform,
                Policy::Iec,
                Variant::var3(),
            )
            .unwrap()
        });
        let par_s = t1.elapsed().as_secs_f64();

        let same = format!("{:?}", a.report) == format!("{:?}", b.report)
            && a.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                == b.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        identical &= same;
        println!(
            "{:>8}: 1-thread {seq_s:.3}s, {threads}-thread {par_s:.3}s, \
             speedup {:.2}x, identical: {same}",
            bench.name(),
            seq_s / par_s
        );
        wall_seq += seq_s;
        wall_par += par_s;
        rows.push(format!(
            "    {{\"bench\": \"{}\", \"wall_seq_s\": {seq_s:.6}, \"wall_par_s\": {par_s:.6}, \
             \"speedup\": {:.4}, \"identical\": {same}}}",
            bench.name(),
            seq_s / par_s
        ));
    }

    assert!(identical, "multi-thread run diverged from 1-thread run");
    let speedup = wall_seq / wall_par;
    println!(
        "\ntotal: 1-thread {wall_seq:.3}s, {threads}-thread {wall_par:.3}s, speedup {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"policy\": \"iec\",\n  \"variant\": \"Var3\",\n  \
         \"devices\": {DEVICES},\n  \"extra_scale\": {extra_scale},\n  \
         \"threads_seq\": 1,\n  \"threads_par\": {threads},\n  \"host_cores\": {host_cores},\n  \
         \"wall_seq_s\": {wall_seq:.6},\n  \"wall_par_s\": {wall_par:.6},\n  \
         \"speedup\": {speedup:.4},\n  \"identical_reports\": {identical},\n  \
         \"per_bench\": [\n{}\n  ],\n  \
         \"note\": \"Wall-clock for the engine only (partition cache pre-warmed). Speedup is \
         bounded by the host core count: on a single-core host the pool adds scheduling \
         overhead and cannot beat 1 thread; the >=2x target applies to hosts with >=4 cores. \
         Payload pooling + indexed UO extraction (see BENCH_hotpath.json) removed the \
         per-round allocator churn that previously made allocation-heavy pagerank regress \
         under the pool, so per-bench speedups should sit at or above their single-thread \
         baseline once cores allow. identical_reports asserts the byte-identical \
         ExecutionReport + vertex values contract between the two pool sizes.\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("wrote {out_path}");
}
