//! Before/after wall-clock + allocation benchmark for the host hot path:
//! fig3-style 16-device runs (twitter50, IEC, Var3) timed with the legacy
//! round loop (dense UO walks, fresh per-round allocations) and with the
//! optimized one (sparsity-proportional [`ExtractIndex`] extraction,
//! scratch-buffer pooling), asserting byte-identical `ExecutionReport`s
//! and vertex values, then writing the numbers to `BENCH_hotpath.json`.
//!
//! Heap allocations are counted by a `#[global_allocator]` wrapper, so the
//! `allocs_*` columns are exact call counts, not estimates.
//!
//! ```sh
//! cargo run --release --bin bench_hotpath -- [--scale N] [--out PATH]
//! ```
//!
//! [`ExtractIndex`]: dirgl_comm::ExtractIndex

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::{run_dirgl_cfg, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{RunConfig, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

/// [`System`] with a heap-allocation call counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const DEVICES: u32 = 16;
const BENCHES: [BenchId; 2] = [BenchId::Bfs, BenchId::Pagerank];

const USAGE: &str = "usage: bench_hotpath [--scale N] [--out PATH]";

struct Opts {
    extra_scale: u64,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        out_path: "BENCH_hotpath.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

fn cfg(legacy: bool) -> RunConfig {
    RunConfig::new(Policy::Iec, Variant::var3()).with_legacy_hotpath(legacy)
}

fn main() {
    let Opts {
        extra_scale,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let platform = Platform::bridges(DEVICES);
    let mut cache = PartitionCache::new();
    // Warm the partition cache so both timed passes measure only the engine.
    for bench in BENCHES {
        cache.get(&ld, bench, Policy::Iec, DEVICES);
    }

    println!("bench_hotpath: twitter50/IEC/Var3 @ {DEVICES} devices, legacy vs optimized\n");

    let mut rows = Vec::new();
    let (mut wall_legacy, mut wall_opt) = (0.0f64, 0.0f64);
    let mut identical = true;
    for bench in BENCHES {
        // Untimed warm-up: first contact with a workload pays allocator and
        // page-fault costs that would otherwise be billed to the first pass.
        run_dirgl_cfg(bench, &ld, &mut cache, &platform, cfg(true)).unwrap();

        let a0 = ALLOCS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let legacy = run_dirgl_cfg(bench, &ld, &mut cache, &platform, cfg(true)).unwrap();
        let legacy_s = t0.elapsed().as_secs_f64();
        let allocs_legacy = ALLOCS.load(Ordering::Relaxed) - a0;

        let a1 = ALLOCS.load(Ordering::Relaxed);
        let t1 = Instant::now();
        let opt = run_dirgl_cfg(bench, &ld, &mut cache, &platform, cfg(false)).unwrap();
        let opt_s = t1.elapsed().as_secs_f64();
        let allocs_opt = ALLOCS.load(Ordering::Relaxed) - a1;

        let same = format!("{:?}", legacy.report) == format!("{:?}", opt.report)
            && legacy
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
                == opt.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        identical &= same;
        println!(
            "{:>8}: legacy {legacy_s:.3}s / {allocs_legacy} allocs, \
             optimized {opt_s:.3}s / {allocs_opt} allocs, speedup {:.2}x, identical: {same}",
            bench.name(),
            legacy_s / opt_s
        );
        wall_legacy += legacy_s;
        wall_opt += opt_s;
        rows.push(format!(
            "    {{\"bench\": \"{}\", \"wall_legacy_s\": {legacy_s:.6}, \
             \"wall_opt_s\": {opt_s:.6}, \"speedup\": {:.4}, \
             \"allocs_legacy\": {allocs_legacy}, \"allocs_opt\": {allocs_opt}, \
             \"identical\": {same}}}",
            bench.name(),
            legacy_s / opt_s
        ));
    }

    assert!(
        identical,
        "optimized hot path diverged from the legacy path"
    );
    let speedup = wall_legacy / wall_opt;
    println!("\ntotal: legacy {wall_legacy:.3}s, optimized {wall_opt:.3}s, speedup {speedup:.2}x");

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"policy\": \"iec\",\n  \"variant\": \"Var3\",\n  \
         \"devices\": {DEVICES},\n  \"extra_scale\": {extra_scale},\n  \
         \"wall_legacy_s\": {wall_legacy:.6},\n  \"wall_opt_s\": {wall_opt:.6},\n  \
         \"speedup\": {speedup:.4},\n  \"identical_reports\": {identical},\n  \
         \"per_bench\": [\n{}\n  ],\n  \
         \"note\": \"Wall-clock and exact heap-allocation counts for the engine only (partition \
         cache pre-warmed), legacy hot path (dense UO walks, per-round allocation) vs optimized \
         (ExtractIndex extraction with a density gate, scratch pooling). identical_reports \
         asserts the byte-identical ExecutionReport + vertex values contract between the two \
         paths.\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("wrote {out_path}");
}
