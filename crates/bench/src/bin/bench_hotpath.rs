//! Before/after wall-clock + allocation benchmark for the host hot path:
//! fig3-style 16-device runs (twitter50, IEC, Var3) timed with the legacy
//! round loop (dense UO walks, fresh per-round allocations) and with the
//! optimized one (sparsity-proportional [`ExtractIndex`] extraction,
//! scratch-buffer pooling), asserting byte-identical `ExecutionReport`s
//! and vertex values, then writing the numbers to `BENCH_hotpath.json`.
//!
//! Heap allocations are counted by the shared
//! [`TrackingAlloc`](dirgl_bench::alloc::TrackingAlloc) wrapper, so the
//! `allocs_*` columns are exact call counts (and `peak_rss_bytes` the
//! exact byte high-water mark), not estimates.
//!
//! Each timed pass runs `--reps` times (default 1) and reports the
//! minimum wall time. Raising reps is the standard noise-robust
//! estimator on a shared host, but note that warm repetitions flatter
//! the legacy path: its per-round allocations hit a pre-grown heap from
//! rep 2 on, hiding exactly the allocator pressure the optimized path
//! eliminates. The committed baseline is therefore single-shot.
//!
//! ```sh
//! cargo run --release --bin bench_hotpath -- [--scale N] [--reps N] [--out PATH]
//! ```
//!
//! [`ExtractIndex`]: dirgl_comm::ExtractIndex

use std::time::Instant;

use dirgl_apps::{Bfs, PageRank};
use dirgl_bench::alloc::{self, TrackingAlloc};
use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::{BenchId, LoadedDataset};
use dirgl_core::{PreparedPartition, RunConfig, RunOutput, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

const DEVICES: u32 = 16;
const BENCHES: [BenchId; 2] = [BenchId::Bfs, BenchId::Pagerank];

const USAGE: &str = "usage: bench_hotpath [--scale N] [--reps N] [--out PATH]";

struct Opts {
    extra_scale: u64,
    reps: u32,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        reps: 1,
        out_path: "BENCH_hotpath.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--reps" => o.reps = it.parsed("--reps", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

fn runtime(ld: &LoadedDataset, platform: &Platform, legacy: bool) -> Runtime {
    let mut cfg = RunConfig::new(Policy::Iec, Variant::var3()).with_legacy_hotpath(legacy);
    cfg.scale_divisor = ld.ds.divisor;
    cfg.seed = 0x5EED;
    Runtime::new(platform.clone(), cfg)
}

fn run(bench: BenchId, ld: &LoadedDataset, rt: &Runtime, prep: &PreparedPartition) -> RunOutput {
    let g = prep.graph();
    match bench {
        BenchId::Bfs => rt
            .runner(g, &Bfs::from_max_out_degree(&ld.ds.graph))
            .partition(prep)
            .execute(),
        BenchId::Pagerank => rt.runner(g, &PageRank::new()).partition(prep).execute(),
        other => panic!("hot-path bench does not run {other}"),
    }
    .unwrap()
}

fn main() {
    let Opts {
        extra_scale,
        reps,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);
    let reps = reps.max(1);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let platform = Platform::bridges(DEVICES);
    let rt_legacy = runtime(&ld, &platform, true);
    let rt_opt = runtime(&ld, &platform, false);
    // One prepared partition (plan + degrees) shared by both paths, so
    // the timed region is the engine alone — per-run partitioning, sync-
    // plan construction and degree scans all happen once, out here.
    let prep = rt_opt.prepare(&ld.ds.graph, false).unwrap();

    println!("bench_hotpath: twitter50/IEC/Var3 @ {DEVICES} devices, legacy vs optimized\n");

    let mut rows = Vec::new();
    let (mut wall_legacy, mut wall_opt) = (0.0f64, 0.0f64);
    let mut identical = true;
    for bench in BENCHES {
        // Untimed warm-up: first contact with a workload pays allocator and
        // page-fault costs that would otherwise be billed to the first pass.
        run(bench, &ld, &rt_legacy, &prep);

        let (mut legacy_s, mut opt_s) = (f64::INFINITY, f64::INFINITY);
        let (mut allocs_legacy, mut allocs_opt) = (0, 0);
        let (mut legacy, mut opt) = (None, None);
        for _ in 0..reps {
            let a0 = alloc::alloc_count();
            let t0 = Instant::now();
            let out = run(bench, &ld, &rt_legacy, &prep);
            legacy_s = legacy_s.min(t0.elapsed().as_secs_f64());
            allocs_legacy = alloc::alloc_count() - a0;
            legacy = Some(out);

            let a1 = alloc::alloc_count();
            let t1 = Instant::now();
            let out = run(bench, &ld, &rt_opt, &prep);
            opt_s = opt_s.min(t1.elapsed().as_secs_f64());
            allocs_opt = alloc::alloc_count() - a1;
            opt = Some(out);
        }
        let (legacy, opt) = (legacy.unwrap(), opt.unwrap());

        let same = format!("{:?}", legacy.report) == format!("{:?}", opt.report)
            && legacy
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
                == opt.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        identical &= same;
        println!(
            "{:>8}: legacy {legacy_s:.3}s / {allocs_legacy} allocs, \
             optimized {opt_s:.3}s / {allocs_opt} allocs, speedup {:.2}x, identical: {same}",
            bench.name(),
            legacy_s / opt_s
        );
        wall_legacy += legacy_s;
        wall_opt += opt_s;
        rows.push(format!(
            "    {{\"bench\": \"{}\", \"wall_legacy_s\": {legacy_s:.6}, \
             \"wall_opt_s\": {opt_s:.6}, \"speedup\": {:.4}, \
             \"allocs_legacy\": {allocs_legacy}, \"allocs_opt\": {allocs_opt}, \
             \"identical\": {same}}}",
            bench.name(),
            legacy_s / opt_s
        ));
    }

    assert!(
        identical,
        "optimized hot path diverged from the legacy path"
    );
    let speedup = wall_legacy / wall_opt;
    let peak_rss_bytes = alloc::peak_bytes();
    println!("\ntotal: legacy {wall_legacy:.3}s, optimized {wall_opt:.3}s, speedup {speedup:.2}x");

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"policy\": \"iec\",\n  \"variant\": \"Var3\",\n  \
         \"devices\": {DEVICES},\n  \"extra_scale\": {extra_scale},\n  \
         \"peak_rss_bytes\": {peak_rss_bytes},\n  \
         \"wall_legacy_s\": {wall_legacy:.6},\n  \"wall_opt_s\": {wall_opt:.6},\n  \
         \"speedup\": {speedup:.4},\n  \"identical_reports\": {identical},\n  \
         \"per_bench\": [\n{}\n  ],\n  \
         \"note\": \"Min-over-reps wall-clock and exact heap-allocation counts for the engine only \
         (prepared partition, sync plan and degrees built once outside the timed region), legacy hot path (dense UO walks, per-round allocation) vs optimized \
         (ExtractIndex extraction with a density gate, scratch pooling). identical_reports \
         asserts the byte-identical ExecutionReport + vertex values contract between the two \
         paths.\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("wrote {out_path}");
}
