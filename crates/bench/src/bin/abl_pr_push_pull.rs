//! Ablation (extends §V-B2): push- vs pull-style residual pagerank.
//!
//! The paper's pagerank is topology-driven pull, making its load profile a
//! function of the max in-degree (the TWC/ALB story). The push-style
//! residual formulation — the one Gluon-Async itself adopts — is
//! data-driven on out-degrees instead. This ablation quantifies the
//! trade-off on the medium inputs under both balancers.

use dirgl_apps::{PageRank, PageRankPush};
use dirgl_bench::{fmt_time, print_row, Args, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{RunConfig, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(32);
    println!("Ablation: pagerank pull (paper) vs push (Gluon-Async style) @ 32 GPUs\n");
    let widths = [12usize, 7, 11, 11, 12, 12];
    print_row(
        &[
            "input".into(),
            "form".into(),
            "Var1(TWC)".into(),
            "Var3(ALB)".into(),
            "Var3 work".into(),
            "Var3 vol".into(),
        ],
        &widths,
    );
    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for (form, push) in [("pull", false), ("push", true)] {
            let mut cells = Vec::new();
            let mut work = String::new();
            let mut vol = String::new();
            for variant in [Variant::var1(), Variant::var3()] {
                let part = cache.get(&ld, BenchId::Pagerank, Policy::Iec, 32);
                let cfg = RunConfig::new(Policy::Iec, variant).scale(ld.ds.divisor);
                let rt = Runtime::new(platform.clone(), cfg);
                let out = if push {
                    rt.runner(&ld.ds.graph, &PageRankPush::new())
                        .partition(part)
                        .execute()
                } else {
                    rt.runner(&ld.ds.graph, &PageRank::new())
                        .partition(part)
                        .execute()
                }
                .unwrap();
                cells.push(fmt_time(out.report.total_time));
                work = format!("{:.1e}", out.report.work_items as f64);
                vol = dirgl_bench::fmt_gb(out.report.comm_bytes);
            }
            print_row(
                &[
                    id.name().into(),
                    form.into(),
                    cells[0].clone(),
                    cells[1].clone(),
                    work,
                    vol,
                ],
                &widths,
            );
        }
        println!();
    }
    println!("Expected: pull under TWC suffers from the max in-degree; push is");
    println!("insensitive to the balancer and does less work (data-driven),");
    println!("at the cost of reduce traffic for every destination update.");
}
