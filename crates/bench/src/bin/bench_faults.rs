//! Resilience benchmark: what fault tolerance costs when nothing fails,
//! and what it absorbs when things do.
//!
//! Three experiments on a fig3-style twitter50/CVC run, for both engines
//! (Var3 = BSP, Var4 = BASP), all on bfs (whose converged labels are
//! exact, so "values_match" is a hard correctness check):
//!
//! 1. **Zero-fault overhead** — the raw transport vs the retry/ack
//!    reliable transport under `FaultPlan::none()`. The two must produce
//!    byte-identical reports and vertex values (the engine guards this
//!    structurally); the wall-clock delta is the bookkeeping overhead.
//! 2. **Drop-rate sweep** — 1%, 5% and 20% per-attempt message loss.
//!    Retransmissions absorb every drop; final values must still match
//!    the fault-free run, and the simulated total time shows the
//!    retry-ladder cost.
//! 3. **Crash + recovery** — device 1 crashes at round 3 under 5% drop,
//!    once with `+rejoin` (rollback to the last checkpoint, device
//!    restored) and once without (graceful degradation: its masters move
//!    to a survivor).
//!
//! Writes `BENCH_faults.json` (schema documented in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release --bin bench_faults -- [--scale N] [--out PATH]
//! ```

use std::time::Instant;

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::{run_dirgl_cfg, BenchId, LoadedDataset, PartitionCache};
use dirgl_comm::FaultPlan;
use dirgl_core::{RunConfig, RunOutput, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

const DEVICES: u32 = 8;
const BENCH: BenchId = BenchId::Bfs;
const POLICY: Policy = Policy::Cvc;
const DROP_RATES: [f64; 3] = [0.01, 0.05, 0.20];
const SEED: u64 = 42;
const CKPT_EVERY: u32 = 2;

const USAGE: &str = "usage: bench_faults [--scale N] [--out PATH]";

struct Opts {
    extra_scale: u64,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        out_path: "BENCH_faults.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

fn value_bits(out: &RunOutput) -> Vec<u64> {
    out.values.iter().map(|v| v.to_bits()).collect()
}

struct Harness {
    ld: LoadedDataset,
    platform: Platform,
    cache: PartitionCache,
}

impl Harness {
    fn run(&mut self, variant: Variant, faults: Option<FaultPlan>, ckpt: u32) -> RunOutput {
        let mut cfg = RunConfig::new(POLICY, variant);
        cfg.faults = faults;
        cfg.checkpoint_every_rounds = ckpt;
        run_dirgl_cfg(BENCH, &self.ld, &mut self.cache, &self.platform, cfg).unwrap()
    }
}

fn main() {
    let Opts {
        extra_scale,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let mut h = Harness {
        ld,
        platform: Platform::bridges(DEVICES),
        cache: PartitionCache::new(),
    };
    h.cache.get(&h.ld, BENCH, POLICY, DEVICES);

    let variants = [
        ("var3_bsp", Variant::var3()),
        ("var4_basp", Variant::var4()),
    ];
    println!(
        "bench_faults: twitter50/{}/bfs @ {DEVICES} devices, seed {SEED}\n",
        POLICY.name()
    );

    let mut overhead_rows = Vec::new();
    let mut sweep_rows = Vec::new();
    let mut crash_rows = Vec::new();

    for (label, variant) in variants {
        // 1. Zero-fault overhead: raw vs FaultPlan::none(), byte-identical.
        h.run(variant, None, 0); // warm-up, untimed
        let t0 = Instant::now();
        let raw = h.run(variant, None, 0);
        let wall_raw = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let null = h.run(variant, Some(FaultPlan::none()), 0);
        let wall_null = t1.elapsed().as_secs_f64();
        let identical = format!("{:?}", raw.report) == format!("{:?}", null.report)
            && value_bits(&raw) == value_bits(&null);
        assert!(
            identical,
            "{label}: FaultPlan::none() diverged from the raw transport"
        );
        let overhead_pct = (wall_null / wall_raw - 1.0) * 100.0;
        println!(
            "{label:>10} overhead: raw {wall_raw:.3}s, reliable {wall_null:.3}s \
             ({overhead_pct:+.1}%), identical: {identical}"
        );
        overhead_rows.push(format!(
            "    {{\"variant\": \"{label}\", \"wall_raw_s\": {wall_raw:.6}, \
             \"wall_reliable_s\": {wall_null:.6}, \"overhead_pct\": {overhead_pct:.2}, \
             \"identical\": {identical}}}"
        ));
        let base_time = raw.report.total_time.as_secs_f64();
        let base_bits = value_bits(&raw);

        // 2. Drop-rate sweep.
        for drop in DROP_RATES {
            let out = h.run(variant, Some(FaultPlan::seeded(SEED).with_drop(drop)), 0);
            let s = &out.report.resilience;
            let values_match = value_bits(&out) == base_bits;
            let total = out.report.total_time.as_secs_f64();
            println!(
                "{label:>10} drop {:>4.0}%: sim {total:.4}s (fault-free {base_time:.4}s), \
                 {} drops, {} retransmits, {} timeouts, values_match: {values_match}",
                drop * 100.0,
                s.faults.drops_injected,
                s.faults.retransmits,
                s.faults.timeouts,
            );
            sweep_rows.push(format!(
                "    {{\"variant\": \"{label}\", \"drop\": {drop}, \
                 \"sim_total_s\": {total:.6}, \"sim_faultfree_s\": {base_time:.6}, \
                 \"drops_injected\": {}, \"retransmits\": {}, \"timeouts\": {}, \
                 \"duplicates_suppressed\": {}, \"values_match\": {values_match}}}",
                s.faults.drops_injected,
                s.faults.retransmits,
                s.faults.timeouts,
                s.faults.duplicates_suppressed,
            ));
        }

        // 3. Crash at round 3 under 5% drop: rejoin, then degradation.
        for (mode, rejoin) in [("rejoin", true), ("degrade", false)] {
            let plan = FaultPlan::seeded(SEED)
                .with_drop(0.05)
                .with_crash(1, 3, rejoin);
            let out = h.run(variant, Some(plan), CKPT_EVERY);
            let s = &out.report.resilience;
            let values_match = value_bits(&out) == base_bits;
            let total = out.report.total_time.as_secs_f64();
            println!(
                "{label:>10} crash/{mode}: sim {total:.4}s, {} checkpoints, {} rollbacks, \
                 {} rejoins, {} masters reassigned, recovery {:.4}s, values_match: \
                 {values_match}",
                s.checkpoints_taken,
                s.rollbacks,
                s.rejoins,
                s.masters_reassigned,
                s.recovery_time.as_secs_f64(),
            );
            crash_rows.push(format!(
                "    {{\"variant\": \"{label}\", \"mode\": \"{mode}\", \
                 \"sim_total_s\": {total:.6}, \"checkpoints_taken\": {}, \
                 \"checkpoint_bytes\": {}, \"rollbacks\": {}, \"rounds_replayed\": {}, \
                 \"rejoins\": {}, \"masters_reassigned\": {}, \"recovery_s\": {:.6}, \
                 \"retransmits\": {}, \"values_match\": {values_match}}}",
                s.checkpoints_taken,
                s.checkpoint_bytes,
                s.rollbacks,
                s.rounds_replayed,
                s.rejoins,
                s.masters_reassigned,
                s.recovery_time.as_secs_f64(),
                s.faults.retransmits,
            ));
        }
        println!();
    }

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"bench\": \"bfs\",\n  \"policy\": \"{}\",\n  \
         \"devices\": {DEVICES},\n  \"extra_scale\": {extra_scale},\n  \"seed\": {SEED},\n  \
         \"checkpoint_every_rounds\": {CKPT_EVERY},\n  \
         \"zero_fault_overhead\": [\n{}\n  ],\n  \
         \"drop_sweep\": [\n{}\n  ],\n  \
         \"crash_recovery\": [\n{}\n  ],\n  \
         \"note\": \"bfs labels are exact, so values_match is a hard correctness check: \
         every faulty run must converge to the fault-free answer. zero_fault_overhead \
         compares the raw transport against the retry/ack transport under an empty fault \
         plan; the engines guarantee byte-identical reports there, so overhead_pct is pure \
         host-side bookkeeping. sim_total_s is simulated (paper-equivalent) time; wall_*_s \
         is host wall-clock.\"\n}}\n",
        POLICY.name(),
        overhead_rows.join(",\n"),
        sweep_rows.join(",\n"),
        crash_rows.join(",\n"),
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("wrote {out_path}");
}
